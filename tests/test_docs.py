"""Docs snippet validation: every snippet must reference real symbols.

The documentation tree (``docs/*.md``) and the README are checked
against the source of truth they describe:

* dotted ``repro.*`` names in fenced code blocks must resolve to an
  importable module or attribute,
* ``repro-verify`` command lines must use real subcommands and flags
  (validated against :func:`repro.cli.build_parser`),
* HTTP method + path mentions must match routes of the server app — in
  both directions: no documented route may be missing from the app, and
  no app route may be missing from ``docs/http-api.md``,
* referenced repository files (``tests/...py``, ``benchmarks/...py``,
  ``docs/...md``, ...) must exist, and named ``test_*`` functions must
  exist somewhere under ``tests/``.

This is the CI docs job: documentation that names a renamed symbol,
dropped flag, or moved file fails the build instead of rotting.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import re
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]

_FENCE = re.compile(r"^```([A-Za-z]*)\n(.*?)^```", re.MULTILINE | re.DOTALL)
_DOTTED = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
_INLINE = re.compile(r"`([^`\n]+)`")
_HTTP_ROUTE = re.compile(r"\b(GET|POST|PUT|DELETE)\s+(/[A-Za-z0-9_/{}.-]*)")
_REPO_FILE = re.compile(
    r"^(?:tests|benchmarks|docs|examples|src|\.github)/\S+"
    r"\.(?:py|md|json|yml|toml)$")


def _fenced_blocks(path: Path) -> list[tuple[str, str]]:
    return _FENCE.findall(path.read_text(encoding="utf-8"))


def _resolve(dotted: str) -> bool:
    """True iff ``dotted`` names an importable module or attribute chain."""
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:split]))
        except ImportError:
            continue
        try:
            for attribute in parts[split:]:
                obj = getattr(obj, attribute)
        except AttributeError:
            return False
        return True
    return False


def test_docs_tree_exists():
    for name in ("architecture.md", "paper-mapping.md", "http-api.md",
                 "certificates.md", "fleet.md", "incremental.md"):
        assert (REPO / "docs" / name).exists(), f"missing docs/{name}"


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_fenced_dotted_names_resolve(path):
    unresolved = []
    for _, block in _fenced_blocks(path):
        for dotted in set(_DOTTED.findall(block)):
            if not _resolve(dotted):
                unresolved.append(dotted)
    assert not unresolved, (
        f"{path.name} fenced snippets reference unknown symbols: "
        f"{sorted(set(unresolved))}")


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_inline_dotted_names_resolve(path):
    unresolved = []
    for span in _INLINE.findall(path.read_text(encoding="utf-8")):
        if re.fullmatch(_DOTTED, span) and not _resolve(span):
            unresolved.append(span)
    assert not unresolved, (
        f"{path.name} inline code references unknown symbols: "
        f"{sorted(set(unresolved))}")


def _cli_lines(block: str) -> list[str]:
    """Shell lines invoking repro-verify, with backslash continuations joined."""
    joined = re.sub(r"\\\n\s*", " ", block)
    return [line.strip().lstrip("$ ").strip()
            for line in joined.splitlines()
            if line.strip().lstrip("$ ").startswith("repro-verify")]


def _subcommands() -> dict[str, argparse.ArgumentParser]:
    from repro.cli import build_parser
    parser = build_parser()
    action = next(a for a in parser._actions
                  if isinstance(a, argparse._SubParsersAction))
    return dict(action.choices)


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_cli_snippets_use_real_subcommands_and_flags(path):
    subcommands = _subcommands()
    problems = []
    for _, block in _fenced_blocks(path):
        for line in _cli_lines(block):
            tokens = line.split()
            if len(tokens) < 2:
                continue
            command = tokens[1]
            if command not in subcommands:
                problems.append(f"unknown subcommand in {line!r}")
                continue
            known = {option for action in subcommands[command]._actions
                     for option in action.option_strings}
            for token in tokens[2:]:
                if token.startswith("-"):
                    flag = token.split("=", 1)[0]
                    if flag not in known:
                        problems.append(
                            f"unknown flag {flag!r} for {command!r} "
                            f"in {line!r}")
    assert not problems, f"{path.name}: " + "; ".join(problems)


def test_documented_http_routes_exist_in_the_app():
    from repro.server import app as app_module
    app_source = inspect.getsource(app_module)
    text = (REPO / "docs" / "http-api.md").read_text(encoding="utf-8")
    for method, route in set(_HTTP_ROUTE.findall(text)):
        prefix = route.split("{", 1)[0]
        assert prefix in app_source, (
            f"docs/http-api.md documents {method} {route}, "
            f"but {prefix!r} does not appear in repro/server/app.py")


def test_every_app_route_is_documented():
    from repro.server.app import VerificationServerApp
    text = (REPO / "docs" / "http-api.md").read_text(encoding="utf-8")
    for method, route in VerificationServerApp.ROUTES:
        assert f"{method} {route}" in text or f"`{route}`" in text, (
            f"route {method} {route} is not documented in docs/http-api.md")
    assert "/v1/jobs/" in text
    assert "/v1/certificates/" in text


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_referenced_repository_files_exist(path):
    missing = []
    for span in _INLINE.findall(path.read_text(encoding="utf-8")):
        if _REPO_FILE.match(span) and not (REPO / span).exists():
            missing.append(span)
    assert not missing, f"{path.name} references missing files: {missing}"


def test_named_test_functions_exist():
    haystack = "\n".join(
        test_file.read_text(encoding="utf-8")
        for test_file in (REPO / "tests").rglob("test_*.py"))
    missing = []
    for path in DOC_FILES:
        for span in _INLINE.findall(path.read_text(encoding="utf-8")):
            if re.fullmatch(r"test_[A-Za-z0-9_]+", span) and \
                    f"def {span}(" not in haystack:
                missing.append(f"{path.name}: {span}")
    assert not missing, f"docs name unknown tests: {missing}"


def test_readme_links_the_docs_tree():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    for name in ("docs/architecture.md", "docs/paper-mapping.md",
                 "docs/http-api.md", "docs/certificates.md",
                 "docs/fleet.md", "docs/incremental.md"):
        assert name in readme, f"README must link {name}"


def test_backends_endpoint_emits_the_full_backend_spec():
    """`/v1/backends` must mirror every BackendSpec field, name for name.

    A capability flag added to the registry dataclass (like
    ``certifiable``) that is forgotten on the wire fails here instead of
    silently hiding the capability from HTTP clients.
    """
    import dataclasses
    import json as json_module

    from repro.api.registry import BackendSpec, get_backend
    from repro.server.app import VerificationServerApp

    app = VerificationServerApp()
    try:
        response = app.handle("GET", "/v1/backends")
    finally:
        app.close()
    entries = json_module.loads(response.body.decode("utf-8"))["backends"]
    spec_fields = {field.name for field in dataclasses.fields(BackendSpec)}
    for entry in entries:
        assert set(entry) == spec_fields, (
            f"backend {entry.get('name')!r} wire keys {sorted(entry)} != "
            f"BackendSpec fields {sorted(spec_fields)}")
        spec = get_backend(entry["name"])
        tuple_fields = {"budget_keys", "degrades_to"}
        for name in spec_fields - tuple_fields:
            assert entry[name] == getattr(spec, name)
        for name in tuple_fields:
            assert entry[name] == list(getattr(spec, name))


def test_docs_are_importable_without_src_on_path():
    """The checks above import repro — make the precondition explicit."""
    assert any(Path(entry).name == "src" or (Path(entry) / "repro").exists()
               for entry in sys.path if entry), \
        "run the suite with PYTHONPATH=src (or an installed package)"
