"""Certificates through the API layers: service, report, cache, server."""

from __future__ import annotations

import json

import pytest

from repro.api.report import REPORT_SCHEMA, VerificationReport
from repro.api.request import VerificationRequest
from repro.api.service import VerificationService
from repro.certify import check_certificate
from repro.circuit.mutate import apply_mutation, list_mutations
from repro.errors import VerificationError
from repro.generators.multipliers import generate_multiplier


@pytest.fixture()
def service() -> VerificationService:
    return VerificationService()


def _buggy(architecture: str = "SP-AR-RC", width: int = 4):
    netlist = generate_multiplier(architecture, width)
    return apply_mutation(netlist, list_mutations(netlist)[5])


# -- service -------------------------------------------------------------------

def test_submit_with_certificate_attaches_checkable_proof(service):
    report = service.submit(VerificationRequest.from_architecture(
        "SP-CT-BK", 4, method="mt-lr", certificate=True))
    assert report.verdict == "verified"
    assert report.certificate is not None
    summary = check_certificate(report.certificate)
    assert summary["verdict"] == "verified"
    # The certificate survives the report's JSON wire format verbatim.
    revived = VerificationReport.from_json(report.to_json())
    assert revived.certificate == report.certificate
    check_certificate(revived.certificate)


def test_submit_without_certificate_flag_attaches_nothing(service):
    report = service.submit(VerificationRequest.from_architecture(
        "SP-AR-RC", 3, method="mt-lr"))
    assert report.certificate is None
    assert json.loads(report.to_json())["certificate"] is None


def test_certificate_request_on_non_certifiable_backend_is_rejected(service):
    with pytest.raises(VerificationError, match="cannot emit proof"):
        service.submit(VerificationRequest.from_architecture(
            "SP-AR-RC", 4, method="sat-cec", certificate=True))


def test_refuted_report_carries_sat_cross_check(service):
    report = service.submit(VerificationRequest.from_netlist(
        _buggy(), method="mt-lr", certificate=True))
    assert report.verdict == "refuted"
    cross = report.cross_check
    assert cross is not None
    assert cross["backend"] == "sat-cec"
    assert cross["status"] == "different"
    assert cross["agrees"] is True
    assert cross["counterexample_confirmed"] is True
    # ... and the refutation certificate checks independently.
    assert check_certificate(report.certificate)["verdict"] == "refuted"
    revived = VerificationReport.from_json(report.to_json())
    assert revived.cross_check == cross


def test_refuted_adder_cross_checks_by_simulation_only(service):
    from repro.generators.adders import generate_adder
    netlist = generate_adder("KS", 5)
    buggy = apply_mutation(netlist, [m for m in list_mutations(netlist)
                                     if "_p" in m.signal][0])
    report = service.submit(VerificationRequest.from_netlist(
        buggy, method="mt-lr", specification="adder", circuit_kind="adder"))
    if report.verdict != "refuted":
        pytest.skip("mutation functionally masked at this width")
    cross = report.cross_check
    # No golden multiplier exists for an adder spec: SAT is not_applicable,
    # but the simulation replay still confirms the counterexample.
    assert cross["status"] == "not_applicable"
    assert cross["counterexample_confirmed"] is True


# -- batch + cache -------------------------------------------------------------

def test_run_batch_pools_certifiable_certificate_requests(tmp_path):
    service = VerificationService(cache_dir=tmp_path)
    requests = [VerificationRequest.from_architecture(
        arch, 4, method="mt-lr", certificate=True, find_counterexample=False)
        for arch in ("SP-AR-RC", "SP-CT-BK")]
    first = service.run_batch(requests)
    assert service.last_executed == 2
    for report in first:
        assert report.verdict == "verified"
        assert report.certificate is not None
        check_certificate(report.certificate)
    # Second run: served from the on-disk cache, certificates intact.
    second = VerificationService(cache_dir=tmp_path).run_batch(requests)
    assert [r.certificate["sha256"] for r in second] == \
        [r.certificate["sha256"] for r in first]
    for report in second:
        check_certificate(report.certificate)


def test_cache_keys_distinguish_certificate_requests(tmp_path):
    """certificate=False rows must not serve certificate=True requests."""
    service = VerificationService(cache_dir=tmp_path)
    import dataclasses
    plain = VerificationRequest.from_architecture(
        "SP-AR-RC", 4, method="mt-lr", find_counterexample=False)
    with_cert = dataclasses.replace(plain, certificate=True)
    assert service.run_batch([plain])[0].certificate is None
    report = service.run_batch([with_cert])[0]
    assert service.last_executed == 1, "distinct cache key, no stale hit"
    assert report.certificate is not None


# -- server --------------------------------------------------------------------

@pytest.fixture()
def app():
    from repro.server.app import VerificationServerApp
    app = VerificationServerApp()
    yield app
    app.close()


def test_server_verify_with_certificate_and_retrieval(app):
    document = {"architecture": "SP-AR-RC", "width": 4, "method": "mt-lr",
                "certificate": True}
    response = app.handle("POST", "/v1/verify",
                          json.dumps(document).encode("utf-8"))
    assert response.status == 200
    report = json.loads(response.body.decode("utf-8"))
    assert report["schema"] == REPORT_SCHEMA
    certificate = report["certificate"]
    assert certificate is not None
    check_certificate(certificate)
    # The emitted certificate is retrievable by content hash.
    fetched = app.handle("GET", f"/v1/certificates/{certificate['sha256']}")
    assert fetched.status == 200
    assert json.loads(fetched.body.decode("utf-8")) == certificate


def test_server_unknown_certificate_is_404(app):
    response = app.handle("GET", "/v1/certificates/" + "0" * 64)
    assert response.status == 404
    body = json.loads(response.body.decode("utf-8"))
    assert body["error"]["code"] == "certificate_not_found"


def test_server_certificate_route_rejects_non_get(app):
    response = app.handle("POST", "/v1/certificates/abc", b"{}")
    assert response.status == 405


def test_server_backends_expose_certifiable_flag(app):
    from repro.api.registry import get_backend
    response = app.handle("GET", "/v1/backends")
    entries = json.loads(response.body.decode("utf-8"))["backends"]
    flags = {entry["name"]: entry["certifiable"] for entry in entries}
    assert flags["mt-lr"] is True and flags["sat-cec"] is False
    for name, flag in flags.items():
        assert flag == get_backend(name).certifiable


def test_server_certificate_store_is_bounded():
    from repro.server.app import VerificationServerApp
    app = VerificationServerApp(certificate_store_limit=1)
    try:
        for architecture in ("SP-AR-RC", "SP-CT-BK"):
            document = {"architecture": architecture, "width": 4,
                        "method": "mt-lr", "certificate": True}
            response = app.handle("POST", "/v1/verify",
                                  json.dumps(document).encode("utf-8"))
            assert response.status == 200
            digest = json.loads(
                response.body.decode("utf-8"))["certificate"]["sha256"]
        # Only the newest certificate survives a store limit of one.
        assert app.handle(
            "GET", f"/v1/certificates/{digest}").status == 200
        assert len(app._certificates) == 1
    finally:
        app.close()
