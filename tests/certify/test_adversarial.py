"""Adversarial checker tests: every class of corrupted certificate is rejected.

Each mutation edits the certificate *body* and then recomputes the
content hash — otherwise every mutation would be caught by the cheap
hash stage and the deeper checker stages would go untested.  The checker
must reject each class with a :class:`~repro.errors.CertificateError`
naming the right stage and, where meaningful, the offending step index.
"""

from __future__ import annotations

import copy

import pytest

from repro.certify import build_certificate, certificate_hash, check_certificate
from repro.circuit.mutate import apply_mutation, list_mutations
from repro.errors import CertificateError
from repro.generators.multipliers import generate_multiplier
from repro.verification.engine import verify


@pytest.fixture(scope="module")
def certificate() -> dict:
    result = verify(generate_multiplier("SP-AR-RC", 4), method="mt-lr",
                    find_counterexample=False, certificate=True)
    return build_certificate(result)


@pytest.fixture(scope="module")
def refuted_certificate() -> dict:
    netlist = generate_multiplier("SP-AR-RC", 4)
    buggy = apply_mutation(netlist, list_mutations(netlist)[5])
    result = verify(buggy, method="mt-lr", certificate=True)
    assert result.verified is False
    return build_certificate(result)


def _mutate(certificate: dict, edit) -> dict:
    """Deep-copy, apply ``edit`` to the body, re-seal the content hash."""
    mutated = copy.deepcopy(certificate)
    edit(mutated["body"])
    mutated["sha256"] = certificate_hash(mutated["body"])
    return mutated


def _expect_rejection(document: dict, stage: str,
                      step: int | None = None) -> CertificateError:
    with pytest.raises(CertificateError) as excinfo:
        check_certificate(document)
    error = excinfo.value
    assert error.stage == stage, f"stage {error.stage!r}, wanted {stage!r}: {error}"
    if step is not None:
        assert error.step == step, f"step {error.step}, wanted {step}: {error}"
    return error


def test_hash_tamper_is_rejected(certificate):
    tampered = copy.deepcopy(certificate)
    tampered["body"]["verdict"] = "refuted"   # body edited, hash NOT re-sealed
    error = _expect_rejection(tampered, "hash")
    assert "altered" in str(error)


def test_dropped_schedule_step_is_rejected(certificate):
    steps = len(certificate["body"]["schedule"])
    mutated = _mutate(certificate, lambda body: body["schedule"].pop(17))
    # The omission is reported with a step index (the truncated length).
    error = _expect_rejection(mutated, "schedule", step=steps - 1)
    assert "omits" in str(error)


def test_duplicated_schedule_step_is_rejected(certificate):
    def edit(body):
        body["schedule"][5] = body["schedule"][4]
    _expect_rejection(_mutate(certificate, edit), "schedule", step=5)


def test_swapped_dependent_steps_are_rejected(certificate):
    """Swapping two order-dependent substitutions must break the replay.

    The schedule is consumer-first: when a variable is substituted, every
    model tail referencing it was already substituted — so an *earlier*
    step's tail references a *later* step's variable.  Swapping such a
    pair makes the replay diverge from the recorded remainder.
    """
    body = certificate["body"]
    tails = {var: {mask for mask, _ in terms} for var, terms in body["model"]}
    schedule = body["schedule"]
    pair = None
    for i, early in enumerate(schedule):
        for j in range(i + 1, len(schedule)):
            if any(mask & (1 << schedule[j]) for mask in tails[early]):
                pair = (i, j)
                break
        if pair:
            break
    assert pair, "grid certificate must contain a dependent schedule pair"
    i, j = pair

    def edit(body):
        body["schedule"][i], body["schedule"][j] = \
            body["schedule"][j], body["schedule"][i]
    error = _expect_rejection(_mutate(certificate, edit), "replay")
    assert error.step is not None


def test_corrupted_model_coefficient_is_rejected(certificate):
    def edit(body):
        # Flip one coefficient of the first non-trivial model tail.
        for _var, terms in body["model"]:
            if terms:
                terms[0][1] += 1
                return
    _expect_rejection(_mutate(certificate, edit), "model")


def test_corrupted_gate_tail_is_rejected(certificate):
    def edit(body):
        # Invert one gate (tail := tail + 1): the gate either leaves the
        # Boolean domain or disagrees with the rewritten model — a
        # behavioural corruption, not a cosmetic re-encoding.
        for _var, terms in body["gates"]:
            if terms and all(mask != 0 for mask, _ in terms):
                terms.insert(0, [0, 1])
                return
    error = _expect_rejection(_mutate(certificate, edit), "model")
    assert error is not None


def test_corrupted_vanishing_mask_is_rejected(certificate):
    body = certificate["body"]
    if not body["vanishing"]:
        pytest.skip("mt-lr certificate unexpectedly carries no vanishing rules")
    inputs = body["inputs"][:2]
    non_vanishing = (1 << inputs[0]) | (1 << inputs[1])

    def edit(body):
        body["vanishing"][0][0] = non_vanishing   # product of two PIs
    _expect_rejection(_mutate(certificate, edit), "vanishing", step=0)


def test_truncated_remainder_flips_refutation_and_is_rejected(
        refuted_certificate):
    steps = len(refuted_certificate["body"]["schedule"])

    def edit(body):
        body["remainder"] = []
    # An emptied remainder no longer matches the replayed reduction.
    _expect_rejection(_mutate(refuted_certificate, edit), "replay", step=steps)


def test_corrupted_spec_terms_are_rejected(certificate):
    def edit(body):
        body["spec_terms"][0][1] += 1
    _expect_rejection(_mutate(certificate, edit), "replay")


def test_flipped_verdict_with_resealed_hash_is_rejected(refuted_certificate):
    def edit(body):
        body["verdict"] = "verified"
    _expect_rejection(_mutate(refuted_certificate, edit), "verdict")


def test_remainder_over_gate_variables_is_rejected(certificate):
    body = certificate["body"]
    gate_var = body["gates"][0][0]

    def edit(body):
        body["remainder"] = [[1 << gate_var, 1]]
    error = _expect_rejection(_mutate(certificate, edit), "replay")
    assert error is not None


def test_cyclic_tail_is_rejected(certificate):
    def edit(body):
        var, terms = body["gates"][-1]
        terms.append([1 << var, 1])    # tail references its own lead
    _expect_rejection(_mutate(certificate, edit), "order")


def test_missing_body_key_is_rejected(certificate):
    mutated = _mutate(certificate, lambda body: body.pop("schedule"))
    _expect_rejection(mutated, "structure")


def test_wrong_format_and_version_are_rejected(certificate):
    wrong_format = copy.deepcopy(certificate)
    wrong_format["format"] = "other"
    _expect_rejection(wrong_format, "structure")
    wrong_version = copy.deepcopy(certificate)
    wrong_version["version"] = 2
    _expect_rejection(wrong_version, "structure")
