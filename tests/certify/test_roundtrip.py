"""Emit -> check round trips over the full fingerprint grid.

The grid is the repo's certificate fingerprint surface: all 50 catalog
multiplier architectures x the 4 membership-testing methods at 4 bit,
plus the RC/KS/BK adders x the same methods — 212 rows.  Every row must
emit a certificate the independent checker accepts, and emission must be
byte-stable: verifying the same circuit twice yields the identical
canonical body (and therefore the identical content hash).
"""

from __future__ import annotations

import pytest

from repro.certify import (
    build_certificate,
    canonical_json,
    certificate_hash,
    check_certificate,
)
from repro.generators.adders import generate_adder
from repro.generators.catalog import architecture_names
from repro.generators.multipliers import generate_multiplier
from repro.verification.engine import verify

MT_METHODS = ("mt-naive", "mt-fo", "mt-xor", "mt-lr")
ADDER_KINDS = ("RC", "KS", "BK")
WIDTH = 4


def _emit(netlist, method: str, specification: str) -> dict:
    result = verify(netlist, specification=specification, method=method,
                    find_counterexample=False, certificate=True)
    assert result.verified, f"{netlist.name} must verify under {method}"
    return build_certificate(result)


def _check_rows(rows) -> None:
    """Emit twice per row; require byte-stability and checker acceptance."""
    for netlist_factory, method, specification in rows:
        first = _emit(netlist_factory(), method, specification)
        second = _emit(netlist_factory(), method, specification)
        assert canonical_json(first["body"]) == canonical_json(second["body"])
        assert first["sha256"] == second["sha256"]
        assert first["sha256"] == certificate_hash(first["body"])
        summary = check_certificate(first)
        assert summary["verdict"] == "verified"
        assert summary["sha256"] == first["sha256"]
        assert summary["method"] == method


def test_fingerprint_grid_is_212_rows():
    multipliers = len(architecture_names()) * len(MT_METHODS)
    adders = len(ADDER_KINDS) * len(MT_METHODS)
    assert multipliers + adders == 212


@pytest.mark.parametrize("method", MT_METHODS)
def test_multiplier_catalog_certificates_roundtrip(method):
    _check_rows(
        ((lambda arch=arch: generate_multiplier(arch, WIDTH)),
         method, "multiplier")
        for arch in architecture_names())


def test_adder_certificates_roundtrip():
    _check_rows(
        ((lambda kind=kind: generate_adder(kind, WIDTH)), method, "adder")
        for kind in ADDER_KINDS for method in MT_METHODS)


def test_refuted_certificate_roundtrips():
    """A buggy circuit yields a checkable *refutation* certificate."""
    from repro.circuit.mutate import apply_mutation, list_mutations

    netlist = generate_multiplier("SP-AR-RC", WIDTH)
    buggy = apply_mutation(netlist, list_mutations(netlist)[5])
    result = verify(buggy, method="mt-lr", certificate=True)
    assert result.verified is False
    certificate = build_certificate(result)
    summary = check_certificate(certificate)
    assert summary["verdict"] == "refuted"
    assert summary["steps"] > 0


def test_build_certificate_requires_the_journal():
    from repro.errors import CertificateError

    result = verify(generate_multiplier("SP-AR-RC", 3), method="mt-lr")
    assert result.certificate_data is None
    with pytest.raises(CertificateError, match="no certificate journal"):
        build_certificate(result)
