"""Property tests: the bitmask Monomial agrees with the old set semantics.

The seed implementation modelled a monomial as a ``frozenset`` of variable
indices; the packed-bitmask core must be observationally identical.  Every
algebraic operation is checked against its set-theoretic reference on
randomized inputs, and the mask ordering is checked against the descending
variable-tuple lex key it replaces.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.algebra.monomial import Monomial, bits_of, iter_bits, mask_of
from repro.algebra.ordering import DEGLEX, LEX

variable_sets = st.frozensets(st.integers(min_value=0, max_value=80),
                              max_size=12)
monomial_pairs = st.tuples(variable_sets, variable_sets)


@settings(max_examples=300, deadline=None)
@given(monomial_pairs)
def test_multiplication_is_set_union(pair):
    a, b = pair
    assert set(Monomial(a) * Monomial(b)) == a | b


@settings(max_examples=300, deadline=None)
@given(monomial_pairs)
def test_lcm_gcd_match_union_intersection(pair):
    a, b = pair
    assert set(Monomial(a).lcm(Monomial(b))) == a | b
    assert set(Monomial(a).gcd(Monomial(b))) == a & b


@settings(max_examples=300, deadline=None)
@given(monomial_pairs)
def test_divides_is_subset_and_division_is_difference(pair):
    a, b = pair
    ma, mb = Monomial(a), Monomial(b)
    assert ma.divides(mb) == a.issubset(b)
    if a.issubset(b):
        assert set(mb / ma) == b - a


@settings(max_examples=300, deadline=None)
@given(monomial_pairs)
def test_relatively_prime_is_disjointness(pair):
    a, b = pair
    assert Monomial(a).relatively_prime(Monomial(b)) == a.isdisjoint(b)


@settings(max_examples=300, deadline=None)
@given(variable_sets)
def test_set_protocol_matches_frozenset(variables):
    mono = Monomial(variables)
    assert len(mono) == len(variables)
    assert mono.degree == len(variables)
    assert list(mono) == sorted(variables)
    assert list(mono.variables()) == sorted(variables)
    assert mono.is_constant == (not variables)
    for var in variables:
        assert var in mono
    assert (max(variables) + 1 if variables else 0) not in mono
    # Equality and hash stay compatible with the historical representation.
    assert mono == frozenset(variables)
    assert hash(mono) == hash(frozenset(variables))


@settings(max_examples=300, deadline=None)
@given(variable_sets)
def test_mask_round_trip(variables):
    mono = Monomial(variables)
    assert Monomial.from_mask(mono.mask) == mono
    assert mask_of(variables) == mono.mask
    assert bits_of(mono.mask) == sorted(variables)
    assert list(iter_bits(mono.mask)) == sorted(variables)


@settings(max_examples=300, deadline=None)
@given(monomial_pairs)
def test_mask_order_realises_lex_order(pair):
    """Integer comparison of masks == lex comparison of descending tuples."""
    a, b = pair
    ma, mb = Monomial(a), Monomial(b)
    tuple_order = ma.sort_key() > mb.sort_key()
    assert (ma.mask > mb.mask) == tuple_order
    assert LEX.greater(ma, mb) == tuple_order
    assert LEX.mask_key(ma.mask) == ma.mask


@settings(max_examples=300, deadline=None)
@given(monomial_pairs)
def test_deglex_mask_key_matches_tuple_key(pair):
    a, b = pair
    ma, mb = Monomial(a), Monomial(b)
    reference = (ma.degree, ma.sort_key()) > (mb.degree, mb.sort_key())
    assert (DEGLEX.mask_key(ma.mask) > DEGLEX.mask_key(mb.mask)) == reference
    assert DEGLEX.greater(ma, mb) == reference


@settings(max_examples=200, deadline=None)
@given(variable_sets, st.integers(min_value=0, max_value=1),
       st.data())
def test_evaluation_matches_set_semantics(variables, default, data):
    assignment = {var: data.draw(st.integers(min_value=0, max_value=1))
                  for var in variables}
    mono = Monomial(variables)
    expected = 1 if all(assignment[v] for v in variables) else 0
    assert mono.evaluate(assignment) == expected


def test_union_mask_is_the_support_of_a_term_map():
    from repro.algebra.monomial import union_mask

    assert union_mask([]) == 0
    assert union_mask([0b101, 0b011, 0]) == 0b111
    assert union_mask({0b1000: 3, 0b0001: -1}) == 0b1001


def test_any_submask_is_divisibility_of_some_candidate():
    from repro.algebra.monomial import any_submask

    assert any_submask([0b011], 0b111)
    assert any_submask([0b1000, 0b011], 0b011)
    assert not any_submask([0b011, 0b101], 0b110)
    assert not any_submask([], 0b1)
    # The empty monomial (constant 1) divides everything.
    assert any_submask([0], 0b10)
