"""Tests for the polynomial ring / variable manager."""

import pytest

from repro.algebra.ring import PolynomialRing
from repro.errors import AlgebraError


def test_variables_are_ordered_by_insertion():
    ring = PolynomialRing(["a", "b", "c"])
    assert ring.index("a") == 0
    assert ring.index("c") == 2
    assert ring.name(1) == "b"
    assert list(ring.names()) == ["a", "b", "c"]
    assert len(ring) == 3


def test_duplicate_variable_rejected():
    ring = PolynomialRing(["a"])
    with pytest.raises(AlgebraError):
        ring.add_variable("a")


def test_unknown_lookup_raises():
    ring = PolynomialRing(["a"])
    with pytest.raises(AlgebraError):
        ring.index("missing")
    with pytest.raises(AlgebraError):
        ring.name(7)


def test_polynomial_construction_and_rendering():
    ring = PolynomialRing(["a", "b", "s"])
    poly = ring.polynomial([(-1, ["s"]), (1, ["a"]), (1, ["b"]), (-2, ["a", "b"])])
    text = ring.render(poly)
    assert text.startswith("-s")
    assert "2*b*a" in text
    assert poly.evaluate({ring.index("a"): 1, ring.index("b"): 1,
                          ring.index("s"): 0}) == 0


def test_monomial_and_variable_helpers():
    ring = PolynomialRing(["a", "b"])
    assert ring.variable("b", -3).coefficient([1]) == -3
    assert ring.monomial(["a", "b"]) == frozenset({0, 1})
    assert ring.indices(["b", "a"]) == [1, 0]
    assert "a" in ring and "z" not in ring
