"""Tests for the occurrence-indexed substitution engine.

The engine is the single substitution kernel behind GB reduction, the
rewriting passes and the vanishing-rule filtering, so these tests pin down:

* scan-mode / indexed-mode equivalence (the adaptive threshold must never
  change results, only costs),
* incremental index maintenance across create/merge/cancel/retire,
* the transactional growth guard in both modes,
* the vanishing and modulus filtering hooks,
* that the verification modules actually delegate to the engine (no
  surviving private substitution loops).
"""

from __future__ import annotations

import random
import re
from pathlib import Path

import pytest

from repro.algebra.polynomial import Polynomial
from repro.algebra.substitution import INDEX_THRESHOLD, SubstitutionEngine


def _random_terms(rng: random.Random, num_terms: int, num_vars: int,
                  density: float = 0.2) -> dict[int, int]:
    terms: dict[int, int] = {}
    for _ in range(num_terms):
        mask = 0
        for var in range(num_vars):
            if rng.random() < density:
                mask |= 1 << var
        coeff = rng.choice([-3, -2, -1, 1, 2, 3])
        new = terms.get(mask, 0) + coeff
        if new:
            terms[mask] = new
        else:
            terms.pop(mask, None)
    return terms


def _reference_substitute(terms: dict[int, int], var: int,
                          replacement: list[tuple[int, int]]) -> dict[int, int]:
    """Independent out-of-place model of a single substitution."""
    bit = 1 << var
    acc: dict[int, int] = {}
    for mask, coeff in terms.items():
        if mask & bit:
            for rep_mask, rep_coeff in replacement:
                prod = (mask & ~bit) | rep_mask
                new = acc.get(prod, 0) + coeff * rep_coeff
                if new:
                    acc[prod] = new
                else:
                    del acc[prod]
        else:
            new = acc.get(mask, 0) + coeff
            if new:
                acc[mask] = new
            else:
                del acc[mask]
    return acc


class _FakeOracle:
    """Vanishing oracle that dooms a fixed set of masks."""

    def __init__(self, doomed: set[int]) -> None:
        self.doomed = doomed
        self.removed_count = 0
        self.cache: dict[int, bool] = {}

    def is_vanishing_mask(self, mask: int) -> bool:
        verdict = mask in self.doomed
        self.cache[mask] = verdict
        return verdict


def test_scan_and_indexed_modes_agree_on_random_chains():
    rng = random.Random(7)
    for trial in range(25):
        terms = _random_terms(rng, 40, 10)
        replacements = {
            var: list(_random_terms(rng, 3, var).items()) or [(0, 1)]
            for var in range(3, 10)}
        order = sorted(replacements, reverse=True)

        expected = dict(terms)
        for var in order:
            expected = _reference_substitute(expected, var, replacements[var])

        # Force both modes by biasing the threshold through term count:
        # the scan engine gets the map as-is, the indexed engine is forced
        # by building the index up front via a large index_mask and enough
        # terms (we call the private builder directly to pin the mode).
        index_mask = sum(1 << v for v in range(3, 10))
        scan = SubstitutionEngine(terms, index_mask)
        indexed = SubstitutionEngine(terms, index_mask)
        indexed._build_index()
        assert indexed.indexed
        for var in order:
            scan.substitute(var, replacements[var], retire=True)
            indexed.substitute(var, replacements[var], retire=True)
        assert scan.terms == expected, f"scan mode diverged on trial {trial}"
        assert indexed.terms == expected, f"indexed mode diverged on trial {trial}"


def test_dense_populations_refuse_the_index_but_stay_correct():
    """A term map dense in candidate variables must stay in scan mode
    (index upkeep would dominate) and still produce exact results."""
    rng = random.Random(11)
    terms = _random_terms(rng, 200, 12, density=0.7)
    index_mask = sum(1 << v for v in range(4, 12))
    engine = SubstitutionEngine(terms, index_mask)
    assert not engine.indexed, "dense population must refuse the index"
    replacement = [(1 << 1, 1), (0, -1)]
    expected = _reference_substitute(dict(terms), 7, replacement)
    engine.substitute(7, replacement, retire=True)
    assert engine.terms == expected


def test_index_demotes_itself_when_upkeep_dominates():
    """An engaged index whose upkeep keeps losing to the scan must drop."""
    var = 0
    # Sparse at engagement: pairs {var, filler_i} with unindexed fillers.
    terms = {(1 << var) | (1 << (300 + i)): 1 for i in range(80)}
    index_mask = sum(1 << v for v in range(200))
    engine = SubstitutionEngine(terms, index_mask)
    assert engine.indexed
    # Every created term is dense in candidate variables, so the step's
    # index upkeep far exceeds the avoided scan and the debt spikes.
    dense_mask = sum(1 << v for v in range(100, 140))
    expected = _reference_substitute(dict(terms), var, [(dense_mask, 1)])
    engine.substitute(var, [(dense_mask, 1)], retire=True)
    assert not engine.indexed, "engine should have demoted to scan mode"
    assert engine.terms == expected


def test_engine_switches_to_indexed_mode_when_growing():
    # One substitution blows the map across the threshold.
    var = 60
    terms = {(1 << var) | (1 << i): 1 for i in range(8)}
    replacement = [(1 << (10 + j), 1) for j in range(2 * INDEX_THRESHOLD)]
    engine = SubstitutionEngine(terms, 1 << var)
    assert not engine.indexed
    affected = engine.substitute(var, replacement)
    assert affected == 8
    assert len(engine) == 8 * 2 * INDEX_THRESHOLD
    assert engine.indexed


def test_occurrence_index_tracks_create_merge_cancel():
    a, b, c = 0, 1, 2
    terms = {(1 << a) | (1 << b): 2, (1 << b): 1, (1 << c): 5}
    engine = SubstitutionEngine(terms, (1 << a) | (1 << b) | (1 << c))
    engine._build_index()
    assert engine.occurrences(a) == 1
    assert engine.occurrences(b) == 2
    # a := -b/2? integers only: substitute a := c so ab -> bc.
    engine.substitute(a, [(1 << c, 1)], retire=True)
    assert engine.terms == {(1 << b) | (1 << c): 2, (1 << b): 1, (1 << c): 5}
    assert engine.occurrences(b) == 2
    assert engine.occurrences(c) == 2
    assert engine.active_variables() == [b, c]
    # b := -c cancels the bc term against nothing; bc -> -c*c = -c (idempotent),
    # merging into the existing c term: 5 + (-2) = 3; b -> -c merges 1*(-1).
    engine.substitute(b, [(1 << c, -1)], retire=True)
    assert engine.terms == {(1 << c): 2}
    assert engine.active_variables() == [c]


def test_substituting_absent_variable_is_a_cheap_noop():
    engine = SubstitutionEngine({0b1: 1}, 0b110)
    assert engine.substitute(1, [(0, 1)]) == 0
    assert engine.substitute(2, [(0, 1)], retire=True) == 0
    assert engine.terms == {0b1: 1}
    assert engine.substitutions == 0


@pytest.mark.parametrize("force_index", [False, True])
def test_growth_limit_rolls_back_both_modes(force_index):
    var = 5
    terms = {(1 << var) | (1 << i): 1 for i in range(4)}
    terms[1 << 20] = 7
    replacement = [(1 << (30 + j), 1) for j in range(50)]
    engine = SubstitutionEngine(terms, 1 << var)
    if force_index:
        engine._build_index()
    before = dict(engine.terms)
    result = engine.substitute(var, replacement, growth_limit=10)
    assert result == -1
    assert engine.terms == before
    assert engine.rejected_substitutions == 1
    # The variable is still substitutable afterwards (smaller replacement).
    assert engine.substitute(var, [(0, 1)], growth_limit=10) == 4
    assert engine.peak_terms == len(engine)


@pytest.mark.parametrize("force_index", [False, True])
def test_vanishing_hook_removes_and_counts(force_index):
    x, d, a = 3, 4, 5
    doomed_mask = (1 << x) | (1 << d)
    oracle = _FakeOracle({doomed_mask})
    terms = {(1 << a) | (1 << x): 1, (1 << a): 2}
    engine = SubstitutionEngine(terms, 1 << a, vanishing=oracle)
    if force_index:
        engine._build_index()
    # a := d turns the first term into x*d (vanishing) and the second into d.
    engine.substitute(a, [(1 << d, 1)])
    assert engine.terms == {(1 << d): 2}
    assert oracle.removed_count == 1
    assert engine.vanishing_removed == 1


def test_prune_vanishing_sweeps_loaded_terms():
    oracle = _FakeOracle({0b11})
    engine = SubstitutionEngine({0b11: 4, 0b1: 1}, 0b11, vanishing=oracle)
    assert engine.prune_vanishing() == 1
    assert engine.terms == {0b1: 1}
    assert oracle.removed_count == 1


@pytest.mark.parametrize("force_index", [False, True])
def test_modulus_filter_drops_touched_multiples(force_index):
    var = 2
    terms = {(1 << var): 3, 0: 5}
    engine = SubstitutionEngine(terms, 1 << var, coefficient_modulus=8)
    if force_index:
        engine._build_index()
    # var := 1 merges 3 into ... nothing; make it hit 8: var := 1 adds 3 to
    # the constant 5 -> 8, a modulus multiple, which must vanish.
    engine.substitute(var, [(0, 1)])
    assert engine.terms == {}
    assert engine.modulus_removed == 1


def test_polynomial_substitute_delegates_to_engine():
    p = Polynomial.from_terms([(2, [0, 3]), (1, [1]), (4, [3])])
    replacement = Polynomial.from_terms([(1, [1]), (-1, [])])
    result = p.substitute(3, replacement)
    expected = _reference_substitute(
        dict(p.term_masks()), 3, list(replacement.term_masks()))
    assert dict(result.term_masks()) == expected


# ---------------------------------------------------------------------------
# substitute_batch: differential equivalence with the sequential kernel
# ---------------------------------------------------------------------------

def _random_replacements(rng: random.Random,
                         order: list[int]) -> list[tuple[int, list]]:
    """One replacement per variable, over strictly smaller variables."""
    items = []
    for var in order:
        tail = _random_terms(rng, rng.randint(1, 4), max(var, 1))
        items.append((var, list(tail.items()) or [(0, 1)]))
    return items


def _sequential_engine(terms, index_mask, items, *, force_index=False,
                       growth_limit=None, retire=True, vanishing=None,
                       modulus=None):
    engine = SubstitutionEngine(terms, index_mask, vanishing=vanishing,
                                coefficient_modulus=modulus)
    if force_index:
        engine._build_index()
    outcomes = []
    for var, replacement in items:
        affected = engine.substitute(var, replacement, growth_limit, retire)
        outcomes.append((affected, len(engine.terms)))
    return engine, outcomes


@pytest.mark.parametrize("force_index", [False, True])
@pytest.mark.parametrize("modulus", [None, 16])
def test_substitute_batch_matches_sequential_substitute(force_index, modulus):
    """Term maps, per-step results, and statistics are batch-identical."""
    rng = random.Random(42)
    for trial in range(20):
        terms = _random_terms(rng, 50, 14)
        order = sorted(rng.sample(range(4, 14), rng.randint(2, 7)),
                       reverse=True)
        items = _random_replacements(rng, order)
        index_mask = sum(1 << var for var in order)

        reference, expected = _sequential_engine(
            terms, index_mask, items, force_index=force_index,
            modulus=modulus)

        engine = SubstitutionEngine(terms, index_mask,
                                    coefficient_modulus=modulus)
        if force_index:
            engine._build_index()
        results, tripped = engine.substitute_batch(items, retire=True)
        assert tripped is None
        assert results == expected, f"per-step results differ on trial {trial}"
        assert engine.terms == reference.terms, f"term map differs on {trial}"
        assert engine.substitutions == reference.substitutions
        assert engine.affected_terms == reference.affected_terms
        assert engine.modulus_removed == reference.modulus_removed
        assert engine.peak_terms == reference.peak_terms
        # Remaining candidates were retired in both.
        assert engine.active_variables() == reference.active_variables()


@pytest.mark.parametrize("force_index", [False, True])
def test_substitute_batch_vanishing_matches_sequential(force_index):
    """Per-step created-term filtering and #CVM are batch-identical."""
    rng = random.Random(17)
    for trial in range(15):
        terms = _random_terms(rng, 40, 12)
        order = sorted(rng.sample(range(4, 12), rng.randint(2, 6)),
                       reverse=True)
        items = _random_replacements(rng, order)
        index_mask = sum(1 << var for var in order)
        doomed = {mask for mask in _random_terms(rng, 6, 10)}

        ref_oracle = _FakeOracle(set(doomed))
        reference, expected = _sequential_engine(
            terms, index_mask, items, force_index=force_index,
            vanishing=ref_oracle)

        oracle = _FakeOracle(set(doomed))
        engine = SubstitutionEngine(terms, index_mask, vanishing=oracle)
        if force_index:
            engine._build_index()
        results, tripped = engine.substitute_batch(items, retire=True)
        assert tripped is None
        assert results == expected
        assert engine.terms == reference.terms
        assert oracle.removed_count == ref_oracle.removed_count
        assert engine.vanishing_removed == reference.vanishing_removed


def test_substitute_batch_growth_guard_rolls_back_per_step():
    """Rejected steps report -1 and leave the map exactly as sequential."""
    rng = random.Random(5)
    for trial in range(15):
        terms = _random_terms(rng, 30, 12)
        order = sorted(rng.sample(range(4, 12), 5), reverse=True)
        items = []
        for var in order:
            if rng.random() < 0.4:
                # A wide tail that will trip the growth guard.
                replacement = [(1 << (20 + j), 1) for j in range(40)]
            else:
                replacement = list(
                    _random_terms(rng, 2, max(var, 1)).items()) or [(0, 1)]
            items.append((var, replacement))

        reference, expected = _sequential_engine(
            terms, sum(1 << v for v in order), items, growth_limit=8)
        engine = SubstitutionEngine(terms, sum(1 << v for v in order))
        results, tripped = engine.substitute_batch(items, growth_limit=8,
                                                   retire=True)
        assert tripped is None
        assert results == expected
        assert engine.terms == reference.terms
        assert engine.rejected_substitutions == reference.rejected_substitutions
        assert any(affected < 0 for affected, _ in results) or trial


def test_substitute_batch_term_limit_trips_like_sequential_budget():
    """The batch stops right after the step that exceeds the term limit."""
    var_a, var_b = 10, 11
    terms = {(1 << var_a) | 1: 1, (1 << var_b) | 2: 1}
    wide = [(1 << (20 + j), 1) for j in range(30)]
    items = [(var_a, wide), (var_b, wide)]
    engine = SubstitutionEngine(terms, (1 << var_a) | (1 << var_b))
    results, tripped = engine.substitute_batch(items, retire=True,
                                               term_limit=10)
    assert tripped == "terms"
    assert len(results) == 1 and results[0][0] == 1
    assert results[0][1] > 10
    # The second variable was never processed.
    assert engine.contains(var_b)


def test_substitute_batch_mixed_mode_transition():
    """A batch that grows the map across the index threshold stays exact."""
    rng = random.Random(23)
    terms = _random_terms(rng, 20, 10)
    order = sorted(rng.sample(range(3, 10), 5), reverse=True)
    items = []
    for var in order:
        replacement = [(1 << (12 + j), 1) for j in range(INDEX_THRESHOLD // 2)]
        items.append((var, replacement))
    index_mask = sum(1 << v for v in order)

    reference, expected = _sequential_engine(terms, index_mask, items)
    engine = SubstitutionEngine(terms, index_mask)
    results, tripped = engine.substitute_batch(items, retire=True)
    assert tripped is None
    assert results == expected
    assert engine.terms == reference.terms


def test_no_private_substitution_loops_outside_the_engine():
    """reduction/rewriting/vanishing must not re-implement the kernel.

    The kernel's signature move is merging an expanded product back into a
    term dict (``rest | rep_mask`` style).  Outside substitution.py, the
    verification modules must not contain it.
    """
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    pattern = re.compile(r"rest\s*\|\s*rep|rep_mask|substitute_term_masks")
    for module in ("verification/reduction.py", "verification/rewriting.py",
                   "verification/vanishing.py", "algebra/polynomial.py"):
        text = (src / module).read_text(encoding="utf-8")
        assert not pattern.search(text), (
            f"{module} contains a private substitution loop")


def test_build_index_commits_support_for_candidate_superset():
    """Regression: an indexed reset must expose the loaded map's support.

    ``candidate_superset`` (and the load-time vanishing sweep) read
    ``_support`` in indexed mode too; a stale mask would hide candidates
    from ``gb_rewrite`` and drop their polynomials without inlining them.
    """
    var = 70
    small = {0b1: 1}
    big = {(1 << var) | (1 << i): 1 for i in range(2 * INDEX_THRESHOLD)}
    engine = SubstitutionEngine(small, 1 << var)
    assert engine.candidate_superset() == 0
    engine.reset(big, 1 << var)
    assert engine.indexed
    assert engine.candidate_superset() == 1 << var
    results, tripped = engine.substitute_batch([(var, [(0, 1)])], retire=True)
    assert tripped is None
    assert results[0][0] == 2 * INDEX_THRESHOLD
