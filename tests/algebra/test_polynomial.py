"""Unit tests for sparse multilinear polynomials."""

import pytest

from repro.algebra.monomial import Monomial
from repro.algebra.ordering import LEX
from repro.algebra.polynomial import Polynomial
from repro.errors import AlgebraError


def poly(*terms):
    """Helper: build a polynomial from (coefficient, [vars]) tuples."""
    return Polynomial.from_terms(terms)


def test_zero_and_constant_construction():
    assert Polynomial.zero().is_zero
    assert Polynomial.constant(0).is_zero
    five = Polynomial.constant(5)
    assert five.constant_term() == 5
    assert five.is_constant


def test_duplicate_terms_are_merged():
    p = poly((2, [1]), (3, [1]), (-5, [1]))
    assert p.is_zero


def test_addition_and_subtraction():
    p = poly((1, [1]), (2, [2]))
    q = poly((3, [1]), (-2, [2]), (7, []))
    total = p + q
    assert total.coefficient([1]) == 4
    assert total.coefficient([2]) == 0
    assert total.constant_term() == 7
    assert (total - q) == p


def test_integer_operands_are_accepted():
    p = Polynomial.variable(0)
    assert (p + 1).constant_term() == 1
    assert (1 - p).coefficient([0]) == -1
    assert (3 * p).coefficient([0]) == 3


def test_multiplication_applies_boolean_idempotence():
    x = Polynomial.variable(1)
    # x * x = x in the Boolean domain.
    assert x * x == x
    p = poly((1, [1]), (1, [2]))
    q = poly((1, [1]), (-1, [2]))
    product = p * q
    # (x1 + x2)(x1 - x2) = x1^2 - x2^2 = x1 - x2.
    assert product == poly((1, [1]), (-1, [2]))


def test_xor_gate_polynomial_identity():
    # a + b - 2ab evaluates to a xor b on Boolean inputs.
    a, b = Polynomial.variable(0), Polynomial.variable(1)
    xor = a + b - 2 * (a * b)
    for va in (0, 1):
        for vb in (0, 1):
            assert xor.evaluate({0: va, 1: vb}) == (va ^ vb)


def test_substitute_replaces_variable_with_tail():
    # p = x4*x3 + x1, substitute x4 := x2*x1 -> x3*x2*x1 + x1 (paper Section II-B).
    p = poly((1, [4, 3]), (1, [1]))
    replacement = poly((1, [2, 1]))
    result = p.substitute(4, replacement)
    assert result == poly((1, [3, 2, 1]), (1, [1]))


def test_substitute_cancels_terms():
    p = poly((1, [3]), (-1, [2]))
    result = p.substitute(3, Polynomial.variable(2))
    assert result.is_zero


def test_substitute_many():
    p = poly((1, [3, 2]))
    result = p.substitute_many({3: Polynomial.variable(1),
                                2: Polynomial.constant(1)})
    assert result == Polynomial.variable(1)


def test_leading_term_with_lex_order():
    p = poly((5, [3]), (7, [2, 1]), (1, []))
    mono, coeff = p.leading_term(LEX)
    assert mono == Monomial([3])
    assert coeff == 5


def test_leading_term_of_zero_raises():
    with pytest.raises(AlgebraError):
        Polynomial.zero().leading_monomial()


def test_drop_coefficient_multiples():
    p = poly((8, [1]), (4, [2]), (3, [3]))
    reduced = p.drop_coefficient_multiples(4)
    assert reduced.coefficient([1]) == 0
    assert reduced.coefficient([2]) == 0
    assert reduced.coefficient([3]) == 3
    with pytest.raises(AlgebraError):
        p.drop_coefficient_multiples(0)


def test_reduce_coefficients_symmetric_range():
    p = poly((7, [1]), (9, [2]))
    reduced = p.reduce_coefficients(8)
    assert reduced.coefficient([1]) == -1
    assert reduced.coefficient([2]) == 1


def test_filter_monomials_counts_removals():
    p = poly((1, [1, 2]), (1, [3]), (1, []))
    filtered, removed = p.filter_monomials(lambda m: len(m) < 2)
    assert removed == 1
    assert filtered.coefficient([1, 2]) == 0
    assert filtered.coefficient([3]) == 1


def test_support_and_degree_statistics():
    p = poly((1, [1, 2, 3]), (4, [5]))
    assert p.support() == {1, 2, 3, 5}
    assert p.max_monomial_degree() == 3
    assert p.num_terms == 2
    assert p.contains_variable(5)
    assert not p.contains_variable(4)


def test_evaluate_sums_terms():
    p = poly((3, [0]), (2, [1]), (-1, []))
    assert p.evaluate({0: 1, 1: 0}) == 2
    assert p.evaluate({0: 1, 1: 1}) == 4


def test_to_str_sorted_leading_first():
    p = poly((-2, [2]), (1, [3]), (5, []))
    text = p.to_str()
    assert text.startswith("x3")
    assert "2*x2" in text
    assert text.endswith("5")


def test_equality_and_hash():
    p = poly((1, [1]), (2, [2]))
    q = poly((2, [2]), (1, [1]))
    assert p == q
    assert hash(p) == hash(q)
    assert p != poly((1, [1]))
    assert Polynomial.zero() == 0
