"""Unit tests for Boolean-domain monomials."""

import pytest

from repro.algebra.monomial import Monomial


def test_empty_monomial_is_constant_one():
    assert Monomial.ONE.is_constant
    assert Monomial.ONE.degree == 0
    assert Monomial.ONE.evaluate({}) == 1


def test_multiplication_is_set_union_idempotent():
    m1 = Monomial([1, 2])
    m2 = Monomial([2, 3])
    product = m1 * m2
    assert product == Monomial([1, 2, 3])
    # Boolean idempotence: squaring does not change the monomial.
    assert m1 * m1 == m1


def test_divides_and_division():
    small = Monomial([1])
    big = Monomial([1, 2, 3])
    assert small.divides(big)
    assert not big.divides(small)
    assert big / small == Monomial([2, 3])


def test_division_by_non_divisor_raises():
    with pytest.raises(ValueError):
        Monomial([1]) / Monomial([2])


def test_lcm_and_gcd():
    m1 = Monomial([1, 2])
    m2 = Monomial([2, 3])
    assert m1.lcm(m2) == Monomial([1, 2, 3])
    assert m1.gcd(m2) == Monomial([2])


def test_relatively_prime():
    assert Monomial([1, 2]).relatively_prime(Monomial([3, 4]))
    assert not Monomial([1, 2]).relatively_prime(Monomial([2, 3]))


def test_evaluation_requires_all_variables_true():
    m = Monomial([0, 2])
    assert m.evaluate({0: 1, 1: 0, 2: 1}) == 1
    assert m.evaluate({0: 1, 1: 1, 2: 0}) == 0


def test_sort_key_realises_lex_order():
    # x3 > x2*x1 and x3*x2 > x3*x1 under lex with x3 > x2 > x1.
    assert Monomial([3]).sort_key() > Monomial([2, 1]).sort_key()
    assert Monomial([3, 2]).sort_key() > Monomial([3, 1]).sort_key()
    # A monomial is smaller than any proper multiple of itself.
    assert Monomial([3]).sort_key() < Monomial([3, 1]).sort_key()


def test_to_str_with_names():
    names = {0: "a", 1: "b", 2: "c"}
    assert Monomial([0, 2]).to_str(names) == "c*a"
    assert Monomial().to_str(names) == "1"


def test_monomials_are_hashable_and_equal_to_frozensets_with_same_content():
    assert hash(Monomial([1, 2])) == hash(frozenset({1, 2}))
    assert Monomial([1, 2]) == frozenset({1, 2})
