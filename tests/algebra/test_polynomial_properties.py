"""Property-based tests (hypothesis) for the polynomial algebra.

The key soundness property of the whole verification flow is that the
polynomial operations agree with evaluation over the Boolean domain; these
tests check ring axioms and the substitution/evaluation commutation on
randomly generated polynomials.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.algebra.polynomial import Polynomial

NUM_VARS = 5

monomials = st.frozensets(st.integers(min_value=0, max_value=NUM_VARS - 1),
                          max_size=NUM_VARS)
coefficients = st.integers(min_value=-8, max_value=8)
polynomials = st.dictionaries(monomials, coefficients, max_size=8).map(
    lambda terms: Polynomial.from_terms(
        (coeff, mono) for mono, coeff in terms.items()))
assignments = st.lists(st.integers(min_value=0, max_value=1),
                       min_size=NUM_VARS, max_size=NUM_VARS)


@settings(max_examples=200, deadline=None)
@given(polynomials, polynomials, assignments)
def test_addition_commutes_with_evaluation(p, q, bits):
    assignment = dict(enumerate(bits))
    assert (p + q).evaluate(assignment) == p.evaluate(assignment) + q.evaluate(assignment)


@settings(max_examples=200, deadline=None)
@given(polynomials, polynomials, assignments)
def test_multiplication_commutes_with_evaluation(p, q, bits):
    assignment = dict(enumerate(bits))
    assert (p * q).evaluate(assignment) == p.evaluate(assignment) * q.evaluate(assignment)


@settings(max_examples=100, deadline=None)
@given(polynomials, polynomials, polynomials)
def test_ring_axioms(p, q, r):
    assert p + q == q + p
    assert p * q == q * p
    assert (p + q) + r == p + (q + r)
    assert p * (q + r) == p * q + p * r
    assert p - p == Polynomial.zero()


@settings(max_examples=150, deadline=None)
@given(polynomials, st.integers(min_value=0, max_value=NUM_VARS - 1),
       polynomials, assignments)
def test_substitution_commutes_with_evaluation(p, var, replacement, bits):
    """Substituting then evaluating equals evaluating with the replaced value.

    The replacement value must be Boolean for the idempotence reduction to be
    valid, so the replacement polynomial is evaluated modulo 2.
    """
    assignment = dict(enumerate(bits))
    replacement_value = replacement.evaluate(assignment)
    if replacement_value not in (0, 1):
        replacement_value %= 2
        replacement = Polynomial.constant(replacement_value)
    substituted = p.substitute(var, replacement)
    direct = dict(assignment)
    direct[var] = replacement_value
    assert substituted.evaluate(assignment) == p.evaluate(direct)


@settings(max_examples=150, deadline=None)
@given(polynomials, assignments)
def test_negation_and_scalar_multiplication(p, bits):
    assignment = dict(enumerate(bits))
    assert (-p).evaluate(assignment) == -p.evaluate(assignment)
    assert (3 * p).evaluate(assignment) == 3 * p.evaluate(assignment)


@settings(max_examples=100, deadline=None)
@given(polynomials)
def test_drop_coefficient_multiples_is_congruent(p):
    """Dropping multiples of m never changes the value modulo m."""
    modulus = 4
    reduced = p.drop_coefficient_multiples(modulus)
    assignment = {v: 1 for v in range(NUM_VARS)}
    assert (p.evaluate(assignment) - reduced.evaluate(assignment)) % modulus == 0
