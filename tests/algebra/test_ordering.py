"""Tests for monomial orderings."""

import pytest

from repro.algebra.monomial import Monomial
from repro.algebra.ordering import DEGLEX, LEX, MonomialOrder


def test_lex_order_prefers_higher_variables():
    assert LEX.greater(Monomial([5]), Monomial([4, 3, 2, 1]))
    assert LEX.greater(Monomial([5, 1]), Monomial([5]))
    assert not LEX.greater(Monomial([2, 1]), Monomial([3]))


def test_deglex_order_prefers_higher_degree():
    assert DEGLEX.greater(Monomial([2, 1]), Monomial([5]))
    assert DEGLEX.greater(Monomial([5, 1]), Monomial([4, 2]))


def test_max_and_sorted():
    monos = [Monomial([1]), Monomial([3]), Monomial([2, 1])]
    assert LEX.max(monos) == Monomial([3])
    ordered = LEX.sorted(monos)
    assert ordered[0] == Monomial([3])
    assert ordered[-1] == Monomial([1])


def test_unknown_order_name_rejected():
    with pytest.raises(ValueError):
        MonomialOrder("mystery")


def test_custom_key_function():
    by_degree = MonomialOrder("bydeg", key=lambda m: (m.degree,))
    assert by_degree.greater(Monomial([1, 2]), Monomial([9]))
