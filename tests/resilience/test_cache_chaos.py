"""Chaos tests for the result cache: corruption, tampering, concurrency."""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.runner import (
    ExperimentConfig,
    ParallelRunner,
    ResultCache,
    VerificationJob,
    run_job,
)
from repro.resilience.faults import Fault

from .conftest import stable


@pytest.fixture
def config():
    return ExperimentConfig(widths=(4,), time_budget_s=60.0,
                            monomial_budget=200_000)


def _entries(directory):
    return sorted(p.name for p in directory.iterdir()
                  if p.suffix == ".json")


def _quarantined(directory):
    return sorted(p.name for p in directory.iterdir()
                  if p.name.endswith(".quarantined"))


def test_corrupted_publish_is_quarantined_and_reexecuted(config, chaos,
                                                         tmp_path):
    """A cache entry garbled at publish time costs one re-execution only."""
    cache_dir = tmp_path / "cache"
    grid = ParallelRunner.catalog(["SP-AR-RC"], config.widths, ["mt-lr"])

    chaos(Fault("cache-corrupt", match="*", times=1))
    first = ParallelRunner(config, workers=1,
                           cache_dir=cache_dir).run(grid)
    assert first[0]["verified"]

    # Second run: the poisoned entry must read as a miss (quarantined),
    # re-execute, and republish — not crash, not return garbage.
    runner = ParallelRunner(config, workers=1, cache_dir=cache_dir)
    second = runner.run(grid)
    assert stable(second) == stable(first)
    assert runner.last_cache_hits == 0
    assert runner.last_executed == 1
    assert len(_quarantined(cache_dir)) == 1

    # Third run hits the republished (clean) entry.
    runner = ParallelRunner(config, workers=1, cache_dir=cache_dir)
    third = runner.run(grid)
    assert stable(third) == stable(first)
    assert runner.last_cache_hits == 1


def test_tampered_verdict_fails_the_checksum(config, tmp_path):
    """Flipping a stored verdict breaks the entry checksum -> miss."""
    cache = ResultCache(tmp_path / "cache")
    job = VerificationJob("SP-AR-RC", 4, "mt-lr")
    row = run_job(job, config)
    key = cache.key(job, config)
    cache.put(key, job, row)
    assert cache.get_report(key) is not None

    [entry] = [p for p in cache.directory.iterdir() if p.suffix == ".json"]
    document = json.loads(entry.read_text(encoding="utf-8"))
    document["report"]["verdict"] = "refuted"
    entry.write_text(json.dumps(document), encoding="utf-8")

    assert cache.get_report(key) is None
    assert len(_quarantined(cache.directory)) == 1
    assert not _entries(cache.directory)


def test_unreadable_garbage_entry_is_a_miss(config, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    job = VerificationJob("SP-AR-RC", 4, "mt-lr")
    key = cache.key(job, config)
    (cache.directory / f"{key}.json").write_bytes(b"\x00\xffnot json at all")
    assert cache.get_report(key) is None
    assert len(_quarantined(cache.directory)) == 1


def test_missing_entry_is_a_plain_miss(config, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    job = VerificationJob("SP-AR-RC", 4, "mt-lr")
    assert cache.get_report(cache.key(job, config)) is None
    assert not _quarantined(cache.directory)


def test_concurrent_writers_never_publish_a_torn_entry(config, tmp_path):
    """Many threads hammering put() on one key: readers always see a
    complete entry (atomic tmp+rename publish), and no tmp litter stays."""
    cache = ResultCache(tmp_path / "cache")
    job = VerificationJob("SP-AR-RC", 4, "mt-lr")
    row = run_job(job, config)
    key = cache.key(job, config)

    def writer(_):
        cache.put(key, job, dict(row))
        return cache.get_report(key)

    with ThreadPoolExecutor(max_workers=8) as pool:
        reports = list(pool.map(writer, range(64)))
    live = [report for report in reports if report is not None]
    assert live, "concurrent put/get must observe complete entries"
    assert all(report.verdict == "verified" for report in live)
    assert cache.get_report(key) is not None
    litter = [p.name for p in cache.directory.iterdir()
              if ".tmp." in p.name]
    assert not litter, f"temporary publish files left behind: {litter}"
