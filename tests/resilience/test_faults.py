"""Unit tests for the deterministic fault-injection harness."""

from __future__ import annotations

import json
import os

import pytest

import repro.resilience.faults as faults_module
from repro.errors import VerificationError
from repro.resilience.faults import (
    ENV_VAR,
    Fault,
    FaultPlan,
    active_plan,
    corrupt_cache_entry,
)

from .conftest import CHAOS_SEED


def test_fault_validates():
    with pytest.raises(VerificationError):
        Fault("meteor-strike")
    with pytest.raises(VerificationError):
        Fault("worker-crash", times=-1)


def test_plan_json_round_trip():
    plan = FaultPlan(seed=CHAOS_SEED, faults=(
        Fault("worker-crash", match="SP-*/4/mt-lr", times=2),
        Fault("disconnect", match="POST /v1/*", delay_s=0.5)))
    clone = FaultPlan.from_json(plan.to_json())
    assert clone.seed == plan.seed
    assert clone.faults == plan.faults
    assert clone.to_json() == plan.to_json()
    with pytest.raises(VerificationError):
        FaultPlan.from_json("{not json")
    with pytest.raises(VerificationError):
        FaultPlan.from_json(json.dumps(
            {"faults": [{"site": "worker-crash", "surprise": 1}]}))


def test_should_matches_globs_and_respects_times():
    plan = FaultPlan(seed=CHAOS_SEED, faults=(
        Fault("worker-crash", match="SP-*/4/mt-lr", times=2),))
    assert plan.should("worker-crash", "BP-WT-CL/4/mt-lr") is None
    assert plan.should("worker-latency", "SP-AR-RC/4/mt-lr") is None
    assert plan.should("worker-crash", "SP-AR-RC/4/mt-lr") is not None
    assert plan.should("worker-crash", "SP-WT-CL/4/mt-lr") is not None
    # Budget exhausted: the third matching call must not fire.
    assert plan.should("worker-crash", "SP-AR-RC/4/mt-lr") is None


def test_state_dir_claims_are_fleet_wide(tmp_path):
    """Two plan instances (= two processes) share one hit budget."""
    state = tmp_path / "state"
    state.mkdir()
    fault = Fault("worker-crash", times=3)
    first = FaultPlan(seed=CHAOS_SEED, faults=(fault,),
                      state_dir=str(state))
    second = FaultPlan.from_json(first.to_json())
    fired = sum(1 for i in range(10)
                if (first if i % 2 else second).should(
                    "worker-crash", "a/4/m") is not None)
    assert fired == 3
    assert len(list(state.iterdir())) == 3


def test_payload_is_seed_and_key_deterministic():
    plan = FaultPlan(seed=CHAOS_SEED)
    assert plan.payload("entry.json") == plan.payload("entry.json")
    assert len(plan.payload("entry.json", length=100)) == 100
    assert plan.payload("entry.json") != plan.payload("other.json")
    assert plan.payload("entry.json") != \
        FaultPlan(seed=CHAOS_SEED + 1).payload("entry.json")


def test_corrupt_cache_entry_is_deterministic(tmp_path):
    target = tmp_path / "entry.json"
    target.write_text("{}", encoding="utf-8")
    corrupt_cache_entry(target, seed=CHAOS_SEED)
    first = target.read_bytes()
    target.write_text("{}", encoding="utf-8")
    corrupt_cache_entry(target, seed=CHAOS_SEED)
    assert target.read_bytes() == first
    assert not first.startswith(b"{")


def test_active_plan_tracks_environment(chaos, monkeypatch):
    assert active_plan() is None
    plan = chaos(Fault("worker-crash"))
    live = active_plan()
    assert live is not None
    assert live.to_json() == plan.to_json()
    assert active_plan() is live, "same env value must hit the parse cache"
    monkeypatch.delenv(ENV_VAR)
    assert active_plan() is None


def test_environment_mapping_activates_in_children(chaos):
    plan = chaos(Fault("worker-latency", delay_s=0.1))
    assert plan.environment() == {ENV_VAR: plan.to_json()}
    assert os.environ[ENV_VAR] == plan.to_json()
    faults_module._CACHED = (None, None)  # simulate a fresh child process
    child = active_plan()
    assert child is not None and child.faults == plan.faults
