"""Service-level resilience: fallback chains and batch verdict parity."""

from __future__ import annotations

import pytest

from repro.api.report import VerificationReport
from repro.api.request import Budgets, VerificationRequest
from repro.api.service import VerificationService
from repro.circuit.mutate import apply_mutation, list_mutations
from repro.generators.multipliers import generate_multiplier
from repro.resilience.faults import Fault
from repro.resilience.policy import FallbackPolicy, RetryPolicy

from .conftest import CHAOS_SEED, stable

#: SP-AR-RC/4 under mt-naive peaks at 88 remainder monomials, so budget 5
#: trips even after one x4 escalation (20 < 88) while budget 30 recovers
#: on it (120 >= 88).
TIGHT, RESCUABLE = 5, 30


def _request(monomial_budget: int) -> VerificationRequest:
    return VerificationRequest.from_architecture(
        "SP-AR-RC", 4, method="mt-naive",
        budgets=Budgets(monomial_budget=monomial_budget),
        find_counterexample=False)


def test_submit_degrades_through_escalation_to_sat_baseline():
    service = VerificationService(fallback_policy=FallbackPolicy())
    report = service.submit(_request(TIGHT))
    assert report.verdict == "verified"
    assert report.method == "sat-cec"
    kinds = [entry["kind"] for entry in report.attempts]
    assert kinds == ["initial", "escalate", "fallback"]
    outcomes = [entry["outcome"] for entry in report.attempts]
    assert outcomes == ["budget", "budget", "verified"]
    assert report.attempts[1]["budget_scale"] == 4.0
    assert service.last_fallbacks == 2


def test_escalation_alone_can_rescue():
    service = VerificationService(fallback_policy=FallbackPolicy())
    report = service.submit(_request(RESCUABLE))
    assert report.verdict == "verified"
    assert report.method == "mt-naive"
    assert [e["kind"] for e in report.attempts] == ["initial", "escalate"]
    assert service.last_fallbacks == 1


def test_without_a_policy_the_budget_verdict_stands():
    report = VerificationService().submit(_request(TIGHT))
    assert report.verdict == "budget"
    assert report.attempts is None


def test_degraded_report_round_trips_schema_4():
    service = VerificationService(fallback_policy=FallbackPolicy())
    report = service.submit(_request(TIGHT))
    clone = VerificationReport.from_json(report.to_json())
    assert clone.attempts == report.attempts
    assert clone.to_json() == report.to_json()


def test_refutations_are_final_not_degraded():
    """A proven mismatch must never be retried or escalated away."""
    netlist = generate_multiplier("SP-AR-RC", 4)
    buggy = apply_mutation(netlist, list_mutations(netlist)[5])
    request = VerificationRequest.from_netlist(buggy, method="mt-lr")
    service = VerificationService(
        fallback_policy=FallbackPolicy(),
        retry_policy=RetryPolicy(seed=CHAOS_SEED))
    report = service.submit(request)
    assert report.verdict == "refuted"
    assert report.attempts is None
    assert service.last_fallbacks == 0


@pytest.mark.parametrize("jobs", [2])
def test_batch_with_faults_matches_fault_free_baseline(chaos, tmp_path,
                                                       jobs):
    """Crash + cache corruption together: verdict parity with clean run.

    The scaled-down acceptance check: one worker killed mid-job, one
    cache entry garbled at publish — the batch's reports must be
    identical to a fault-free run modulo timings and the ``attempts``
    history, with the recovery visible in the counters.
    """
    architectures = ["SP-AR-RC", "BP-WT-CL", "SP-WT-CL"]
    baseline = VerificationService(jobs=jobs).run_grid(
        architectures, [4], ["mt-lr"])

    chaos(Fault("worker-crash", match="BP-WT-CL/4/mt-lr", times=1),
          Fault("cache-corrupt", match="*", times=1))
    service = VerificationService(
        jobs=jobs, cache_dir=tmp_path / "cache",
        retry_policy=RetryPolicy(seed=CHAOS_SEED, base_delay_s=0.01),
        fallback_policy=FallbackPolicy())
    reports = service.run_grid(architectures, [4], ["mt-lr"])

    assert [stable(r.to_row()) for r in reports] == \
        [stable(r.to_row()) for r in baseline]
    assert all(report.verdict == "verified" for report in reports)
    assert service.last_retries == 1
    histories = [r.attempts for r in reports if r.attempts]
    assert len(histories) == 1
    assert [e["outcome"] for e in histories[0]] == ["crash", "verified"]

    # Second pass over the same (once-corrupted) cache still agrees.
    again = VerificationService(
        jobs=jobs, cache_dir=tmp_path / "cache",
        retry_policy=RetryPolicy(seed=CHAOS_SEED, base_delay_s=0.01))
    reports = again.run_grid(architectures, [4], ["mt-lr"])
    assert [stable(r.to_row()) for r in reports] == \
        [stable(r.to_row()) for r in baseline]
    assert again.last_cache_hits + again.last_executed == len(architectures)
    assert again.last_executed >= 1, "the corrupted entry must re-execute"
