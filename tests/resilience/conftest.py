"""Chaos-suite fixtures: seeded fault plans activated via the environment.

The whole suite is parameterized by one integer, ``REPRO_CHAOS_SEED``
(default 7) — CI runs it twice with distinct seeds.  The seed feeds the
:class:`~repro.resilience.faults.FaultPlan` (corruption payloads) and the
retry policies (backoff jitter); every assertion must hold for any seed.
"""

from __future__ import annotations

import os

import pytest

import repro.resilience.faults as faults_module
from repro.resilience.faults import ENV_VAR, FaultPlan

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"))

#: Keys masked when comparing chaos output against a fault-free baseline:
#: wall-clock readings, solver search counters that legitimately move
#: between runs, and the ``attempts`` history itself (present on retried
#: rows only, by design).
VOLATILE_KEYS = frozenset((
    "time", "time_s", "reduction_time_s", "rewrite_time_s",
    "conflicts", "decisions", "attempts",
))


def stable(value):
    """A copy of a row/report document with every volatile key dropped."""
    if isinstance(value, dict):
        return {key: stable(item) for key, item in value.items()
                if key not in VOLATILE_KEYS}
    if isinstance(value, (list, tuple)):
        return [stable(item) for item in value]
    return value


@pytest.fixture
def chaos(tmp_path, monkeypatch):
    """Activate a seeded fault plan for this test (and its subprocesses).

    Returns a ``activate(*faults)`` callable; hit accounting goes through
    a marker directory under ``tmp_path`` so "once" means once fleet-wide
    even across respawned pool workers.  The plan cache is reset on both
    activation and teardown so plans never leak between tests.
    """
    def activate(*faults) -> FaultPlan:
        state = tmp_path / "fault-state"
        state.mkdir(exist_ok=True)
        plan = FaultPlan(seed=CHAOS_SEED, faults=tuple(faults),
                         state_dir=str(state))
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        faults_module._CACHED = (None, None)
        return plan

    monkeypatch.delenv(ENV_VAR, raising=False)
    faults_module._CACHED = (None, None)
    yield activate
    faults_module._CACHED = (None, None)
