"""Chaos tests for the worker pool: crash retries, stragglers, parity.

Every test drives a real multi-process :class:`ParallelRunner` with a
seeded :class:`FaultPlan` active and asserts the verdict rows are
identical (modulo timing and the ``attempts`` history) to a fault-free
baseline run of the same grid.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.experiments.runner import ExperimentConfig, ParallelRunner
from repro.resilience.faults import Fault
from repro.resilience.policy import RetryPolicy

from .conftest import CHAOS_SEED, stable

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault plans piggyback on inherited environment")

ARCHITECTURES = ["SP-AR-RC", "BP-WT-CL"]
CRASH_KEY = "BP-WT-CL/4/mt-lr"


@pytest.fixture
def config():
    return ExperimentConfig(widths=(4,), time_budget_s=60.0,
                            monomial_budget=200_000)


def _grid(config):
    return ParallelRunner.catalog(ARCHITECTURES, config.widths, ["mt-lr"])


def _policy(**overrides):
    settings = dict(seed=CHAOS_SEED, base_delay_s=0.01, max_delay_s=0.05)
    settings.update(overrides)
    return RetryPolicy(**settings)


@needs_fork
def test_crashed_worker_is_retried_to_verdict_parity(config, chaos):
    baseline = ParallelRunner(config, workers=2).run(_grid(config))
    chaos(Fault("worker-crash", match=CRASH_KEY, times=1))
    runner = ParallelRunner(config, workers=2, retry_policy=_policy())
    rows = runner.run(_grid(config))

    assert stable(rows) == stable(baseline)
    assert all(row["verified"] for row in rows)
    assert runner.last_retries == 1
    [retried] = [row for row in rows if row.get("attempts")]
    assert f"{retried['architecture']}/4/{retried['method']}" == CRASH_KEY
    kinds = [entry["kind"] for entry in retried["attempts"]]
    outcomes = [entry["outcome"] for entry in retried["attempts"]]
    assert kinds == ["initial", "retry"]
    assert outcomes == ["crash", "verified"]
    assert retried["attempts"][0]["next_delay_s"] > 0


@needs_fork
def test_attempts_are_bounded_when_the_crash_is_persistent(config, chaos):
    chaos(Fault("worker-crash", match=CRASH_KEY, times=99))
    policy = _policy(max_attempts=2)
    runner = ParallelRunner(config, workers=2, retry_policy=policy)
    rows = runner.run(_grid(config))

    [crashed] = [row for row in rows if row["status"] == "crash"]
    assert crashed["architecture"] == "BP-WT-CL"
    assert len(crashed["attempts"]) == policy.max_attempts
    assert [e["outcome"] for e in crashed["attempts"]] == ["crash", "crash"]
    assert runner.last_retries == policy.max_attempts - 1
    # The healthy job is untouched: verified, no history.
    [healthy] = [row for row in rows if row["architecture"] == "SP-AR-RC"]
    assert healthy["verified"] and "attempts" not in healthy


@needs_fork
def test_without_a_policy_the_crash_row_surfaces_unretried(config, chaos):
    chaos(Fault("worker-crash", match=CRASH_KEY, times=1))
    runner = ParallelRunner(config, workers=2)
    rows = runner.run(_grid(config))
    [crashed] = [row for row in rows if row["status"] == "crash"]
    assert "attempts" not in crashed
    assert runner.last_retries == 0


@needs_fork
def test_latency_fault_is_benign_without_straggler_grace(config, chaos):
    baseline = ParallelRunner(config, workers=2).run(_grid(config))
    chaos(Fault("worker-latency", match=CRASH_KEY, delay_s=0.3, times=1))
    rows = ParallelRunner(config, workers=2,
                          retry_policy=_policy()).run(_grid(config))
    assert stable(rows) == stable(baseline)
    assert all("attempts" not in row for row in rows)


@needs_fork
def test_straggler_is_redispatched_and_recovers(config, chaos):
    """A 5s stall against a 0.75s grace: killed, re-run, verified."""
    chaos(Fault("worker-latency", match=CRASH_KEY, delay_s=5.0, times=1))
    runner = ParallelRunner(config, workers=2, retry_policy=_policy(),
                            straggler_grace_s=0.75)
    rows = runner.run(_grid(config))

    assert all(row["verified"] for row in rows)
    [retried] = [row for row in rows if row.get("attempts")]
    assert retried["architecture"] == "BP-WT-CL"
    first = retried["attempts"][0]
    assert first["outcome"] == "hard_timeout"
    assert "straggler" in first["reason"]
    assert retried["attempts"][-1]["outcome"] == "verified"
