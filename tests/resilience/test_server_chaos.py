"""Chaos tests for the HTTP layer: disconnects, backpressure, drain."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.resilience.faults import Fault
from repro.resilience.policy import RetryPolicy
from repro.server.app import HttpResponse, VerificationServerApp
from repro.server.client import ServerError, VerificationClient
from repro.server.http import ServerThread

from .conftest import CHAOS_SEED

DOCUMENT = {"architecture": "SP-AR-RC", "width": 4, "method": "mt-lr"}


def _fast_retries() -> RetryPolicy:
    return RetryPolicy(seed=CHAOS_SEED, base_delay_s=0.01, max_delay_s=0.05)


def _bare() -> RetryPolicy:
    return RetryPolicy(max_attempts=1)


# -- dropped connections -------------------------------------------------------

def test_client_retry_heals_a_dropped_response(chaos):
    chaos(Fault("disconnect", match="POST /v1/verify", times=1))
    with ServerThread(VerificationServerApp()) as server:
        client = VerificationClient(port=server.port,
                                    retry_policy=_fast_retries())
        report = client.verify(DOCUMENT)
        assert report.verdict == "verified"


def test_truncated_body_surfaces_as_server_error_without_retries(chaos):
    chaos(Fault("disconnect", match="GET /metrics", times=5))
    with ServerThread(VerificationServerApp()) as server:
        client = VerificationClient(port=server.port, retry_policy=_bare())
        with pytest.raises(ServerError) as caught:
            client.metrics()
        assert caught.value.code == "truncated_response"
        assert caught.value.status == 0


def test_connect_error_surfaces_after_bounded_retries():
    # Nothing listens on this port: every attempt fails to connect.
    client = VerificationClient(port=1, timeout_s=1.0,
                                retry_policy=_fast_retries())
    with pytest.raises(ServerError) as caught:
        client.healthz()
    assert caught.value.code == "connection_error"


def test_transport_errors_distinguish_timeouts_from_connect_failures():
    """``request_timeout`` vs ``connection_error`` — the fleet dispatcher
    marks workers down only for the latter, so the codes must differ."""
    client = VerificationClient(retry_policy=_bare())

    def time_out(method, path, document):
        raise TimeoutError("timed out")

    client._exchange = time_out
    with pytest.raises(ServerError) as caught:
        client.request_raw("GET", "/healthz")
    assert caught.value.status == 0
    assert caught.value.code == "request_timeout"

    def refuse(method, path, document):
        raise ConnectionRefusedError("refused")

    client._exchange = refuse
    with pytest.raises(ServerError) as caught:
        client.request_raw("GET", "/healthz")
    assert caught.value.status == 0
    assert caught.value.code == "connection_error"


# -- backpressure --------------------------------------------------------------

def test_saturated_server_answers_429_with_retry_after():
    app = VerificationServerApp(max_inflight=0, retry_after_s=3)
    with ServerThread(app) as server:
        client = VerificationClient(port=server.port, retry_policy=_bare())
        status, body = client.request_raw("POST", "/v1/verify", DOCUMENT)
        assert status == 429
        assert json.loads(body)["error"]["code"] == "too_many_requests"
        _, _, retry_after = client._exchange("POST", "/v1/verify", DOCUMENT)
        assert retry_after == 3.0
        # Ungated introspection routes keep answering under saturation.
        assert client.healthz()["status"] == "ok"
        resilience = client.metrics()["resilience"]
        assert resilience["max_inflight"] == 0
        assert resilience["rejected_total"] >= 2


def test_streaming_batch_holds_the_inflight_slot_until_drained():
    """``"stream": true`` work runs while the body streams — the
    ``max_inflight`` slot must be held for the generator's lifetime,
    not just for the (instant) handler call."""
    app = VerificationServerApp(max_inflight=1)
    streaming = app.handle("POST", "/v1/batch", json.dumps(
        {"requests": [DOCUMENT], "stream": True}).encode("utf-8"))
    assert streaming.status == 200
    assert streaming.stream is not None
    # The stream is unconsumed, so its slot is taken: further
    # verification POSTs shed load instead of stacking without bound.
    rejected = app.handle("POST", "/v1/verify",
                          json.dumps(DOCUMENT).encode("utf-8"))
    assert rejected.status == 429
    lines = b"".join(streaming.stream).splitlines()
    assert json.loads(lines[0])["verdict"] == "verified"
    assert "trailer" in json.loads(lines[-1])
    # Exhausting the stream releases the slot.
    accepted = app.handle("POST", "/v1/verify",
                          json.dumps(DOCUMENT).encode("utf-8"))
    assert accepted.status == 200
    assert app._inflight == 0


def test_streaming_batch_releases_the_slot_on_close_before_first_chunk():
    """A client that disconnects before the body starts must not leak
    the slot — the transport closes the stream without iterating it."""
    app = VerificationServerApp(max_inflight=1)
    streaming = app.handle("POST", "/v1/batch", json.dumps(
        {"requests": [DOCUMENT], "stream": True}).encode("utf-8"))
    assert streaming.status == 200
    streaming.stream.close()
    assert app._inflight == 0
    accepted = app.handle("POST", "/v1/verify",
                          json.dumps(DOCUMENT).encode("utf-8"))
    assert accepted.status == 200


def test_backpressure_admits_when_capacity_frees_up():
    app = VerificationServerApp(max_inflight=2, retry_after_s=1)
    with ServerThread(app) as server:
        client = VerificationClient(port=server.port,
                                    retry_policy=_fast_retries())
        reports = [client.verify(DOCUMENT) for _ in range(4)]
        assert all(report.verdict == "verified" for report in reports)


# -- per-request deadlines -----------------------------------------------------

def test_request_deadline_clamps_to_budget_verdict():
    app = VerificationServerApp(request_deadline_s=1e-6)
    with ServerThread(app) as server:
        client = VerificationClient(port=server.port)
        report = client.verify({"architecture": "SP-AR-RC", "width": 8,
                                "method": "mt-lr"})
        assert report.verdict == "budget"
        assert report.exit_code == 3
        assert client.metrics()["resilience"]["request_deadline_s"] == 1e-6


# -- graceful shutdown ---------------------------------------------------------

class _SlowApp(VerificationServerApp):
    """One synthetic slow route so drain tests need no heavy verification."""

    def __init__(self) -> None:
        super().__init__()
        self.entered = threading.Event()

    def handle(self, method: str, path: str, body: bytes = b"") -> HttpResponse:
        if path == "/slow":
            self.entered.set()
            time.sleep(0.6)
            return HttpResponse(200, b'{"slow": true}')
        return super().handle(method, path, body)


def test_server_thread_shutdown_drains_in_flight_requests():
    """Stopping the server mid-request still answers that request."""
    app = _SlowApp()
    results: list = []
    with ServerThread(app) as server:
        client = VerificationClient(port=server.port, retry_policy=_bare())

        def slow_call():
            results.append(client.request("GET", "/slow"))

        caller = threading.Thread(target=slow_call)
        caller.start()
        assert app.entered.wait(timeout=5.0), "request never reached the app"
        # Exiting the context stops the server while /slow is in flight.
    caller.join(timeout=10.0)
    assert results == [{"slow": True}]


def test_stop_without_drain_budget_returns_immediately():
    """drain_s=0 means "don't wait": stop returns while /slow still runs.

    (It is not a connection killer — a handler already executing keeps
    its thread; in a real shutdown the event loop teardown right after
    ``stop`` is what drops it.  What 0 guarantees is that ``stop`` never
    blocks on in-flight work.)
    """
    import asyncio
    import contextlib

    from repro.server.http import VerificationHttpServer

    app = _SlowApp()

    async def scenario():
        server = VerificationHttpServer(app, port=0)
        await server.start()
        client = VerificationClient(port=server.port, retry_policy=_bare())
        loop = asyncio.get_running_loop()
        call = loop.run_in_executor(
            None, lambda: client.request("GET", "/slow"))
        await loop.run_in_executor(
            None, lambda: app.entered.wait(timeout=5.0))
        start = time.perf_counter()
        await server.stop(drain_s=0)
        elapsed = time.perf_counter() - start
        # The handler sleeps 0.6s; an undrained stop must not ride it out.
        assert elapsed < 0.4, f"stop(drain_s=0) blocked for {elapsed:.2f}s"
        with contextlib.suppress(ServerError):
            await asyncio.wait_for(call, timeout=10.0)

    asyncio.run(scenario())
