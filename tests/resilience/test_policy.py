"""Unit tests for the retry/fallback policies and the failure taxonomy."""

from __future__ import annotations

import pytest

from repro.api.registry import get_backend
from repro.api.request import Budgets
from repro.errors import VerificationError
from repro.resilience.policy import (
    FAILURE_CLASSES,
    FallbackPolicy,
    FallbackStep,
    RetryPolicy,
    attempt_entry,
    classify_row,
    escalate_budgets,
)

from .conftest import CHAOS_SEED


# -- failure classification ----------------------------------------------------

@pytest.mark.parametrize("row, expected", [
    ({"status": "crash", "reason": "worker exited with code 137"}, "crash"),
    ({"status": "error", "reason": "ValueError: boom"}, "error"),
    ({"status": "TO", "reason": "hard task timeout after 1.0s"},
     "hard_timeout"),
    ({"status": "TO", "reason": "straggler re-dispatch after 0.5s grace"},
     "hard_timeout"),
    ({"status": "TO", "reason": "monomial budget exceeded (24 > 5)"},
     "budget"),
    ({"status": "TO", "reason": None}, "budget"),
    ({"status": "ok", "verified": True}, "none"),
    ({"status": "FAIL", "verified": False}, "none"),
])
def test_classify_row(row, expected):
    assert classify_row(row) == expected
    assert expected in FAILURE_CLASSES


# -- retry policy --------------------------------------------------------------

def test_retry_policy_defaults_retry_environment_failures_only():
    policy = RetryPolicy()
    assert policy.is_retryable("crash")
    assert policy.is_retryable("hard_timeout")
    assert not policy.is_retryable("budget")
    assert not policy.is_retryable("error")
    assert not policy.is_retryable("none")


def test_retry_policy_validates():
    with pytest.raises(VerificationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(VerificationError):
        RetryPolicy(retryable=("crash", "verdict"))


def test_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(seed=CHAOS_SEED)
    for attempt in (1, 2, 3, 5):
        base = min(policy.base_delay_s * policy.multiplier ** (attempt - 1),
                   policy.max_delay_s)
        delay = policy.delay_s(attempt, key="SP-AR-RC/4/mt-lr")
        assert delay == policy.delay_s(attempt, key="SP-AR-RC/4/mt-lr")
        assert base <= delay <= base * (1.0 + policy.jitter)
    # The cap holds even for absurd attempt counts.
    assert policy.delay_s(40, key="x") <= policy.max_delay_s * 1.1


def test_backoff_decorrelates_distinct_jobs():
    policy = RetryPolicy(seed=CHAOS_SEED)
    delays = {policy.delay_s(1, key=f"arch-{i}/4/mt-lr") for i in range(16)}
    assert len(delays) > 1, "jitter must separate distinct jobs"


def test_backoff_differs_across_seeds():
    a = RetryPolicy(seed=CHAOS_SEED).delay_s(1, key="k")
    b = RetryPolicy(seed=CHAOS_SEED + 1).delay_s(1, key="k")
    assert a != b


# -- budget escalation ---------------------------------------------------------

def test_escalate_budgets_scales_set_guards_and_keeps_types():
    budgets = Budgets(monomial_budget=1000, time_budget_s=2.0,
                      sat_conflict_budget=None)
    scaled = escalate_budgets(budgets, 4.0)
    assert scaled.monomial_budget == 4000
    assert isinstance(scaled.monomial_budget, int)
    assert scaled.time_budget_s == 8.0
    assert scaled.sat_conflict_budget is None
    # The original is untouched (frozen-style replace semantics).
    assert budgets.monomial_budget == 1000


# -- fallback policy -----------------------------------------------------------

def test_fallback_step_validates():
    with pytest.raises(VerificationError):
        FallbackStep("retry")
    with pytest.raises(VerificationError):
        FallbackStep("backend")
    with pytest.raises(VerificationError):
        FallbackStep("escalate", budget_scale=1.0)


def test_registry_derived_chain_for_algebraic_backend():
    chain = FallbackPolicy().chain_for("mt-lr")
    assert chain[0].kind == "escalate"
    assert [step.method for step in chain[1:]] == \
        list(get_backend("mt-lr").degrades_to)
    assert "sat-cec" in {step.method for step in chain[1:]}


def test_chain_for_baseline_backend_is_empty():
    # sat-cec is the end of the line: nothing cheaper to trust.
    assert FallbackPolicy().chain_for("sat-cec") == ()


def test_explicit_chains_override_registry():
    steps = (FallbackStep("backend", method="bdd-cec"),)
    policy = FallbackPolicy(chains={"mt-lr": steps})
    assert policy.chain_for("mt-lr") == steps
    # Other methods fall back to the registry derivation.
    assert policy.chain_for("mt-fo")[0].kind == "escalate"
    wildcard = FallbackPolicy(chains={"*": steps})
    assert wildcard.chain_for("mt-naive") == steps


def test_parse_specs():
    assert FallbackPolicy.parse("none") is None
    assert FallbackPolicy.parse("default") == FallbackPolicy()
    policy = FallbackPolicy.parse("escalate:8,sat-cec")
    chain = policy.chain_for("mt-lr")
    assert chain[0] == FallbackStep("escalate", budget_scale=8.0)
    assert chain[1] == FallbackStep("backend", method="sat-cec")
    with pytest.raises(VerificationError):
        FallbackPolicy.parse("no-such-backend")
    with pytest.raises(VerificationError):
        FallbackPolicy.parse(",")


# -- attempts history ----------------------------------------------------------

def test_attempt_entry_shape():
    entry = attempt_entry(2, "mt-lr", "retry", "verified",
                          next_delay_s=0.05)
    assert list(entry) == ["attempt", "method", "kind", "outcome",
                           "reason", "next_delay_s"]
    assert entry["reason"] is None
