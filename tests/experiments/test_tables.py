"""Tests for the table generators (paper Tables I-III and the extra analyses)."""

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.experiments.tables import (
    ablation_rows,
    adder_blowup_rows,
    format_table,
    main,
    table1_rows,
    table2_rows,
    table3_rows,
)


@pytest.fixture
def tiny_config():
    return ExperimentConfig(widths=(3,), time_budget_s=30.0,
                            monomial_budget=500_000,
                            sat_conflict_budget=50_000,
                            bdd_node_budget=500_000)


def test_table1_rows_have_expected_columns(tiny_config):
    rows = table1_rows(tiny_config, architectures=("SP-AR-RC", "SP-WT-CL"),
                       include_baselines=False)
    assert len(rows) == 2
    for row in rows:
        assert row["benchmark"].startswith("SP")
        assert row["bits"] == "3/6"
        assert row["verified"] is True
        assert row["mt-lr"] != "TO"


def test_table2_rows_mark_cpp_not_applicable(tiny_config):
    rows = table2_rows(tiny_config, architectures=("BP-AR-RC",),
                       include_baselines=True)
    assert rows[0]["cpp"] == "-"
    assert rows[0]["verified"] is True


def test_table3_rows_report_model_statistics(tiny_config):
    rows = table3_rows(tiny_config, architectures=("BP-WT-CL",))
    row = rows[0]
    assert row["#P"] > 0 and row["#M"] > 0
    assert row["#CVM"] > 0
    assert row["#VM"] >= 2


def test_adder_blowup_rows_show_mt_lr_advantage():
    rows = adder_blowup_rows(widths=(8,), adder_kind="KS",
                             monomial_budget=200_000, time_budget_s=20.0)
    row = rows[0]
    assert row["mt-lr"] != "TO"


def test_ablation_rows(tiny_config):
    rows = ablation_rows(tiny_config, architectures=("SP-CT-BK",))
    assert {"mt-fo", "mt-xor", "mt-lr"} <= set(rows[0])


def test_format_table_renders_all_rows():
    rows = [{"benchmark": "SP-AR-RC", "time": "00:00:01"},
            {"benchmark": "BP-CT-BK", "time": "TO"}]
    text = format_table(rows, title="Demo")
    assert "Demo" in text
    assert "SP-AR-RC" in text and "TO" in text
    assert format_table([], title="Empty").startswith("Empty")


def test_main_rejects_unknown_table(capsys):
    assert main(["does-not-exist"]) == 1
