"""Tests for the experiment runners (table-row generation)."""

import pytest

from repro.experiments.runner import (
    ExperimentConfig,
    run_bdd_cec,
    run_membership_testing,
    run_sat_cec,
)


@pytest.fixture
def small_config():
    return ExperimentConfig(widths=(3,), time_budget_s=30.0,
                            monomial_budget=200_000,
                            sat_conflict_budget=50_000,
                            bdd_node_budget=200_000)


def test_config_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_BITS", "4,8,16")
    monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "12.5")
    monkeypatch.setenv("REPRO_BENCH_SAT_CONFLICTS", "777")
    config = ExperimentConfig.from_environment()
    assert config.widths == (4, 8, 16)
    assert config.time_budget_s == 12.5
    assert config.sat_conflict_budget == 777


def test_membership_testing_row_for_mt_lr(small_config):
    row = run_membership_testing("SP-WT-CL", 3, "mt-lr", small_config)
    assert row["status"] == "ok"
    assert row["verified"] is True
    assert row["time"] != "TO"
    assert row["num_polynomials"] > 0
    assert row["cancelled_vanishing_monomials"] > 0


def test_membership_testing_row_reports_timeout(small_config):
    config = ExperimentConfig(widths=(6,), time_budget_s=2.0, monomial_budget=500)
    row = run_membership_testing("BP-RT-KS", 6, "mt-fo", config)
    assert row["status"] == "TO"
    assert row["time"] == "TO"
    assert row["verified"] is None


def test_sat_cec_rows(small_config):
    row = run_sat_cec("SP-WT-CL", 3, small_config)
    assert row["status"] == "ok"
    booth = run_sat_cec("BP-AR-RC", 3, small_config, booth_supported=False)
    assert booth["status"] == "n/a"
    assert booth["time"] == "-"


def test_bdd_cec_row(small_config):
    row = run_bdd_cec("SP-AR-RC", 3, small_config)
    assert row["status"] == "ok"
    assert row["bdd_nodes"] > 0
