"""Tests for the on-disk verification result cache.

The acceptance property: a cached re-run of an already-completed table
executes zero verification jobs and reproduces byte-identical rows.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import runner as runner_module
from repro.experiments.runner import (
    ExperimentConfig,
    ParallelRunner,
    ResultCache,
    VerificationJob,
)


@pytest.fixture
def config():
    return ExperimentConfig(widths=(3,), time_budget_s=60.0,
                            monomial_budget=200_000)


JOBS = [VerificationJob("SP-AR-RC", 3, "mt-lr"),
        VerificationJob("SP-WT-CL", 3, "mt-lr"),
        VerificationJob("SP-AR-RC", 3, "mt-fo")]


def _run_counting(monkeypatch):
    """Patch the job executor to count real executions."""
    executed = []
    real = runner_module._guarded_run_job

    def counting(job, cfg):
        executed.append(job.key)
        return real(job, cfg)

    monkeypatch.setattr(runner_module, "_guarded_run_job", counting)
    return executed


def test_cached_rerun_executes_zero_jobs_and_is_byte_identical(
        tmp_path, config, monkeypatch):
    executed = _run_counting(monkeypatch)
    runner = ParallelRunner(config, workers=1, cache_dir=tmp_path)
    first = runner.run(JOBS)
    assert len(executed) == len(JOBS)
    first_bytes = json.dumps(first, default=str)

    executed.clear()
    rerun = ParallelRunner(config, workers=1, cache_dir=tmp_path)
    second = rerun.run(JOBS)
    assert executed == [], "cached re-run must execute zero jobs"
    assert json.dumps(second, default=str) == first_bytes


def test_cache_streams_callbacks_for_cached_rows(tmp_path, config):
    ParallelRunner(config, workers=1, cache_dir=tmp_path).run(JOBS)
    seen = []
    rows = ParallelRunner(config, workers=1, cache_dir=tmp_path).run(
        JOBS, on_result=lambda job, row: seen.append(job.key))
    assert seen == [job.key for job in JOBS]
    assert all(row["verified"] for row in rows)


def test_cache_key_depends_on_budgets_and_content(tmp_path, config):
    cache = ResultCache(tmp_path)
    job = VerificationJob("SP-AR-RC", 3, "mt-lr")
    base = cache.key(job, config)
    assert base == cache.key(job, config)
    tighter = ExperimentConfig(widths=(3,), monomial_budget=1_000)
    assert cache.key(job, tighter) != base
    capped = ExperimentConfig(widths=(3,), vanishing_cache_limit=64)
    assert cache.key(job, capped) != base
    assert cache.key(job, config, task_timeout_s=5.0) != base
    # Job-level overrides key the job like the equivalent batch-level args.
    override = VerificationJob("SP-AR-RC", 3, "mt-lr", config=tighter)
    assert cache.key(override, config) == cache.key(job, tighter)
    timed = VerificationJob("SP-AR-RC", 3, "mt-lr", task_timeout_s=5.0)
    assert cache.key(timed, config) == cache.key(job, config,
                                                 task_timeout_s=5.0)
    other_method = VerificationJob("SP-AR-RC", 3, "mt-fo")
    assert cache.key(other_method, config) != base
    unknown = VerificationJob("XX-YY-ZZ", 3, "mt-lr")
    assert cache.key(unknown, config) is None


def test_error_rows_are_not_cached(tmp_path, config, monkeypatch):
    executed = _run_counting(monkeypatch)
    jobs = [VerificationJob("SP-AR-RC", 3, "not-a-method")]
    runner = ParallelRunner(config, workers=1, cache_dir=tmp_path)
    rows = runner.run(jobs)
    assert rows[0]["status"] == "error"
    executed.clear()
    rows = ParallelRunner(config, workers=1, cache_dir=tmp_path).run(jobs)
    assert rows[0]["status"] == "error"
    assert executed, "error rows must be re-executed, not served from cache"


def test_partial_cache_runs_only_missing_jobs(tmp_path, config, monkeypatch):
    executed = _run_counting(monkeypatch)
    ParallelRunner(config, workers=1, cache_dir=tmp_path).run(JOBS[:2])
    executed.clear()
    rows = ParallelRunner(config, workers=1, cache_dir=tmp_path).run(JOBS)
    assert executed == [JOBS[2].key]
    assert [row["architecture"] for row in rows] == [
        job.architecture for job in JOBS]


def test_cache_from_environment(tmp_path, config, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
    env_config = ExperimentConfig.from_environment()
    assert env_config.cache_dir == str(tmp_path)
    env_config.widths = (3,)
    executed = _run_counting(monkeypatch)
    ParallelRunner(env_config, workers=1).run(JOBS[:1])
    executed.clear()
    ParallelRunner(env_config, workers=1).run(JOBS[:1])
    assert executed == []


def test_corrupt_cache_entry_is_a_miss(tmp_path, config):
    cache = ResultCache(tmp_path)
    job = JOBS[0]
    key = cache.key(job, config)
    (tmp_path / f"{key}.json").write_text("{not json", encoding="utf-8")
    assert cache.get(key) is None
    rows = ParallelRunner(config, workers=1, cache_dir=tmp_path).run([job])
    assert rows[0]["verified"] is True


def test_runner_reports_cache_hit_and_executed_counts(tmp_path, config):
    jobs = [VerificationJob("SP-AR-RC", 3, "mt-lr"),
            VerificationJob("SP-WT-RC", 3, "mt-lr")]
    runner = ParallelRunner(config, workers=1, cache_dir=tmp_path)
    runner.run(jobs)
    assert runner.last_cache_hits == 0
    assert runner.last_executed == len(jobs)
    rerun = ParallelRunner(config, workers=1, cache_dir=tmp_path)
    rerun.run(jobs)
    assert rerun.last_cache_hits == len(jobs)
    assert rerun.last_executed == 0


def test_batch_cli_prints_cache_footer(tmp_path, capsys):
    from repro.cli import main

    argv = ["batch", "-a", "SP-AR-RC", "-w", "3", "-m", "mt-lr",
            "--cache", str(tmp_path)]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "cache: hits=0 executed=1" in first
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "cache: hits=1 executed=0" in second
    # Aside from the cache footer, the cached re-run is byte-identical.
    strip = lambda text: [line for line in text.splitlines()
                          if not line.startswith("cache:")]
    assert strip(first) == strip(second)


def test_batch_cli_has_no_footer_without_cache(capsys):
    from repro.cli import main

    assert main(["batch", "-a", "SP-AR-RC", "-w", "2", "-m", "mt-lr"]) == 0
    out = capsys.readouterr().out
    assert "cache:" not in out
