"""Tests for small formatting helpers of the experiment harness."""

from repro.experiments.runner import _format_seconds


def test_format_seconds_paper_style():
    assert _format_seconds(0.0) == "00:00:00.00"
    assert _format_seconds(61.5) == "00:01:01.50"
    assert _format_seconds(3723.25) == "01:02:03.25"


def test_format_seconds_rolls_over_hours():
    assert _format_seconds(100 * 3600.0).startswith("100:")
