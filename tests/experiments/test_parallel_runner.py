"""Tests for the parallel batch runner (parity, crash isolation, timeouts)."""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.experiments import runner as runner_module
from repro.experiments.runner import (
    ExperimentConfig,
    ParallelRunner,
    VerificationJob,
    run_catalog,
    run_job,
)

#: Row keys that must be bit-identical between serial and parallel execution
#: (timings are excluded — they legitimately differ between runs).
DETERMINISTIC_KEYS = (
    "architecture", "width", "method", "status", "verified",
    "cancelled_vanishing_monomials", "num_polynomials", "num_monomials",
    "max_polynomial_terms", "max_monomial_variables", "peak_remainder",
)

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method required to inherit monkeypatched workers")


@pytest.fixture
def config():
    return ExperimentConfig(widths=(3,), time_budget_s=60.0,
                            monomial_budget=200_000)


def _deterministic(rows):
    return [tuple(row.get(key) for key in DETERMINISTIC_KEYS) for row in rows]


def test_catalog_grid_order():
    grid = ParallelRunner.catalog(["A", "B"], [2, 4], ["mt-lr", "mt-fo"])
    assert [job.key for job in grid[:3]] == [
        ("A", 2, "mt-lr"), ("A", 2, "mt-fo"), ("B", 2, "mt-lr")]
    assert len(grid) == 8


def test_parallel_results_match_serial(config):
    runner = ParallelRunner(config, workers=2)
    jobs = ParallelRunner.catalog(
        ["SP-AR-RC", "SP-WT-CL", "SP-CT-BK"], [3], ["mt-lr", "mt-fo"])
    parallel_rows = runner.run(jobs)
    serial_rows = runner.run_serial(jobs)
    assert _deterministic(parallel_rows) == _deterministic(serial_rows)
    assert all(row["verified"] for row in parallel_rows)


def test_streaming_callback_sees_every_job(config):
    seen = []
    runner = ParallelRunner(config, workers=2)
    jobs = ParallelRunner.catalog(["SP-AR-RC", "SP-DT-HC"], [3], ["mt-lr"])
    rows = runner.run(jobs, on_result=lambda job, row: seen.append(job.key))
    assert sorted(seen) == sorted(job.key for job in jobs)
    assert len(rows) == len(jobs)


def test_bad_job_is_isolated_not_fatal(config):
    """A generator error on one circuit must not abort the batch."""
    jobs = [VerificationJob("SP-AR-RC", 3, "mt-lr"),
            VerificationJob("XX-YY-ZZ", 3, "mt-lr"),   # unknown architecture
            VerificationJob("SP-WT-CL", 3, "mt-lr")]
    for workers in (1, 2):
        rows = ParallelRunner(config, workers=workers).run(jobs)
        assert [row["status"] for row in rows] == ["ok", "error", "ok"]
        assert "CircuitError" in rows[1]["reason"]


def test_unknown_method_is_reported_as_error_row(config):
    rows = ParallelRunner(config, workers=1).run(
        [VerificationJob("SP-AR-RC", 3, "not-a-method")])
    assert rows[0]["status"] == "error"
    with pytest.raises(Exception):
        run_job(VerificationJob("SP-AR-RC", 3, "not-a-method"), config)


@needs_fork
def test_worker_crash_is_reported_per_job(config, monkeypatch):
    """A worker dying without a result yields a crash row, not a hang."""

    real_run_job = runner_module.run_job

    def crashing_run_job(job, cfg):
        if job.architecture == "SP-WT-CL":
            os._exit(17)  # simulate a segfault/OOM kill
        return real_run_job(job, cfg)

    monkeypatch.setattr(runner_module, "run_job", crashing_run_job)
    jobs = [VerificationJob("SP-AR-RC", 3, "mt-lr"),
            VerificationJob("SP-WT-CL", 3, "mt-lr"),
            VerificationJob("SP-DT-HC", 3, "mt-lr")]
    rows = ParallelRunner(config, workers=2).run(jobs)
    assert [row["status"] for row in rows] == ["ok", "crash", "ok"]
    assert "17" in rows[1]["reason"]


@needs_fork
def test_hard_task_timeout_kills_the_worker(config, monkeypatch):
    real_run_job = runner_module.run_job

    def sleeping_run_job(job, cfg):
        if job.architecture == "SP-WT-CL":
            time.sleep(60)
        return real_run_job(job, cfg)

    monkeypatch.setattr(runner_module, "run_job", sleeping_run_job)
    jobs = [VerificationJob("SP-WT-CL", 3, "mt-lr"),
            VerificationJob("SP-AR-RC", 3, "mt-lr")]
    start = time.monotonic()
    rows = ParallelRunner(config, workers=2, task_timeout_s=1.0).run(jobs)
    assert time.monotonic() - start < 30
    assert rows[0]["status"] == "TO"
    assert rows[0]["reason"] == "hard task timeout"
    assert rows[1]["status"] == "ok"


@needs_fork
def test_workers_are_reused_across_jobs(config, monkeypatch):
    """The pool must not fork one process per job."""

    real_run_job = runner_module.run_job

    def pid_stamping_run_job(job, cfg):
        row = real_run_job(job, cfg)
        row["worker_pid"] = os.getpid()
        return row

    monkeypatch.setattr(runner_module, "run_job", pid_stamping_run_job)
    jobs = ParallelRunner.catalog(
        ["SP-AR-RC", "SP-WT-CL", "SP-CT-BK", "SP-DT-HC"], [3], ["mt-lr"])
    rows = ParallelRunner(config, workers=2).run(jobs)
    pids = {row["worker_pid"] for row in rows}
    assert len(pids) <= 2, "jobs must share the persistent workers"
    assert all(row["verified"] for row in rows)


@needs_fork
def test_pool_survives_timeout_then_finishes_remaining_jobs(config, monkeypatch):
    """A killed worker is replaced and the queue keeps draining."""

    real_run_job = runner_module.run_job

    def sleeping_run_job(job, cfg):
        if job.architecture == "SP-WT-CL":
            time.sleep(60)
        return real_run_job(job, cfg)

    monkeypatch.setattr(runner_module, "run_job", sleeping_run_job)
    jobs = [VerificationJob("SP-WT-CL", 3, "mt-lr"),
            VerificationJob("SP-AR-RC", 3, "mt-lr"),
            VerificationJob("SP-DT-HC", 3, "mt-lr"),
            VerificationJob("SP-CT-BK", 3, "mt-lr")]
    rows = ParallelRunner(config, workers=1, task_timeout_s=1.0).run(jobs)
    assert [row["status"] for row in rows] == ["TO", "ok", "ok", "ok"]


def test_run_catalog_convenience(config):
    rows = run_catalog(["SP-AR-RC"], [3], ["mt-lr"], config=config, jobs=1)
    assert len(rows) == 1 and rows[0]["verified"] is True


def test_config_jobs_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_JOBS", "3")
    assert ExperimentConfig.from_environment().jobs == 3


# ---------------------------------------------------------------------------
# Longest-expected-first scheduling
# ---------------------------------------------------------------------------

def test_expected_cost_key_orders_width_then_method_then_architecture():
    from repro.experiments.runner import expected_cost_key

    light = VerificationJob("SP-AR-RC", 4, "mt-lr")
    wide = VerificationJob("SP-AR-RC", 16, "mt-lr")
    heavy_method = VerificationJob("SP-AR-RC", 16, "mt-naive")
    booth_tree = VerificationJob("BP-WT-CL", 16, "mt-naive")
    assert expected_cost_key(light) < expected_cost_key(wide)
    assert expected_cost_key(wide) < expected_cost_key(heavy_method)
    assert expected_cost_key(heavy_method) < expected_cost_key(booth_tree)


def test_parallel_assignment_prefers_expensive_jobs_first(config, monkeypatch):
    """The widest/heaviest job must be assigned before the light tail."""
    from repro.experiments.runner import expected_cost_key

    assigned = []
    original_assign = runner_module._PoolWorker.assign

    def spy(self, index, job, task_timeout_s):
        assigned.append(job)
        return original_assign(self, index, job, task_timeout_s)

    monkeypatch.setattr(runner_module._PoolWorker, "assign", spy)
    jobs = [VerificationJob("SP-AR-RC", 3, "mt-lr"),
            VerificationJob("SP-AR-RC", 3, "mt-fo"),
            VerificationJob("SP-WT-RC", 4, "mt-lr"),
            VerificationJob("BP-WT-RC", 4, "mt-fo")]
    runner = ParallelRunner(config, workers=2)
    rows = runner.run(jobs)
    # Results keep grid order regardless of the schedule.
    assert [row["architecture"] for row in rows] == [
        job.architecture for job in jobs]
    # The first assignment is the heaviest job by the cost heuristic.
    heaviest = max(jobs, key=expected_cost_key)
    assert assigned[0] == heaviest


def test_parallel_schedule_matches_serial_rows(config):
    """Scheduling order never leaks into the result rows."""
    jobs = [VerificationJob(arch, width, "mt-lr")
            for width in (2, 3) for arch in ("SP-AR-RC", "SP-WT-RC")]
    runner = ParallelRunner(config, workers=2)
    serial = runner.run_serial(jobs)
    parallel = runner.run(jobs)
    assert _deterministic(serial) == _deterministic(parallel)


def test_job_level_config_overrides_batch_config(config):
    """Per-job budget groups (ISSUE 5): the job's config wins everywhere."""
    tight = ExperimentConfig(widths=(3,), monomial_budget=50,
                             time_budget_s=60.0)
    jobs = [VerificationJob("SP-WT-CL", 3, "mt-naive"),
            VerificationJob("SP-WT-CL", 3, "mt-naive", config=tight)]
    for workers in (1, 2):
        rows = ParallelRunner(config, workers=workers).run(jobs)
        assert [row["status"] for row in rows] == ["ok", "TO"], workers
        assert "monomial budget" in rows[1]["reason"]


def test_job_level_config_keys_the_cache_separately(config, tmp_path):
    """One job under two budget groups must occupy two cache entries."""
    tight = ExperimentConfig(widths=(3,), monomial_budget=50,
                             time_budget_s=60.0)
    runner = ParallelRunner(config, workers=1, cache_dir=tmp_path)
    [tripped] = runner.run([VerificationJob("SP-WT-CL", 3, "mt-naive",
                                            config=tight)])
    assert tripped["status"] == "TO"
    [verified] = runner.run([VerificationJob("SP-WT-CL", 3, "mt-naive")])
    assert runner.last_executed == 1           # distinct key: no stale hit
    assert verified["status"] == "ok"
    [replayed] = runner.run([VerificationJob("SP-WT-CL", 3, "mt-naive",
                                             config=tight)])
    assert runner.last_cache_hits == 1
    assert replayed == tripped


@needs_fork
def test_job_level_task_timeout_overrides_runner_default(config, monkeypatch):
    real_run_job = runner_module.run_job

    def sleeping_run_job(job, cfg):
        if job.architecture == "SP-WT-CL":
            time.sleep(60)
        return real_run_job(job, cfg)

    monkeypatch.setattr(runner_module, "run_job", sleeping_run_job)
    jobs = [VerificationJob("SP-WT-CL", 3, "mt-lr", task_timeout_s=1.0),
            VerificationJob("SP-AR-RC", 3, "mt-lr")]
    start = time.monotonic()
    rows = ParallelRunner(config, workers=2).run(jobs)   # no runner default
    assert time.monotonic() - start < 30
    assert rows[0]["status"] == "TO"
    assert rows[0]["time_s"] == 1.0
    assert rows[1]["status"] == "ok"
