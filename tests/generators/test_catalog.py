"""Tests for architecture-name parsing and the benchmark catalogue."""

import pytest

from repro.errors import CircuitError
from repro.generators.catalog import (
    ACCUMULATOR_KINDS,
    Architecture,
    PARTIAL_PRODUCT_KINDS,
    TABLE1_ARCHITECTURES,
    TABLE2_ARCHITECTURES,
    TABLE3_ARCHITECTURES,
    architecture_names,
    parse_architecture,
)


def test_parse_architecture_roundtrip():
    arch = parse_architecture("bp-wt-cl")
    assert arch == Architecture("BP", "WT", "CL")
    assert arch.name == "BP-WT-CL"
    assert "Booth" in arch.describe()
    assert "Wallace" in arch.describe()


def test_parse_rejects_malformed_names():
    for bad in ("SP", "SP-AR", "SP-AR-RC-XX", "QQ-AR-RC", "SP-QQ-RC", "SP-AR-QQ"):
        with pytest.raises(CircuitError):
            parse_architecture(bad)


def test_architecture_names_cover_full_grid():
    names = architecture_names()
    assert len(names) == len(PARTIAL_PRODUCT_KINDS) * len(ACCUMULATOR_KINDS) * 5
    assert "SP-AR-RC" in names and "BP-RT-KS" in names
    assert len(set(names)) == len(names)


def test_table_architectures_are_parseable():
    for name in TABLE1_ARCHITECTURES + TABLE2_ARCHITECTURES + TABLE3_ARCHITECTURES:
        arch = parse_architecture(name)
        assert arch.name == name
    assert all(name.startswith("SP") for name in TABLE1_ARCHITECTURES)
    assert all(name.startswith("BP") for name in TABLE2_ARCHITECTURES)
