"""Tests for the simple and Booth partial-product generators.

The partial products of both generators must sum (column-weighted, modulo
``2^(2n)``) to the full product ``A*B`` — this is checked exhaustively for
small operand widths by simulating every generated signal.
"""

import itertools

import pytest

from repro.circuit.netlist import Netlist
from repro.circuit.simulate import simulate
from repro.generators.partial_products import (
    booth_digit,
    booth_partial_products,
    column_heights,
    simple_partial_products,
)


def _columns_value(netlist, columns, assignment):
    values = simulate(netlist, assignment)
    total = 0
    for weight, column in enumerate(columns):
        for signal in column:
            total += values[signal] << weight
    return total


def _build(generator, width):
    netlist = Netlist(f"pp_{width}")
    a = netlist.add_input_word("a", width)
    b = netlist.add_input_word("b", width)
    columns = generator(netlist, a, b)
    return netlist, columns


@pytest.mark.parametrize("width", [1, 2, 3, 4])
def test_simple_partial_products_sum_to_product(width):
    netlist, columns = _build(simple_partial_products, width)
    assert len(columns) == 2 * width
    for a_val, b_val in itertools.product(range(1 << width), repeat=2):
        assignment = {f"a{i}": (a_val >> i) & 1 for i in range(width)}
        assignment.update({f"b{i}": (b_val >> i) & 1 for i in range(width)})
        assert _columns_value(netlist, columns, assignment) == a_val * b_val


@pytest.mark.parametrize("width", [2, 3, 4, 5])
def test_booth_partial_products_sum_to_product_mod(width):
    netlist, columns = _build(booth_partial_products, width)
    assert len(columns) == 2 * width
    modulus = 1 << (2 * width)
    for a_val, b_val in itertools.product(range(1 << width), repeat=2):
        assignment = {f"a{i}": (a_val >> i) & 1 for i in range(width)}
        assignment.update({f"b{i}": (b_val >> i) & 1 for i in range(width)})
        got = _columns_value(netlist, columns, assignment) % modulus
        assert got == (a_val * b_val) % modulus, (a_val, b_val)


def test_simple_partial_products_column_heights():
    _, columns = _build(simple_partial_products, 4)
    assert column_heights(columns) == [1, 2, 3, 4, 3, 2, 1, 0]


def test_booth_produces_fewer_rows_than_simple():
    """Radix-4 recoding roughly halves the number of partial-product rows."""
    _, simple_cols = _build(simple_partial_products, 8)
    _, booth_cols = _build(booth_partial_products, 8)
    assert max(column_heights(simple_cols)) == 8
    # n/2 + 1 magnitude rows plus the correction bits.
    assert max(column_heights(booth_cols)) <= 8


def test_booth_digit_values():
    """The recoded digits d_j = b[2j-1] + b[2j] - 2 b[2j+1] reconstruct B."""
    width = 6
    netlist = Netlist()
    b = netlist.add_input_word("b", width)
    digits = [booth_digit(netlist, b, j) for j in range(width // 2 + 1)]
    for b_val in range(1 << width):
        assignment = {f"b{i}": (b_val >> i) & 1 for i in range(width)}
        values = simulate(netlist, assignment)
        total = 0
        for j, digit in enumerate(digits):
            magnitude = values[digit.one] + 2 * values[digit.two]
            signed = -magnitude if values[digit.neg] else magnitude
            # neg with zero magnitude encodes 0 (handled by full-width two's
            # complement in the row encoding); the digit value itself is then 0.
            bit_lo = (b_val >> (2 * j - 1)) & 1 if j > 0 else 0
            bit_mid = (b_val >> (2 * j)) & 1 if 2 * j < width else 0
            bit_hi = (b_val >> (2 * j + 1)) & 1 if 2 * j + 1 < width else 0
            expected_digit = bit_lo + bit_mid - 2 * bit_hi
            if expected_digit != 0:
                assert signed == expected_digit
            total += expected_digit * (4 ** j)
        assert total == b_val
