"""Tests for the composed multiplier generator (all architectures)."""

import pytest

from repro.circuit.simulate import exhaustive_check
from repro.errors import CircuitError
from repro.generators.catalog import architecture_names
from repro.generators.multipliers import MultiplierSpec, generate_multiplier, \
    multiplier_spec


@pytest.mark.parametrize("architecture", architecture_names())
def test_every_architecture_multiplies_exhaustively_at_width_3(architecture):
    netlist = generate_multiplier(architecture, 3)
    ok, failing = exhaustive_check(netlist, lambda a, b: a * b, ["a", "b"], [3, 3])
    assert ok, f"{architecture} wrong on {failing}"


@pytest.mark.parametrize("architecture", ["SP-AR-RC", "SP-WT-KS", "BP-DT-BK",
                                          "BP-CT-HC", "SP-RT-CL"])
def test_selected_architectures_at_width_5_random(architecture):
    netlist = generate_multiplier(architecture, 5)
    ok, failing = exhaustive_check(netlist, lambda a, b: a * b, ["a", "b"], [5, 5],
                                   max_vectors=300, seed=11)
    assert ok, f"{architecture} wrong on {failing}"


def test_odd_width_booth_multiplier():
    netlist = generate_multiplier("BP-WT-RC", 5)
    ok, failing = exhaustive_check(netlist, lambda a, b: a * b, ["a", "b"], [5, 5],
                                   max_vectors=400, seed=3)
    assert ok, f"odd-width Booth wrong on {failing}"


def test_interface_names_and_width():
    netlist = generate_multiplier("SP-WT-CL", 4)
    assert netlist.input_word("a") == [f"a{i}" for i in range(4)]
    assert netlist.input_word("b") == [f"b{i}" for i in range(4)]
    assert netlist.output_word("s") == [f"s{i}" for i in range(8)]
    assert netlist.name == "SP-WT-CL_4x4"


def test_multiplier_spec_helpers():
    spec = multiplier_spec("bp-wt-cl", 8)
    assert isinstance(spec, MultiplierSpec)
    assert spec.name == "BP-WT-CL_8x8"
    assert spec.output_width == 16
    assert spec.reference(255, 255) == 255 * 255


def test_invalid_architecture_and_width_rejected():
    with pytest.raises(CircuitError):
        generate_multiplier("SP-AR", 4)
    with pytest.raises(CircuitError):
        generate_multiplier("XX-AR-RC", 4)
    with pytest.raises(CircuitError):
        generate_multiplier("SP-AR-RC", 1)


def test_wide_multipliers_remain_correct_on_random_vectors():
    for architecture in ("SP-DT-HC", "BP-RT-KS"):
        netlist = generate_multiplier(architecture, 16)
        ok, failing = exhaustive_check(netlist, lambda a, b: a * b, ["a", "b"],
                                       [16, 16], max_vectors=60, seed=5)
        assert ok, f"{architecture} wrong on {failing}"
