"""Tests for half adders, full adders, compressors and multiplexers."""

import itertools

from repro.circuit.netlist import Netlist
from repro.circuit.simulate import simulate
from repro.generators.components import (
    compressor_42,
    full_adder,
    half_adder,
    majority3,
    mux2,
)


def test_half_adder_truth_table():
    netlist = Netlist()
    a, b = netlist.add_input("a"), netlist.add_input("b")
    s, c = half_adder(netlist, a, b)
    for va, vb in itertools.product((0, 1), repeat=2):
        values = simulate(netlist, {"a": va, "b": vb})
        assert values[s] + 2 * values[c] == va + vb


def test_full_adder_truth_table():
    netlist = Netlist()
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    cin = netlist.add_input("cin")
    s, c = full_adder(netlist, a, b, cin)
    for va, vb, vc in itertools.product((0, 1), repeat=3):
        values = simulate(netlist, {"a": va, "b": vb, "cin": vc})
        assert values[s] + 2 * values[c] == va + vb + vc


def test_compressor_42_arithmetic_identity():
    for with_cin in (False, True):
        netlist = Netlist()
        inputs = [netlist.add_input(f"x{i}") for i in range(4)]
        cin = netlist.add_input("cin") if with_cin else None
        s, carry, cout = compressor_42(netlist, *inputs, cin)
        repeat = 5 if with_cin else 4
        for bits in itertools.product((0, 1), repeat=repeat):
            assignment = {f"x{i}": bits[i] for i in range(4)}
            if with_cin:
                assignment["cin"] = bits[4]
            values = simulate(netlist, assignment)
            total = sum(bits)
            assert values[s] + 2 * (values[carry] + values[cout]) == total


def test_compressor_cout_independent_of_cin():
    """The defining property that makes 4:2 compressor columns ripple-free."""
    netlist = Netlist()
    inputs = [netlist.add_input(f"x{i}") for i in range(4)]
    cin = netlist.add_input("cin")
    _, _, cout = compressor_42(netlist, *inputs, cin)
    for bits in itertools.product((0, 1), repeat=4):
        assignment = {f"x{i}": bits[i] for i in range(4)}
        low = simulate(netlist, dict(assignment, cin=0))[cout]
        high = simulate(netlist, dict(assignment, cin=1))[cout]
        assert low == high


def test_majority3():
    netlist = Netlist()
    a, b, c = (netlist.add_input(n) for n in ("a", "b", "c"))
    out = majority3(netlist, a, b, c)
    for va, vb, vc in itertools.product((0, 1), repeat=3):
        values = simulate(netlist, {"a": va, "b": vb, "c": vc})
        assert values[out] == int(va + vb + vc >= 2)


def test_mux2():
    netlist = Netlist()
    sel, x, y = (netlist.add_input(n) for n in ("sel", "x", "y"))
    out = mux2(netlist, sel, x, y)
    for vs, vx, vy in itertools.product((0, 1), repeat=3):
        values = simulate(netlist, {"sel": vs, "x": vx, "y": vy})
        assert values[out] == (vx if vs else vy)
