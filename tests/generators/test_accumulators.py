"""Tests for the partial-product accumulators (value preservation)."""

import itertools
import random

import pytest

from repro.circuit.netlist import Netlist
from repro.circuit.simulate import simulate
from repro.errors import CircuitError
from repro.generators.accumulators import (
    ACCUMULATOR_BUILDERS,
    finalize_addends,
    reduce_array,
    reduce_compressor_tree,
    reduce_dadda,
    reduce_wallace,
)
from repro.generators.partial_products import simple_partial_products


def _random_columns(netlist, width, max_height, rng):
    """Columns of primary inputs with random heights (direct accumulator test)."""
    columns = []
    for k in range(width):
        height = rng.randint(0, max_height)
        column = [netlist.add_input(f"c{k}_{i}") for i in range(height)]
        columns.append(column)
    return columns


def _value(values, columns):
    return sum(values[s] << k for k, col in enumerate(columns) for s in col)


@pytest.mark.parametrize("name", sorted(ACCUMULATOR_BUILDERS))
def test_accumulator_preserves_value_modulo_width(name):
    rng = random.Random(hash(name) & 0xffff)
    reduce_fn = ACCUMULATOR_BUILDERS[name]
    netlist = Netlist(f"acc_{name}")
    width = 6
    columns = _random_columns(netlist, width, max_height=5, rng=rng)
    reduced = reduce_fn(netlist, columns)
    assert max(len(col) for col in reduced) <= 2
    inputs = list(netlist.inputs)
    modulus = 1 << width
    for _ in range(64):
        assignment = {name_: rng.randint(0, 1) for name_ in inputs}
        values = simulate(netlist, assignment)
        assert _value(values, reduced) % modulus == _value(values, columns) % modulus


@pytest.mark.parametrize("reduce_fn", [reduce_array, reduce_wallace,
                                       reduce_dadda, reduce_compressor_tree])
def test_accumulator_on_simple_partial_products(reduce_fn):
    width = 3
    netlist = Netlist("acc_pp")
    a = netlist.add_input_word("a", width)
    b = netlist.add_input_word("b", width)
    columns = simple_partial_products(netlist, a, b)
    reduced = reduce_fn(netlist, columns)
    addend0, addend1 = finalize_addends(netlist, reduced)
    assert len(addend0) == len(addend1) == 2 * width
    for a_val, b_val in itertools.product(range(1 << width), repeat=2):
        assignment = {f"a{i}": (a_val >> i) & 1 for i in range(width)}
        assignment.update({f"b{i}": (b_val >> i) & 1 for i in range(width)})
        values = simulate(netlist, assignment)
        total = sum(values[s] << k for k, s in enumerate(addend0))
        total += sum(values[s] << k for k, s in enumerate(addend1))
        assert total % (1 << (2 * width)) == a_val * b_val


def test_wallace_is_shallower_than_array():
    from repro.circuit.analysis import circuit_depth

    def depth_of(reduce_fn):
        netlist = Netlist()
        a = netlist.add_input_word("a", 8)
        b = netlist.add_input_word("b", 8)
        columns = simple_partial_products(netlist, a, b)
        reduce_fn(netlist, columns)
        return circuit_depth(netlist)

    assert depth_of(reduce_wallace) < depth_of(reduce_array)


def test_finalize_addends_requires_reduced_columns():
    netlist = Netlist()
    signals = [netlist.add_input(f"x{i}") for i in range(3)]
    with pytest.raises(CircuitError):
        finalize_addends(netlist, [signals])


def test_dadda_uses_fewer_adders_than_wallace():
    def gate_count(reduce_fn):
        netlist = Netlist()
        a = netlist.add_input_word("a", 8)
        b = netlist.add_input_word("b", 8)
        columns = simple_partial_products(netlist, a, b)
        reduce_fn(netlist, columns)
        return netlist.num_gates

    assert gate_count(reduce_dadda) <= gate_count(reduce_wallace)
