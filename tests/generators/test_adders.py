"""Tests for the adder generators (all architectures, many widths)."""

import pytest

from repro.circuit.analysis import circuit_depth
from repro.circuit.simulate import exhaustive_check
from repro.errors import CircuitError
from repro.generators.adders import (
    ADDER_KINDS,
    generate_adder,
)

WIDTHS = [1, 2, 3, 4, 5, 7, 8, 13, 16]


@pytest.mark.parametrize("kind", sorted(ADDER_KINDS))
@pytest.mark.parametrize("width", WIDTHS)
def test_adder_computes_sum(kind, width):
    netlist = generate_adder(kind, width)
    ok, failing = exhaustive_check(netlist, lambda a, b: a + b, ["a", "b"],
                                   [width, width], max_vectors=256, seed=width)
    assert ok, f"{kind}-{width} failed on {failing}"
    # The sum word includes the carry-out bit.
    assert len(netlist.output_word("s")) == width + 1


@pytest.mark.parametrize("kind", sorted(ADDER_KINDS))
def test_adder_with_carry_in(kind):
    from repro.circuit.simulate import simulate_words

    width = 5
    netlist = generate_adder(kind, width, with_carry_in=True)
    for cin in (0, 1):
        for a in range(0, 1 << width, 3):
            for b in range(0, 1 << width, 5):
                got = simulate_words(netlist, {"a": a, "b": b}, {"cin": cin})
                assert got == a + b + cin


def test_prefix_adders_have_logarithmic_depth():
    ripple = generate_adder("RC", 32)
    kogge_stone = generate_adder("KS", 32)
    brent_kung = generate_adder("BK", 32)
    assert circuit_depth(kogge_stone) < circuit_depth(ripple) / 2
    assert circuit_depth(brent_kung) < circuit_depth(ripple)


def test_kogge_stone_has_more_gates_than_brent_kung():
    # Kogge-Stone trades wiring/area for depth; its prefix network is denser.
    assert generate_adder("KS", 32).num_gates > generate_adder("BK", 32).num_gates


def test_unknown_kind_and_bad_width_rejected():
    with pytest.raises(CircuitError):
        generate_adder("XX", 8)
    with pytest.raises(CircuitError):
        generate_adder("RC", 0)


def test_adder_kind_catalog_is_consistent():
    assert set(ADDER_KINDS) == {"RC", "CL", "KS", "BK", "HC"}
    for kind, description in ADDER_KINDS.items():
        assert description
