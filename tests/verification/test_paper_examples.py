"""The paper's running examples as executable tests.

* Example 1 / Fig. 1 — the full-adder Gröbner basis and its reduction.
* Example 2 — the 3-bit ripple-carry adder with fanout rewriting (MT-FO).
* Example 3 — the 3-bit parallel-prefix adder whose vanishing monomials
  defeat plain reduction but are removed by the XOR-AND rule (MT-LR).
"""


from repro.algebra.groebner import is_groebner_basis
from repro.algebra.polynomial import Polynomial
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.generators.adders import generate_adder
from repro.modeling.model import AlgebraicModel
from repro.modeling.spec import adder_specification
from repro.verification.engine import verify, verify_adder
from repro.verification.reduction import groebner_basis_reduction, ReductionOptions
from repro.verification.rewriting import fanout_rewriting, logic_reduction_rewriting
from repro.verification.vanishing import VanishingRules


# ---------------------------------------------------------------------------
# Example 1: the full adder of Fig. 1
# ---------------------------------------------------------------------------

def test_example1_full_adder_model_is_groebner_basis(paper_full_adder):
    model = AlgebraicModel.from_netlist(paper_full_adder)
    assert is_groebner_basis(model.polynomials(), structural_only=True)


def test_example1_specification_reduces_to_zero(paper_full_adder):
    """pspec = -2c - s + cin + b + a reduces to 0 w.r.t. the gate polynomials."""
    model = AlgebraicModel.from_netlist(paper_full_adder)
    ring = model.ring
    spec = Polynomial.from_terms([
        (-2, [ring.index("c")]), (-1, [ring.index("s")]),
        (1, [ring.index("cin")]), (1, [ring.index("b")]), (1, [ring.index("a")]),
    ])
    remainder = groebner_basis_reduction(spec, model, model.tails,
                                         ReductionOptions())
    assert remainder.is_zero


def test_example1_wrong_specification_leaves_nonzero_remainder(paper_full_adder):
    model = AlgebraicModel.from_netlist(paper_full_adder)
    ring = model.ring
    wrong = Polynomial.from_terms([
        (-2, [ring.index("c")]), (-1, [ring.index("s")]),
        (1, [ring.index("cin")]), (1, [ring.index("b")]), (2, [ring.index("a")]),
    ])
    remainder = groebner_basis_reduction(wrong, model, model.tails,
                                         ReductionOptions())
    assert not remainder.is_zero
    # The fully reduced remainder only mentions primary inputs.
    input_vars = set(model.input_vars)
    assert remainder.support() <= input_vars


# ---------------------------------------------------------------------------
# Example 2: 3-bit ripple-carry adder with fanout rewriting (MT-FO)
# ---------------------------------------------------------------------------

def _paper_ripple_carry_3bit() -> Netlist:
    """The carry-chain structure of Example 2 (carries are the fanout signals)."""
    from repro.generators.components import majority3

    netlist = Netlist("rca3")
    a = netlist.add_input_word("a", 3)
    b = netlist.add_input_word("b", 3)
    # bit 0: half adder
    netlist.xor(a[0], b[0], "s0")
    netlist.and_(a[0], b[0], "c0")
    # bits 1, 2: sum as a three-input XOR, carry as a majority network; the
    # carries are then the only multi-fanout signals, as in Example 2, and
    # the last carry is the top sum bit s3 = c2.
    previous = "c0"
    for i in (1, 2):
        netlist.add_gate(GateType.XOR, (a[i], b[i], previous), f"s{i}")
        carry_name = f"c{i}" if i < 2 else "s3"
        carry = majority3(netlist, a[i], b[i], previous)
        netlist.buf(carry, carry_name)
        previous = carry_name
    for i in range(4):
        netlist.add_output(f"s{i}")
    netlist.validate()
    return netlist


def test_example2_fanout_rewriting_keeps_only_carries_inputs_outputs():
    netlist = _paper_ripple_carry_3bit()
    model = AlgebraicModel.from_netlist(netlist)
    rewritten = fanout_rewriting(model)
    ring = model.ring
    kept_names = {ring.name(var) for var in rewritten.tails}
    # After fanout rewriting the model depends only on carries, inputs and
    # outputs: all internal propagate/generate signals are gone.
    assert {"s0", "s1", "s2", "s3", "c0", "c1"} <= kept_names
    for tail in rewritten.tails.values():
        for var in tail.support():
            name = ring.name(var)
            assert (name.startswith(("a", "b", "c", "s"))), name


def test_example2_rewritten_model_reduces_to_zero():
    netlist = _paper_ripple_carry_3bit()
    model = AlgebraicModel.from_netlist(netlist)
    spec = adder_specification(model)
    rewritten = fanout_rewriting(model)
    remainder = groebner_basis_reduction(spec.polynomial, model, rewritten.tails,
                                         ReductionOptions())
    assert remainder.is_zero


# ---------------------------------------------------------------------------
# Example 3: 3-bit parallel prefix adder and its vanishing monomials
# ---------------------------------------------------------------------------

def _paper_parallel_prefix_3bit() -> Netlist:
    """The 3-bit PPA of Example 3 with explicit propagate/generate signals."""
    netlist = Netlist("ppa3")
    a = netlist.add_input_word("a", 3)
    b = netlist.add_input_word("b", 3)
    x = [netlist.xor(a[i], b[i], f"X{i}") for i in range(3)]
    d = [netlist.and_(a[i], b[i], f"D{i}") for i in range(3)]
    # carries: c0 = D0, c1 = D1 | X1 D0, c2 = D2 | X2 D1 | X2 X1 D0
    netlist.buf(d[0], "c0")
    t10 = netlist.and_(x[1], d[0])
    netlist.or_(d[1], t10, "c1")
    t21 = netlist.and_(x[2], d[1])
    t210a = netlist.and_(x[2], x[1])
    t210 = netlist.and_(t210a, d[0])
    u = netlist.or_(d[2], t21)
    netlist.or_(u, t210, "c2")
    # sums
    netlist.buf(x[0], "s0")
    netlist.xor(x[1], "c0", "s1")
    netlist.xor(x[2], "c1", "s2")
    netlist.buf("c2", "s3")
    for i in range(4):
        netlist.add_output(f"s{i}")
    netlist.validate()
    return netlist


def test_example3_vanishing_monomials_identified():
    """X1*D1*D0 (from g4) and X2*D2*X1*D0 (from g2) are vanishing."""
    netlist = _paper_parallel_prefix_3bit()
    model = AlgebraicModel.from_netlist(netlist)
    rules = VanishingRules(model)
    ring = model.ring
    from repro.algebra.monomial import Monomial
    assert rules.is_vanishing(Monomial(
        [ring.index("X1"), ring.index("D1"), ring.index("D0")]))
    assert rules.is_vanishing(Monomial(
        [ring.index("X2"), ring.index("D2"), ring.index("X1"), ring.index("D0")]))
    assert not rules.is_vanishing(Monomial(
        [ring.index("X2"), ring.index("D1"), ring.index("D0")]))


def test_example3_logic_reduction_removes_all_vanishing_monomials():
    netlist = _paper_parallel_prefix_3bit()
    model = AlgebraicModel.from_netlist(netlist)
    rewritten = logic_reduction_rewriting(model, VanishingRules(model))
    assert rewritten.cancelled_vanishing_monomials > 0
    # After rewriting, no remaining monomial is vanishing.
    rules = VanishingRules(model)
    for tail in rewritten.tails.values():
        for mono in tail.monomials():
            assert not rules.is_vanishing(mono)


def test_example3_ppa_verifies_with_mt_lr():
    netlist = _paper_parallel_prefix_3bit()
    result = verify(netlist, specification="adder", method="mt-lr")
    assert result.verified
    assert result.cancelled_vanishing_monomials > 0


def test_kogge_stone_adders_verify_beyond_six_bits():
    """Reference [8] could not verify Kogge-Stone adders above 6 bits; MT-LR can."""
    for width in (8, 12):
        result = verify_adder(generate_adder("KS", width), method="mt-lr")
        assert result.verified
