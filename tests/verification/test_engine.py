"""End-to-end tests of the verification engines (MT-LR, MT-FO, MT-Naive)."""

import pytest

from repro.api.request import Budgets
from repro.circuit.mutate import apply_mutation, list_mutations
from repro.circuit.simulate import exhaustive_check, simulate_words
from repro.errors import BlowUpError, VerificationError
from repro.generators.adders import generate_adder
from repro.generators.catalog import architecture_names
from repro.generators.multipliers import generate_multiplier
from repro.verification.engine import METHODS, verify, verify_adder, verify_multiplier


@pytest.mark.parametrize("architecture", architecture_names())
def test_mt_lr_verifies_every_architecture_at_width_4(architecture):
    netlist = generate_multiplier(architecture, 4)
    result = verify_multiplier(netlist, method="mt-lr")
    assert result.verified, result.remainder_text
    assert result.cancelled_vanishing_monomials >= 0
    assert result.model_statistics.num_polynomials > 0
    assert result.total_time_s >= result.reduction_time_s


@pytest.mark.parametrize("kind", ["RC", "CL", "KS", "BK", "HC"])
def test_mt_lr_verifies_adders(kind):
    result = verify_adder(generate_adder(kind, 10), method="mt-lr")
    assert result.verified


@pytest.mark.parametrize("method", METHODS)
def test_all_methods_agree_on_small_ripple_multiplier(method):
    netlist = generate_multiplier("SP-AR-RC", 3)
    result = verify_multiplier(netlist, method=method)
    assert result.verified
    assert result.method == method


def test_unknown_method_and_spec_are_rejected():
    netlist = generate_multiplier("SP-AR-RC", 3)
    with pytest.raises(VerificationError):
        verify_multiplier(netlist, method="magic")
    with pytest.raises(VerificationError):
        verify(netlist, specification="divider")


def test_buggy_multiplier_is_rejected_with_counterexample():
    netlist = generate_multiplier("SP-WT-CL", 3)
    mutations = [m for m in list_mutations(netlist) if m.signal.startswith("pp")]
    buggy = apply_mutation(netlist, mutations[0])
    result = verify_multiplier(buggy, method="mt-lr")
    assert not result.verified
    assert result.remainder_text
    assert result.counterexample is not None
    # The counterexample must actually expose the mismatch in simulation.
    a_val = sum(result.counterexample[f"a{i}"] << i for i in range(3))
    b_val = sum(result.counterexample[f"b{i}"] << i for i in range(3))
    product = simulate_words(buggy, {"a": a_val, "b": b_val})
    assert product != (a_val * b_val) % 64


def test_every_observable_single_gate_fault_is_detected():
    """Completeness on a small multiplier: MT-LR flags exactly the real bugs."""
    netlist = generate_multiplier("SP-AR-RC", 2)
    for mutation in list_mutations(netlist):
        buggy = apply_mutation(netlist, mutation)
        functionally_correct, _ = exhaustive_check(
            buggy, lambda a, b: a * b, ["a", "b"], [2, 2])
        result = verify_multiplier(buggy, method="mt-lr",
                                   find_counterexample=False)
        assert result.verified == functionally_correct, mutation.describe()


def test_buggy_adder_detected():
    netlist = generate_adder("KS", 6)
    mutation = [m for m in list_mutations(netlist) if "_p" in m.signal][0]
    buggy = apply_mutation(netlist, mutation)
    ok, _ = exhaustive_check(buggy, lambda a, b: a + b, ["a", "b"], [6, 6])
    result = verify_adder(buggy, method="mt-lr")
    assert result.verified == ok


def test_blowup_budget_is_reported_for_naive_method_on_parallel_multiplier():
    netlist = generate_multiplier("BP-RT-KS", 6)
    with pytest.raises(BlowUpError):
        verify_multiplier(netlist, method="mt-fo",
                          budgets=Budgets(monomial_budget=2000,
                                          time_budget_s=5.0))


def test_result_summary_format():
    result = verify_multiplier(generate_multiplier("SP-AR-RC", 3))
    text = result.summary()
    assert "VERIFIED" in text and "mt-lr" in text


def test_modulus_toggle_does_not_change_the_verdict_at_small_width():
    """The mod-2^(2n) specification is the paper's; dropping it must not flip results.

    (For the paper's generator the Booth encodings only match the unsigned
    specification modulo 2^(2n); our generator's full-width two's-complement
    rows make the match exact, so both settings verify — see EXPERIMENTS.md.)
    """
    booth = verify_multiplier(generate_multiplier("BP-WT-RC", 3),
                              use_modulus=False, find_counterexample=False)
    assert booth.verified
    with_modulus = verify_multiplier(generate_multiplier("BP-WT-RC", 3))
    assert with_modulus.verified
    assert "mod" in with_modulus.specification


def test_xor_and_only_mode_still_verifies_simple_prefix_designs():
    result = verify_adder(generate_adder("KS", 6), method="mt-lr",
                          xor_and_only=True)
    assert result.verified
