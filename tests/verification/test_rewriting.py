"""Tests for the rewriting schemes (Algorithm 2 / Algorithm 3)."""

import itertools

import pytest

from repro.errors import BlowUpError
from repro.generators.adders import generate_adder
from repro.generators.multipliers import generate_multiplier
from repro.modeling.model import AlgebraicModel
from repro.verification.rewriting import (
    common_rewriting_variables,
    fanout_rewriting,
    fanout_rewriting_variables,
    gb_rewrite,
    logic_reduction_rewriting,
    no_rewriting,
    xor_rewriting_variables,
)
from repro.verification.vanishing import VanishingRules


def _model(builder, *args):
    return AlgebraicModel.from_netlist(builder(*args))


def test_selection_functions_always_include_inputs_and_outputs(paper_full_adder):
    model = AlgebraicModel.from_netlist(paper_full_adder)
    io_vars = set(model.input_vars) | set(model.output_vars)
    assert io_vars <= fanout_rewriting_variables(model)
    assert io_vars <= xor_rewriting_variables(model)
    assert io_vars <= common_rewriting_variables(model.tails, model)


def test_gb_rewrite_produces_tails_over_kept_variables(paper_full_adder):
    model = AlgebraicModel.from_netlist(paper_full_adder)
    keep = fanout_rewriting_variables(model)
    tails, stats = gb_rewrite(dict(model.tails), set(keep), model,
                              scheme="fanout-rewriting")
    for tail in tails.values():
        assert tail.support() <= keep
    assert stats.substituted_variables >= 1
    assert stats.elapsed_s >= 0.0


def _assert_rewriting_preserves_function(netlist, rewritten_model):
    """The rewritten polynomials must still vanish on circuit valuations."""
    model = rewritten_model.model
    ring = model.ring
    input_vars = [ring.index(name) for name in netlist.inputs]
    for bits in itertools.product((0, 1), repeat=len(input_vars)):
        assignment = dict(zip(input_vars, bits))
        values = model.evaluate(assignment)
        for lead, tail in rewritten_model.tails.items():
            assert values[lead] == tail.evaluate(values), (
                f"rewriting changed the function of {ring.name(lead)}")


@pytest.mark.parametrize("builder", [
    lambda: generate_adder("KS", 4),
    lambda: generate_adder("CL", 4),
    lambda: generate_multiplier("SP-WT-RC", 3),
    lambda: generate_multiplier("BP-AR-RC", 3),
])
def test_logic_reduction_rewriting_preserves_functions(builder):
    netlist = builder()
    model = AlgebraicModel.from_netlist(netlist)
    rewritten = logic_reduction_rewriting(model, VanishingRules(model))
    _assert_rewriting_preserves_function(netlist, rewritten)


@pytest.mark.parametrize("builder", [
    lambda: generate_adder("RC", 4),
    lambda: generate_multiplier("SP-AR-RC", 3),
])
def test_fanout_rewriting_preserves_functions(builder):
    netlist = builder()
    model = AlgebraicModel.from_netlist(netlist)
    rewritten = fanout_rewriting(model)
    _assert_rewriting_preserves_function(netlist, rewritten)


def test_xor_rewriting_removes_vanishing_monomials_on_prefix_adder():
    model = _model(generate_adder, "KS", 8)
    rewritten = logic_reduction_rewriting(model, VanishingRules(model),
                                          apply_common=False)
    assert rewritten.cancelled_vanishing_monomials > 0
    rules = VanishingRules(model)
    for tail in rewritten.tails.values():
        assert all(not rules.is_vanishing(m) for m in tail.monomials())


def test_common_rewriting_reduces_model_size():
    model = _model(generate_multiplier, "SP-WT-CL", 4)
    xor_only = logic_reduction_rewriting(model, VanishingRules(model),
                                         apply_common=False)
    full = logic_reduction_rewriting(model, VanishingRules(model))
    assert len(full.tails) <= len(xor_only.tails)


def test_no_rewriting_keeps_every_polynomial():
    model = _model(generate_adder, "RC", 4)
    rewritten = no_rewriting(model)
    assert rewritten.tails == model.tails
    assert rewritten.cancelled_vanishing_monomials == 0


def test_growth_guard_keeps_variables_instead_of_exploding():
    """Booth sign-extension chains must not explode the top output polynomial."""
    model = _model(generate_multiplier, "BP-AR-RC", 8)
    rewritten = logic_reduction_rewriting(model, VanishingRules(model))
    largest = max(tail.num_terms for tail in rewritten.tails.values())
    assert largest <= 4 * 64, f"largest rewritten polynomial has {largest} terms"


def test_rewrite_monomial_budget_raises_blowup():
    model = _model(generate_multiplier, "SP-WT-CL", 4)
    keep = set(model.input_vars) | set(model.output_vars)
    with pytest.raises(BlowUpError):
        gb_rewrite(dict(model.tails), keep, model, scheme="stress",
                   monomial_budget=3)


def test_statistics_record_scheme_names():
    model = _model(generate_adder, "KS", 4)
    rewritten = logic_reduction_rewriting(model, VanishingRules(model))
    schemes = [stats.scheme for stats in rewritten.statistics]
    assert schemes == ["xor-rewriting", "common-rewriting"]
