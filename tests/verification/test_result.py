"""Tests for the result containers and model statistics."""

from repro.algebra.polynomial import Polynomial
from repro.verification.result import ModelStatistics, VerificationResult


def test_model_statistics_from_tails():
    tails = {
        5: Polynomial.from_terms([(1, [1, 2, 3]), (2, [0])]),      # 2 terms
        6: Polynomial.from_terms([(1, [0]), (1, [1]), (1, [2]), (4, [])]),
    }
    stats = ModelStatistics.from_tails(tails)
    assert stats.num_polynomials == 2
    # each polynomial counts its leading term too
    assert stats.num_monomials == (2 + 1) + (4 + 1)
    assert stats.max_polynomial_terms == 5
    assert stats.max_monomial_variables == 3


def test_model_statistics_of_empty_model():
    stats = ModelStatistics.from_tails({})
    assert stats.num_polynomials == 0
    assert stats.num_monomials == 0
    assert stats.max_polynomial_terms == 0
    assert stats.max_monomial_variables == 0


def test_verification_result_summary_contains_key_figures():
    result = VerificationResult(verified=True, method="mt-lr",
                                circuit="demo_8x8", specification="8x8",
                                cancelled_vanishing_monomials=42,
                                total_time_s=1.25, rewrite_time_s=0.5,
                                reduction_time_s=0.25)
    text = result.summary()
    assert "demo_8x8" in text
    assert "VERIFIED" in text
    assert "#CVM=42" in text

    failed = VerificationResult(verified=False, method="mt-fo",
                                circuit="demo", specification="8x8")
    assert "MISMATCH" in failed.summary()
