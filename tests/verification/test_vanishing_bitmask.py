"""Property tests: the bitmask implied-literal core vs a set reference.

``VanishingRules`` packs the ``must1``/``must0`` implied-literal tables into
``(pos, neg)`` integer bitmasks and runs the consistency test with a handful
of machine-level AND/OR operations, plus a cache with a minimal-witness
monotonicity shortcut and a relevance prefilter.  This module pins all of
that against an independent frozenset re-implementation of the original
rule (the pre-bitmask semantics), on random DAG netlists and on the
generated circuits.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.monomial import Monomial, bits_of, mask_of
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.generators.adders import generate_adder
from repro.generators.multipliers import generate_multiplier
from repro.modeling.model import AlgebraicModel
from repro.verification.vanishing import WITNESS_LIMIT, VanishingRules

Literal = tuple[int, bool]


class FrozensetReference:
    """The original frozenset implementation of the implied-literal rule.

    Kept deliberately independent of the bitmask code paths: literal sets
    are Python frozensets, the consistency test walks plain sets, and no
    caching, witnesses, or relevance prefilters are involved.
    """

    def __init__(self, model: AlgebraicModel,
                 max_implied_literals: int = 256) -> None:
        self.model = model
        self.max_implied_literals = max_implied_literals
        self._must1: dict[int, frozenset[Literal]] = {}
        self._must0: dict[int, frozenset[Literal]] = {}
        self._xor_support: dict[int, tuple[int, ...]] = {}
        self._xnor_support: dict[int, tuple[int, ...]] = {}
        for var, record in model.records.items():
            if record.gate_type is GateType.XOR and len(record.inputs) == 2:
                self._xor_support[var] = record.inputs
            elif (record.gate_type is GateType.XNOR
                  and len(record.inputs) == 2):
                self._xnor_support[var] = record.inputs

    def must(self, var: int, value: bool) -> frozenset[Literal]:
        table = self._must1 if value else self._must0
        cached = table.get(var)
        if cached is not None:
            return cached
        record = self.model.records.get(var)
        literals: set[Literal] = {(var, value)}
        gate = record.gate_type if record is not None else None
        if gate is not None:
            if value:
                if gate in (GateType.AND, GateType.BUF):
                    for child in record.inputs:
                        literals |= self.must(child, True)
                elif gate is GateType.NOT:
                    literals |= self.must(record.inputs[0], False)
                elif gate is GateType.NOR:
                    for child in record.inputs:
                        literals |= self.must(child, False)
                elif gate is GateType.CONST0:
                    literals.add((var, False))
            else:
                if gate in (GateType.OR, GateType.BUF):
                    for child in record.inputs:
                        literals |= self.must(child, False)
                elif gate is GateType.NOT:
                    literals |= self.must(record.inputs[0], True)
                elif gate is GateType.NAND:
                    for child in record.inputs:
                        literals |= self.must(child, True)
                elif gate is GateType.CONST1:
                    literals.add((var, True))
        if len(literals) > self.max_implied_literals:
            literals = {(var, value)}
        result = frozenset(literals)
        table[var] = result
        return result

    def is_vanishing_mask(self, mask: int) -> bool:
        if mask.bit_count() < 2:
            return False
        positive: set[int] = set()
        negative: set[int] = set()
        for var in bits_of(mask):
            for lit_var, polarity in self.must(var, True):
                if polarity:
                    if lit_var in negative:
                        return True
                    positive.add(lit_var)
                else:
                    if lit_var in positive:
                        return True
                    negative.add(lit_var)
        for var in positive:
            support = self._xor_support.get(var)
            if support is not None:
                a, b = support
                if ((a in positive and b in positive)
                        or (a in negative and b in negative)):
                    return True
            support = self._xnor_support.get(var)
            if support is not None:
                a, b = support
                if ((a in positive and b in negative)
                        or (a in negative and b in positive)):
                    return True
        for var in negative:
            support = self._xor_support.get(var)
            if support is not None:
                a, b = support
                if ((a in positive and b in negative)
                        or (a in negative and b in positive)):
                    return True
            support = self._xnor_support.get(var)
            if support is not None:
                a, b = support
                if ((a in positive and b in positive)
                        or (a in negative and b in negative)):
                    return True
        return False


def random_netlist(rng: random.Random, num_inputs: int = 5,
                   num_gates: int = 40) -> Netlist:
    """A random combinational DAG over all gate types."""
    netlist = Netlist("random")
    signals = [netlist.add_input(f"i{index}") for index in range(num_inputs)]
    unary = ("not_", "buf")
    binary = ("and_", "or_", "xor", "nand", "nor", "xnor")
    for index in range(num_gates):
        if rng.random() < 0.15:
            builder = getattr(netlist, rng.choice(unary))
            signal = builder(rng.choice(signals), f"g{index}")
        else:
            builder = getattr(netlist, rng.choice(binary))
            a, b = rng.sample(signals, 2) if len(signals) > 1 else (
                signals[0], signals[0])
            signal = builder(a, b, f"g{index}")
        signals.append(signal)
    netlist.add_output(signals[-1])
    return netlist


@pytest.mark.parametrize("seed", range(8))
def test_bitmask_tables_match_frozenset_reference_on_random_netlists(seed):
    rng = random.Random(seed)
    netlist = random_netlist(rng)
    model = AlgebraicModel.from_netlist(netlist)
    rules = VanishingRules(model)
    reference = FrozensetReference(model)

    variables = list(model.records)
    # The implied-literal tables agree literal for literal.
    for var in variables:
        for value in (True, False):
            assert rules.implied_literals(var, value) == reference.must(
                var, value), f"must table differs for var {var}, {value}"

    # Verdicts agree on random monomials (including repeats, which exercise
    # the cache, and supermasks of known-vanishing masks, which exercise the
    # monotonicity witnesses).
    vanishing_masks = []
    for _ in range(300):
        size = rng.randint(2, 6)
        mask = mask_of(rng.sample(variables, size))
        expected = reference.is_vanishing_mask(mask)
        assert rules.is_vanishing_mask(mask) == expected, (
            f"verdict differs for mask {bits_of(mask)}")
        if expected:
            vanishing_masks.append(mask)
    for mask in vanishing_masks:
        extra = 1 << rng.choice(variables)
        supermask = mask | extra
        assert rules.is_vanishing_mask(supermask), (
            "monotonicity violated: supermask of a vanishing mask")
        assert reference.is_vanishing_mask(supermask)


@pytest.mark.parametrize("builder", [
    lambda: generate_adder("KS", 5),
    lambda: generate_adder("CL", 4),
    lambda: generate_multiplier("SP-DT-HC", 3),
    lambda: generate_multiplier("BP-WT-RC", 3),
])
def test_bitmask_verdicts_match_reference_on_generated_circuits(builder):
    model = AlgebraicModel.from_netlist(builder())
    rules = VanishingRules(model)
    reference = FrozensetReference(model)
    rng = random.Random(99)
    variables = list(model.records)
    agree = disagree = 0
    for _ in range(400):
        mask = mask_of(rng.sample(variables, rng.randint(2, 5)))
        if rules.is_vanishing_mask(mask) == reference.is_vanishing_mask(mask):
            agree += 1
        else:
            disagree += 1
    assert disagree == 0 and agree == 400


def test_relevance_prefilter_is_a_necessary_condition():
    """Masks disjoint from ``relevant_mask`` never vanish per the reference."""
    rng = random.Random(7)
    for seed in range(4):
        netlist = random_netlist(random.Random(seed), num_gates=30)
        model = AlgebraicModel.from_netlist(netlist)
        rules = VanishingRules(model)
        reference = FrozensetReference(model)
        variables = list(model.records)
        irrelevant = [var for var in variables
                      if not (rules.relevant_mask >> var) & 1]
        for _ in range(120):
            size = rng.randint(2, min(5, len(irrelevant) or 2))
            if len(irrelevant) < size:
                break
            mask = mask_of(rng.sample(irrelevant, size))
            assert not reference.is_vanishing_mask(mask), (
                "relevance prefilter would skip a genuinely vanishing mask")
            assert not rules.is_vanishing_mask(mask)


def test_cache_counters_and_cap_reset():
    model = AlgebraicModel.from_netlist(generate_multiplier("SP-AR-RC", 3))
    rules = VanishingRules(model, cache_limit=8)
    rng = random.Random(3)
    variables = list(model.records)
    masks = [mask_of(rng.sample(variables, 3)) for _ in range(64)]
    relevant = [m for m in masks if m & rules.relevant_mask]
    assert len(relevant) > 16, "sample must exercise the cache"
    for mask in relevant:
        rules.is_vanishing_mask(mask)
    assert rules.cache_misses > 0
    assert rules.cache_resets >= 1, "tiny cache cap must force resets"
    assert len(rules.cache) <= 8
    before_hits = rules.cache_hits
    cached_mask = next(iter(rules.cache))
    rules.is_vanishing_mask(cached_mask)
    assert rules.cache_hits == before_hits + 1

    # Verdicts survive resets (the rule is deterministic).
    reference = FrozensetReference(model)
    for mask in relevant:
        assert rules.is_vanishing_mask(mask) == reference.is_vanishing_mask(mask)


def test_witness_set_stays_bounded():
    model = AlgebraicModel.from_netlist(generate_multiplier("SP-DT-HC", 4))
    rules = VanishingRules(model)
    rng = random.Random(11)
    variables = list(model.records)
    for _ in range(2000):
        rules.is_vanishing_mask(mask_of(rng.sample(variables, 4)))
    recorded = sum(len(bucket) for bucket in rules._witness_low.values())
    assert recorded <= WITNESS_LIMIT
    # Every witness really is a vanishing monomial.
    reference = FrozensetReference(model)
    for bucket in rules._witness_low.values():
        for witness in bucket:
            assert reference.is_vanishing_mask(witness)


def test_xor_and_only_mode_unchanged_by_bitmask_core():
    """Strict mode still detects exactly the paper's XOR-AND pattern."""
    netlist = Netlist("pg")
    a, b = netlist.add_input("a"), netlist.add_input("b")
    netlist.xor(a, b, "X")
    netlist.and_(a, b, "D")
    netlist.add_output("X")
    model = AlgebraicModel.from_netlist(netlist)
    strict = VanishingRules(model, xor_and_only=True)
    ring = model.ring
    assert strict.is_vanishing(Monomial([ring.index("X"), ring.index("D")]))
    assert not strict.is_vanishing(
        Monomial([ring.index("X"), ring.index("a"), ring.index("b")]))
