"""Tests for the Gröbner-basis reduction (Algorithm 1)."""

import pytest

from repro.algebra.polynomial import Polynomial
from repro.errors import BlowUpError
from repro.generators.adders import generate_adder
from repro.generators.multipliers import generate_multiplier
from repro.modeling.model import AlgebraicModel
from repro.modeling.spec import adder_specification, multiplier_specification
from repro.verification.reduction import (
    ReductionOptions,
    ReductionTrace,
    groebner_basis_reduction,
    substitution_order,
)
from repro.verification.rewriting import logic_reduction_rewriting
from repro.verification.vanishing import VanishingRules


def test_reduction_of_correct_adder_is_zero():
    netlist = generate_adder("RC", 4)
    model = AlgebraicModel.from_netlist(netlist)
    spec = adder_specification(model)
    remainder = groebner_basis_reduction(spec.polynomial, model, model.tails,
                                         ReductionOptions())
    assert remainder.is_zero


def test_reduction_trace_records_progress():
    netlist = generate_adder("RC", 4)
    model = AlgebraicModel.from_netlist(netlist)
    spec = adder_specification(model)
    trace = ReductionTrace(record_history=True)
    groebner_basis_reduction(spec.polynomial, model, model.tails,
                             ReductionOptions(), trace)
    assert trace.substitutions > 0
    assert trace.peak_monomials > 0
    assert len(trace.history) == trace.substitutions
    assert trace.elapsed_s >= 0.0


def test_remainder_only_references_primary_inputs_on_mismatch():
    netlist = generate_adder("RC", 3)
    model = AlgebraicModel.from_netlist(netlist)
    spec = adder_specification(model)
    # Perturb the specification so it no longer matches the circuit.
    wrong = spec.polynomial + Polynomial.variable(model.input_vars[0])
    remainder = groebner_basis_reduction(wrong, model, model.tails,
                                         ReductionOptions())
    assert not remainder.is_zero
    assert remainder.support() <= set(model.input_vars)


def test_monomial_budget_triggers_blowup_error():
    netlist = generate_multiplier("SP-WT-CL", 4)
    model = AlgebraicModel.from_netlist(netlist)
    spec = multiplier_specification(model)
    with pytest.raises(BlowUpError):
        groebner_basis_reduction(spec.polynomial, model, model.tails,
                                 ReductionOptions(monomial_budget=5))


def test_time_budget_triggers_blowup_error():
    netlist = generate_multiplier("SP-WT-CL", 6)
    model = AlgebraicModel.from_netlist(netlist)
    spec = multiplier_specification(model)
    with pytest.raises(BlowUpError):
        groebner_basis_reduction(spec.polynomial, model, model.tails,
                                 ReductionOptions(time_budget_s=0.0))


def test_substitution_order_is_consumer_first():
    netlist = generate_multiplier("SP-RT-KS", 4)
    model = AlgebraicModel.from_netlist(netlist)
    rewritten = logic_reduction_rewriting(model, VanishingRules(model))
    order = substitution_order(model, rewritten.tails)
    assert set(order) == set(rewritten.tails)
    position = {var: i for i, var in enumerate(order)}
    for lead, tail in rewritten.tails.items():
        for var in tail.support():
            if var in position:
                assert position[var] > position[lead], (
                    "a variable was scheduled before one of its consumers")


def test_level_order_scheme_also_supported():
    netlist = generate_adder("RC", 4)
    model = AlgebraicModel.from_netlist(netlist)
    spec = adder_specification(model)
    remainder = groebner_basis_reduction(
        spec.polynomial, model, model.tails,
        ReductionOptions(order_scheme="level"))
    assert remainder.is_zero
    order = substitution_order(model, model.tails, "level")
    assert order == sorted(model.tails, reverse=True)
    with pytest.raises(ValueError):
        substitution_order(model, model.tails, "bogus")


def test_coefficient_modulus_is_congruent_and_never_flips_the_verdict():
    netlist = generate_multiplier("BP-WT-RC", 3)
    model = AlgebraicModel.from_netlist(netlist)
    spec = multiplier_specification(model)
    rewritten = logic_reduction_rewriting(model, VanishingRules(model))
    trace_mod = ReductionTrace()
    with_mod = groebner_basis_reduction(
        spec.polynomial, model, rewritten.tails,
        ReductionOptions(coefficient_modulus=spec.modulus), trace_mod)
    assert with_mod.is_zero
    # Dropping coefficient multiples of 2^(2n) is a congruence: reducing the
    # same specification without it must agree modulo 2^(2n) and can only
    # produce a larger intermediate remainder.
    trace_plain = ReductionTrace()
    without_mod = groebner_basis_reduction(
        spec.polynomial, model, rewritten.tails, ReductionOptions(), trace_plain)
    assert without_mod.drop_coefficient_multiples(spec.modulus).is_zero
    assert trace_plain.peak_monomials >= trace_mod.peak_monomials
