"""Tests for the XOR-AND vanishing rule and its structural generalisation.

The central soundness requirement: every monomial classified as vanishing
must evaluate to zero on *every* consistent circuit valuation.  This is
checked both on hand-constructed cases (the paper's Example 3 signals) and
property-style on randomly sampled monomials of generated circuits.
"""

import itertools
import random

import pytest

from repro.algebra.monomial import Monomial
from repro.algebra.polynomial import Polynomial
from repro.circuit.netlist import Netlist
from repro.generators.adders import generate_adder
from repro.generators.multipliers import generate_multiplier
from repro.modeling.model import AlgebraicModel
from repro.verification.vanishing import VanishingRules


def _propagate_generate_netlist() -> Netlist:
    """X = a xor b, D = a and b, N = not a, O = a or b (Example 3 style)."""
    netlist = Netlist("pg")
    a, b = netlist.add_input("a"), netlist.add_input("b")
    netlist.xor(a, b, "X")
    netlist.and_(a, b, "D")
    netlist.not_(a, "N")
    netlist.or_(a, b, "O")
    netlist.add_output("X")
    netlist.add_output("D")
    netlist.add_output("N")
    netlist.add_output("O")
    return netlist


@pytest.fixture
def pg_rules():
    model = AlgebraicModel.from_netlist(_propagate_generate_netlist())
    return model, VanishingRules(model)


def test_xor_and_rule_core_case(pg_rules):
    """The paper's rule: (a xor b) * (a and b) = 0."""
    model, rules = pg_rules
    ring = model.ring
    xd = Monomial([ring.index("X"), ring.index("D")])
    assert rules.is_vanishing(xd)


def test_xor_with_both_inputs_vanishes(pg_rules):
    """X * a * b = 0 — needed once the AND has been inlined."""
    model, rules = pg_rules
    ring = model.ring
    mono = Monomial([ring.index("X"), ring.index("a"), ring.index("b")])
    assert rules.is_vanishing(mono)


def test_complement_rule(pg_rules):
    model, rules = pg_rules
    ring = model.ring
    assert rules.is_vanishing(Monomial([ring.index("N"), ring.index("a")]))
    assert rules.is_vanishing(Monomial([ring.index("N"), ring.index("D")]))


def test_non_vanishing_monomials_are_kept(pg_rules):
    model, rules = pg_rules
    ring = model.ring
    assert not rules.is_vanishing(Monomial([ring.index("O"), ring.index("D")]))
    assert not rules.is_vanishing(Monomial([ring.index("X"), ring.index("a")]))
    assert not rules.is_vanishing(Monomial([ring.index("a"), ring.index("b")]))
    assert not rules.is_vanishing(Monomial([ring.index("X")]))


def test_xor_and_only_mode_restricts_to_paper_rule(pg_rules):
    model, _ = pg_rules
    strict = VanishingRules(model, xor_and_only=True)
    ring = model.ring
    assert strict.is_vanishing(Monomial([ring.index("X"), ring.index("D")]))
    # The generalised cases are *not* detected in strict mode.
    assert not strict.is_vanishing(
        Monomial([ring.index("X"), ring.index("a"), ring.index("b")]))
    assert not strict.is_vanishing(Monomial([ring.index("N"), ring.index("a")]))


def test_remove_vanishing_counts_removals(pg_rules):
    model, rules = pg_rules
    ring = model.ring
    poly = Polynomial.from_terms([
        (1, [ring.index("X"), ring.index("D")]),
        (2, [ring.index("X")]),
        (3, [ring.index("O"), ring.index("D")]),
    ])
    before = rules.removed_count
    filtered = rules.remove_vanishing(poly)
    assert rules.removed_count - before == 1
    assert filtered.num_terms == 2


def test_constant_zero_variables_vanish():
    netlist = Netlist("const")
    a = netlist.add_input("a")
    netlist.const0("zero")
    netlist.and_(a, "zero", "dead")
    netlist.add_output("dead")
    model = AlgebraicModel.from_netlist(netlist)
    rules = VanishingRules(model)
    ring = model.ring
    assert rules.is_vanishing(Monomial([ring.index("zero"), ring.index("a")]))
    assert rules.is_vanishing(Monomial([ring.index("dead"), ring.index("a")]))


@pytest.mark.parametrize("builder, width", [
    (lambda: generate_adder("KS", 5), 5),
    (lambda: generate_adder("CL", 5), 5),
    (lambda: generate_multiplier("BP-WT-RC", 3), 3),
])
def test_vanishing_classification_is_sound(builder, width):
    """Every monomial flagged as vanishing evaluates to zero on the circuit.

    Random monomials are drawn over the model variables; flagged ones are
    evaluated on every primary-input assignment (exhaustive for these small
    circuits) and must always be zero.
    """
    netlist = builder()
    model = AlgebraicModel.from_netlist(netlist)
    rules = VanishingRules(model)
    rng = random.Random(1234)
    variables = list(model.records)
    num_inputs = len(netlist.inputs)
    ring = model.ring

    flagged = []
    for _ in range(400):
        size = rng.randint(2, 5)
        mono = Monomial(rng.sample(variables, size))
        if rules.is_vanishing(mono):
            flagged.append(mono)
    # The generators produce plenty of propagate/generate pairs, so some
    # vanishing monomials must be found among 400 random draws.
    assert flagged

    input_vars = [ring.index(name) for name in netlist.inputs]
    for bits in itertools.product((0, 1), repeat=num_inputs):
        assignment = dict(zip(input_vars, bits))
        values = model.evaluate(assignment)
        for mono in flagged:
            assert mono.evaluate(values) == 0, (
                f"monomial {mono.to_str(ring.name)} flagged as vanishing but "
                f"evaluates to 1")
