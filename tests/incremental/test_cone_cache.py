"""Integrity of the on-disk cone cache.

The cone cache follows the ResultCache contract: checksummed entries,
atomic publication, and quarantine-then-recompute on any corruption —
a tampered entry must never poison a verdict.
"""

from __future__ import annotations

import json

import pytest

from repro.api.request import Budgets
from repro.errors import BlowUpError
from repro.generators.multipliers import generate_multiplier
from repro.incremental import ConeCache, incremental_verify


@pytest.fixture()
def netlist():
    return generate_multiplier("SP-AR-RC", 3)


def _entry_paths(cache):
    return sorted(cache.directory.glob("*.json"))


def test_roundtrip_replays_every_cone(tmp_path, netlist):
    cache = ConeCache(tmp_path)
    cold = incremental_verify(netlist, cache=cache)
    assert cold.result.verified
    assert cold.counters["cache_misses"] == cold.counters["cones"]
    assert len(_entry_paths(cache)) == cold.counters["cones"]

    warm = incremental_verify(netlist, cache=cache)
    assert warm.result.verified
    assert warm.counters["replayed_cones"] == warm.counters["cones"]
    assert warm.counters["cache_misses"] == 0
    assert cache.stats() == {"hits": warm.counters["cones"],
                             "misses": cold.counters["cones"],
                             "quarantined": 0}


def _tamper(path, mutate):
    document = json.loads(path.read_text(encoding="utf-8"))
    mutate(document)
    path.write_text(json.dumps(document), encoding="utf-8")


def _flip_coefficient(document):
    entry = document["entry"]
    if entry["remainder"]:
        entry["remainder"][0][0] += 1
    else:
        entry["remainder"].append([1, [0]])


@pytest.mark.parametrize("mutate", [
    _flip_coefficient,
    lambda document: document.update(schema=99),
    lambda document: document["entry"].update(remainder=[[True, [0]]],
                                              ),
    lambda document: document["entry"].update(remainder=[[1, [0, -3]]]),
    lambda document: document.pop("sha256"),
], ids=["flipped-coefficient", "schema-mismatch", "bool-coefficient",
        "negative-slot", "missing-checksum"])
def test_tampered_entries_are_quarantined_and_recomputed(
        tmp_path, netlist, mutate):
    cache = ConeCache(tmp_path)
    incremental_verify(netlist, cache=cache)
    victim = _entry_paths(cache)[0]
    _tamper(victim, mutate)

    outcome = incremental_verify(netlist, cache=cache)
    assert outcome.result.verified, "corruption must never flip the verdict"
    assert outcome.counters["cache_misses"] == 1
    assert outcome.counters["replayed_cones"] == \
        outcome.counters["cones"] - 1
    assert cache.quarantined == 1
    quarantined = list(cache.directory.glob("*.json.quarantined"))
    assert len(quarantined) == 1
    assert quarantined[0].name == victim.name + ".quarantined"
    # The bad cone was re-reduced and republished with a valid checksum.
    assert victim.exists()
    replay = incremental_verify(netlist, cache=cache)
    assert replay.counters["replayed_cones"] == replay.counters["cones"]


def test_resigned_tampered_remainder_still_fails_closed(tmp_path, netlist):
    """A forger who re-signs a malformed remainder still gets quarantined."""
    cache = ConeCache(tmp_path)
    incremental_verify(netlist, cache=cache)
    victim = _entry_paths(cache)[0]
    document = json.loads(victim.read_text(encoding="utf-8"))
    document["entry"]["remainder"] = [["12", [0]]]  # string coefficient
    document["sha256"] = ConeCache._checksum(document["entry"])
    victim.write_text(json.dumps(document), encoding="utf-8")

    outcome = incremental_verify(netlist, cache=cache)
    assert outcome.result.verified
    assert cache.quarantined == 1


def test_unparseable_entry_is_quarantined(tmp_path, netlist):
    cache = ConeCache(tmp_path)
    incremental_verify(netlist, cache=cache)
    victim = _entry_paths(cache)[0]
    victim.write_text("{not json", encoding="utf-8")
    outcome = incremental_verify(netlist, cache=cache)
    assert outcome.result.verified
    assert cache.quarantined == 1
    assert (victim.parent / (victim.name + ".quarantined")).exists()


def test_budget_trips_are_never_cached(tmp_path, netlist):
    """Cones reduced before the trip are cached; the tripped one is not."""
    from repro.incremental import partition_cones

    cache = ConeCache(tmp_path)
    budgets = Budgets(monomial_budget=2)
    with pytest.raises(BlowUpError):
        incremental_verify(netlist, cache=cache, budgets=budgets)
    cached = len(_entry_paths(cache))
    assert cached < len(partition_cones(netlist).cones)

    # Re-running replays the easy cones, trips at the same place, and
    # publishes nothing new — a blow-up is never laundered into an entry.
    with pytest.raises(BlowUpError):
        incremental_verify(netlist, cache=cache, budgets=budgets)
    assert len(_entry_paths(cache)) == cached


def test_keys_separate_methods_and_budgets(tmp_path):
    cache = ConeCache(tmp_path)
    budgets, other = Budgets(), Budgets(monomial_budget=123)
    base = cache.key("deadbeef", "mt-lr", budgets)
    assert cache.key("deadbeef", "mt-lr", budgets) == base
    assert cache.key("deadbeef", "mt-xor", budgets) != base
    assert cache.key("deadbeef", "mt-lr", other) != base
    assert cache.key("deadbeef", "mt-lr", budgets, xor_and_only=True) != base
    assert cache.key("cafe", "mt-lr", budgets) != base


def test_get_and_put_ignore_none_keys(tmp_path):
    cache = ConeCache(tmp_path)
    assert cache.get(None) is None
    assert cache.put(None, "hash", "mt-lr", []) is False
    assert _entry_paths(cache) == []
