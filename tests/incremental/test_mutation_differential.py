"""Exhaustive differential sweep: incremental vs from-scratch, row for row.

Every single-gate mutation of the 4-bit SP-AR-RC multiplier (the full
``list_mutations`` catalog slice, 260 mutants plus the correct baseline)
is verified twice — through :func:`repro.verification.engine.verify` (the
reference) and through
:func:`repro.incremental.verify.incremental_verify` with one shared
:class:`~repro.incremental.cache.ConeCache` — and the rows must agree:

- identical verdict (``verified``);
- identical counterexample (both paths search with the same seed);
- for refuted mutants, the same surviving monomial set with every
  coefficient congruent mod ``2^|S|`` (the integer *representatives* are
  not comparable byte-for-byte: the from-scratch engine drops multiples
  of the modulus mid-run but never normalizes survivors, so its
  remainder can carry ``-128`` where the canonical symmetric-range form
  carries ``+128`` — see ``docs/incremental.md``).
"""

from __future__ import annotations

from repro.circuit.mutate import apply_mutation, list_mutations
from repro.generators.multipliers import generate_multiplier
from repro.incremental import ConeCache, incremental_verify
from repro.verification.engine import verify

ARCHITECTURE = "SP-AR-RC"
WIDTH = 4
MODULUS = 2 ** (2 * WIDTH)


def _assert_rows_match(reference, outcome, label):
    got = outcome.result
    assert got.verified == reference.verified, label
    assert got.counterexample == reference.counterexample, label
    if reference.verified:
        assert got.remainder.is_zero, label
        return
    ref_terms = dict(reference.remainder.term_masks())
    got_terms = dict(got.remainder.term_masks())
    assert set(ref_terms) == set(got_terms), label
    for mask in ref_terms:
        assert (ref_terms[mask] - got_terms[mask]) % MODULUS == 0, \
            f"{label}: coefficient mismatch mod {MODULUS} on mask {mask}"


def test_every_single_gate_mutant_matches_the_reference(tmp_path):
    netlist = generate_multiplier(ARCHITECTURE, WIDTH)
    mutations = list_mutations(netlist)
    assert len(mutations) >= 200, "catalog slice unexpectedly small"
    cache = ConeCache(tmp_path / "cones")

    baseline = verify(netlist, "multiplier", "mt-lr", seed=0)
    outcome = incremental_verify(netlist, "multiplier", "mt-lr", seed=0,
                                 cache=cache)
    assert baseline.verified
    _assert_rows_match(baseline, outcome, "baseline")
    assert outcome.counters["cones"] == outcome.counters["reduced_cones"]

    for mutation in mutations:
        mutant = apply_mutation(netlist, mutation)
        reference = verify(mutant, "multiplier", "mt-lr", seed=0)
        outcome = incremental_verify(mutant, "multiplier", "mt-lr", seed=0,
                                     cache=cache)
        _assert_rows_match(reference, outcome, mutation.key)

    # The shared cache replayed the unchanged cones across the campaign.
    stats = cache.stats()
    assert stats["hits"] > stats["misses"]
