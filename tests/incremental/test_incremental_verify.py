"""The incremental path end to end: engine parity, accounting, wiring.

Covers the exactness contract on golden circuits, the
``replayed == cones − changed`` accounting of single-gate mutants, and
the plumbing through :class:`~repro.api.service.VerificationService`,
the HTTP app (request key + ``/metrics``), and the CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.api.report import VerificationReport
from repro.api.request import VerificationRequest
from repro.api.service import VerificationService
from repro.circuit.mutate import apply_mutation, list_mutations
from repro.cli import main
from repro.errors import VerificationError
from repro.generators.adders import generate_adder
from repro.generators.multipliers import generate_multiplier
from repro.incremental import ConeCache, incremental_verify, partition_cones
from repro.server.app import VerificationServerApp
from repro.verification.engine import verify


def test_golden_multiplier_matches_the_engine_on_every_scheme():
    netlist = generate_multiplier("SP-AR-RC", 4)
    for method in ("mt-naive", "mt-fo", "mt-xor", "mt-lr"):
        reference = verify(netlist, "multiplier", method)
        outcome = incremental_verify(netlist, "multiplier", method)
        assert reference.verified and outcome.result.verified
        assert outcome.result.remainder.is_zero
        assert outcome.counters == {
            "cones": 8, "replayed_cones": 0, "reduced_cones": 8,
            "cache_hits": 0, "cache_misses": 0}


def test_adder_specification_is_supported():
    netlist = generate_adder("KS", 6)
    outcome = incremental_verify(netlist, "adder")
    assert outcome.result.verified
    assert outcome.counters["cones"] == 7  # s0..s5 plus the carry out


def test_wide_cones_are_refused_up_front():
    """Any cone over the input limit refuses the whole circuit cheaply."""
    from repro.circuit.netlist import Netlist
    from repro.incremental import ConeTooWideError

    netlist = Netlist("wide")
    a = [netlist.add_input(f"a{i}") for i in range(8)]
    b = [netlist.add_input(f"b{i}") for i in range(8)]
    netlist.and_tree(a + b, "s0")  # 16-input cone, trivial normal form
    netlist.add_output("s0")
    netlist.validate()

    with pytest.raises(ConeTooWideError, match="16 primary inputs"):
        incremental_verify(netlist, "adder", find_counterexample=False)
    # ConeTooWideError is a BlowUpError, so plain callers keep that contract.
    from repro.errors import BlowUpError
    assert issubclass(ConeTooWideError, BlowUpError)

    # Lifting the limit attempts (and here trivially completes) the cone.
    outcome = incremental_verify(netlist, "adder", find_counterexample=False,
                                 max_cone_inputs=None)
    assert not outcome.result.verified
    assert outcome.counters["cones"] == 1


def test_service_falls_back_to_from_scratch_above_the_frontier(tmp_path):
    """Wider-than-limit circuits verify from scratch with a null block."""
    service = VerificationService(cone_cache_dir=str(tmp_path))
    request = VerificationRequest.from_netlist(
        generate_adder("KS", 13), circuit_kind="adder", incremental=True)
    report = service.submit(request)
    assert report.verdict == "verified"
    assert report.incremental is None  # fell back: no cone accounting
    assert list((tmp_path).iterdir()) == []  # and nothing was cached


def test_mutant_replays_exactly_the_unchanged_cones(tmp_path):
    """ISSUE acceptance: replayed == total cones − changed-hash cones."""
    netlist = generate_multiplier("SP-AR-RC", 4)
    baseline = partition_cones(netlist)
    cache = ConeCache(tmp_path)
    incremental_verify(netlist, cache=cache)  # warm the cache

    for mutation in list_mutations(netlist)[::25]:
        mutant = apply_mutation(netlist, mutation)
        changed = baseline.changed_cones(partition_cones(mutant))
        outcome = incremental_verify(mutant, cache=cache)
        counters = outcome.counters
        assert counters["cones"] == len(baseline.cones)
        assert counters["replayed_cones"] == \
            counters["cones"] - len(changed), mutation.key
        # Second visit of the same mutant replays everything.
        again = incremental_verify(mutant, cache=cache)
        assert again.counters["replayed_cones"] == again.counters["cones"]


def test_service_routes_incremental_requests(tmp_path):
    service = VerificationService(cone_cache_dir=str(tmp_path))
    request = VerificationRequest.from_architecture("SP-AR-RC", 4,
                                                    incremental=True)
    report = service.submit(request)
    assert report.verdict == "verified"
    assert report.incremental == {
        "cones": 8, "replayed_cones": 0, "reduced_cones": 8,
        "cache_hits": 0, "cache_misses": 8}

    replay = service.submit(request)
    assert replay.incremental["cache_hits"] == 8
    assert replay.incremental["replayed_cones"] == 8

    document = json.loads(report.to_json())
    assert document["schema"] == 5
    assert list(document)[-1] == "incremental"
    assert VerificationReport.from_json(report.to_json()).to_json() == \
        report.to_json()


def test_from_scratch_reports_carry_a_null_incremental_block():
    service = VerificationService()
    report = service.submit(
        VerificationRequest.from_architecture("SP-AR-RC", 3))
    assert report.incremental is None
    assert json.loads(report.to_json())["incremental"] is None


def test_incremental_rejects_certificates_and_non_algebraic_backends():
    service = VerificationService()
    with pytest.raises(VerificationError, match="certificate"):
        service.submit(VerificationRequest.from_architecture(
            "SP-AR-RC", 3, incremental=True, certificate=True))
    with pytest.raises(VerificationError, match="algebraic"):
        service.submit(VerificationRequest.from_architecture(
            "SP-AR-RC", 3, method="sat-cec", incremental=True))


def test_server_accepts_the_flag_and_aggregates_metrics(tmp_path):
    app = VerificationServerApp(cone_cache_dir=str(tmp_path))
    try:
        document = {"architecture": "SP-AR-RC", "width": 4,
                    "incremental": True}
        response = app.handle("POST", "/v1/verify",
                              json.dumps(document).encode("utf-8"))
        assert response.status == 200
        body = json.loads(response.body.decode("utf-8"))
        assert body["verdict"] == "verified"
        assert body["incremental"]["cones"] == 8

        metrics = json.loads(app.handle("GET", "/metrics").body
                             .decode("utf-8"))
        block = metrics["incremental"]
        assert block["reports_total"] == 1
        assert block["cones_total"] == 8
        assert block["reduced_cones_total"] == 8
        assert block["replayed_cones_total"] == 0
        assert block["cone_cache_dir"] == str(tmp_path)

        # A warm second request replays through the shared directory.
        app.handle("POST", "/v1/verify",
                   json.dumps(document).encode("utf-8"))
        metrics = json.loads(app.handle("GET", "/metrics").body
                             .decode("utf-8"))
        assert metrics["incremental"]["replayed_cones_total"] == 8
    finally:
        app.close()


def test_server_rejects_a_non_boolean_incremental_flag():
    app = VerificationServerApp()
    try:
        response = app.handle(
            "POST", "/v1/verify",
            json.dumps({"architecture": "SP-AR-RC", "width": 3,
                        "incremental": "yes"}).encode("utf-8"))
        assert response.status == 400
    finally:
        app.close()


def test_cli_verify_incremental(tmp_path, capsys):
    cache = tmp_path / "cones"
    argv = ["verify", "-a", "SP-AR-RC", "-w", "4", "--incremental",
            "--cone-cache", str(cache), "--json"]
    assert main(argv) == 0
    first = json.loads(capsys.readouterr().out)
    assert first["incremental"]["reduced_cones"] == 8

    assert main(argv) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["incremental"]["replayed_cones"] == 8
    assert second["incremental"]["cache_hits"] == 8


def test_cli_campaign_smoke(tmp_path, capsys):
    assert main(["campaign", "-a", "SP-AR-RC", "-w", "4", "--sample", "5",
                 "--seed", "9", "--cross-check", "2",
                 "--cone-cache", str(tmp_path / "cones"),
                 "--out", str(tmp_path / "rows.jsonl")]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["tasks"] == 6
    assert summary["cross_checked"] == 2
    assert summary["cross_check_disagreements"] == 0
    rows = (tmp_path / "rows.jsonl").read_text(encoding="utf-8")
    assert len(rows.splitlines()) == 6
