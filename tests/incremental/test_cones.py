"""Cone partitioning and the canonical content hash.

The hash contract (``docs/incremental.md``): invariant under signal
renaming and gate declaration order, distinct for structurally edited
cones, and ownership covers every live gate exactly once — on random
DAGs and on the full 50-architecture catalog.
"""

from __future__ import annotations

import random

import pytest

from repro.circuit.mutate import apply_mutation, list_mutations
from repro.circuit.netlist import GateType, Netlist
from repro.generators.catalog import architecture_names
from repro.generators.multipliers import generate_multiplier
from repro.incremental import cone_subnetlist, partition_cones


def _two_bit_adder(names: dict[str, str]) -> Netlist:
    """A tiny two-output circuit built with caller-chosen signal names."""
    n = names.get
    netlist = Netlist(names.get("_module", "tiny"))
    a = netlist.add_input(n("a", "a"))
    b = netlist.add_input(n("b", "b"))
    c = netlist.add_input(n("c", "c"))
    s = netlist.xor(a, b, n("s", "s"))
    netlist.xor(s, c, n("sum", "sum"))
    g = netlist.and_(a, b, n("g", "g"))
    p = netlist.and_(s, c, n("p", "p"))
    netlist.or_(g, p, n("cout", "cout"))
    netlist.add_output(n("sum", "sum"))
    netlist.add_output(n("cout", "cout"))
    netlist.validate()
    return netlist


def _random_dag(seed: int) -> Netlist:
    """A seeded random gate DAG with several outputs and some dead gates."""
    rng = random.Random(seed)
    netlist = Netlist(f"dag{seed}")
    signals = [netlist.add_input(f"i{n}") for n in range(rng.randint(3, 6))]
    binary = (GateType.AND, GateType.OR, GateType.XOR, GateType.NAND,
              GateType.NOR, GateType.XNOR)
    for n in range(rng.randint(8, 40)):
        if rng.random() < 0.2:
            kind, fanin = rng.choice((GateType.NOT, GateType.BUF)), 1
        else:
            kind, fanin = rng.choice(binary), 2
        inputs = [rng.choice(signals) for _ in range(fanin)]
        signals.append(netlist.add_gate(kind, inputs, f"g{n}"))
    gate_signals = [s for s in signals if not netlist.is_input(s)]
    for signal in rng.sample(gate_signals,
                             max(1, len(gate_signals) // 3)):
        netlist.add_output(signal)
    netlist.validate()
    return netlist


def test_cone_hash_is_invariant_under_signal_renaming():
    plain = _two_bit_adder({})
    renamed = _two_bit_adder({
        "_module": "obfuscated", "a": "x", "b": "y", "c": "z",
        "s": "n17", "sum": "n18", "g": "n19", "p": "n20", "cout": "n21"})
    hashes = [cone.hash for cone in partition_cones(plain).cones]
    assert hashes == [cone.hash for cone in partition_cones(renamed).cones]


def test_cone_hash_is_invariant_under_gate_declaration_order():
    ordered = _two_bit_adder({})
    shuffled = Netlist("tiny")
    for name in ("a", "b", "c"):
        shuffled.add_input(name)
    # Same gates, declared back to front (forward references are legal
    # until validate()).
    shuffled.add_gate(GateType.OR, ("g", "p"), "cout")
    shuffled.add_gate(GateType.AND, ("s", "c"), "p")
    shuffled.add_gate(GateType.AND, ("a", "b"), "g")
    shuffled.add_gate(GateType.XOR, ("s", "c"), "sum")
    shuffled.add_gate(GateType.XOR, ("a", "b"), "s")
    shuffled.add_output("sum")
    shuffled.add_output("cout")
    shuffled.validate()
    hashes = [cone.hash for cone in partition_cones(ordered).cones]
    assert hashes == [cone.hash for cone in partition_cones(shuffled).cones]


def test_cone_hash_distinguishes_edited_cones():
    """Exactly the cones reaching a mutated gate change their hash."""
    netlist = generate_multiplier("SP-AR-RC", 4)
    baseline = partition_cones(netlist)
    by_output = baseline.by_output()
    dead = set(baseline.dead_gates)
    for mutation in list_mutations(netlist)[::40]:
        mutant = partition_cones(apply_mutation(netlist, mutation))
        changed = baseline.changed_cones(mutant)
        if mutation.signal in dead:
            # Mutating dead logic reaches no output: no cone may change.
            assert changed == []
            continue
        assert changed, f"{mutation.key} must change at least one cone"
        for output in changed:
            # The mutated gate lies in every changed cone's fanin.
            assert mutation.signal in by_output[output].gates
        # And conversely: every cone whose fanin contains the gate changed.
        for cone in baseline.cones:
            if mutation.signal in cone.gates:
                assert cone.output in changed


def test_cone_hash_follows_the_ordered_input_tuple():
    """Documented caveat: the hash walks each gate's ordered input tuple.

    Swapping two plain primary inputs yields the same structural document
    (only the slot→signal binding outside the hash differs), but swapping
    a gate operand past an input changes the DFS numbering and the hash —
    a cache miss, never a wrong answer.
    """
    def flat(swap):
        netlist = Netlist("flat")
        a, b = netlist.add_input("a"), netlist.add_input("b")
        netlist.and_(*((b, a) if swap else (a, b)), "z")
        netlist.add_output("z")
        netlist.validate()
        return partition_cones(netlist).cones[0]

    same, swapped = flat(False), flat(True)
    assert same.hash == swapped.hash
    assert same.inputs != swapped.inputs  # binding differs, hash doesn't

    def nested(swap):
        netlist = Netlist("nested")
        a, b, c = (netlist.add_input(s) for s in "abc")
        g = netlist.and_(a, b, "g")
        netlist.xor(*((c, g) if swap else (g, c)), "z")
        netlist.add_output("z")
        netlist.validate()
        return partition_cones(netlist).cones[0]

    assert nested(False).hash != nested(True).hash


@pytest.mark.parametrize("seed", range(8))
def test_ownership_covers_every_live_gate_exactly_once(seed):
    netlist = _random_dag(seed)
    partition = partition_cones(netlist)
    live = set()
    for cone in partition.cones:
        owned = set(cone.owned)
        assert owned <= cone.gates, "owned gates must lie in the fanin"
        assert not owned & live, "no gate may be owned twice"
        live |= owned
    all_gates = {gate.output for gate in netlist.gates()}
    assert live | set(partition.dead_gates) == all_gates
    assert not live & set(partition.dead_gates)


@pytest.mark.parametrize("architecture", architecture_names())
def test_ownership_partitions_every_catalog_architecture(architecture):
    netlist = generate_multiplier(architecture, 4)
    partition = partition_cones(netlist)
    owned = [gate for cone in partition.cones for gate in cone.owned]
    assert len(owned) == len(set(owned)), "a gate is owned twice"
    assert set(owned) | set(partition.dead_gates) == \
        {gate.output for gate in netlist.gates()}


def test_cone_subnetlist_is_a_pure_function_of_the_hash():
    """Identically hashed cones rebuild identical canonical netlists."""
    plain = partition_cones(_two_bit_adder({}))
    renamed = partition_cones(_two_bit_adder({
        "_module": "other", "a": "q0", "b": "q1", "c": "q2",
        "s": "w", "sum": "o0", "g": "k", "p": "l", "cout": "o1"}))
    for left, right in zip(plain.cones, renamed.cones):
        sub_left, sub_right = cone_subnetlist(left), cone_subnetlist(right)
        assert sub_left.name == sub_right.name
        assert sub_left.inputs == sub_right.inputs
        assert sub_left.outputs == sub_right.outputs
        assert [(g.output, g.gate_type, g.inputs)
                for g in sub_left.gates()] == \
            [(g.output, g.gate_type, g.inputs) for g in sub_right.gates()]
