"""The mutation-campaign runner: enumeration, rows, resume, cross-check."""

from __future__ import annotations

import json

from repro.incremental import enumerate_tasks, run_campaign
from repro.incremental.campaign import _finished_ids
from pathlib import Path


def test_enumerate_tasks_is_deterministic_and_stably_identified():
    tasks = enumerate_tasks(["SP-AR-RC"], [4], sample=10, seed=3)
    again = enumerate_tasks(["SP-AR-RC"], [4], sample=10, seed=3)
    assert tasks == again
    assert tasks[0].id == "SP-AR-RC-w4-baseline"
    assert tasks[0].index == -1
    assert len(tasks) == 11  # baseline + sample mutants
    ids = [task.id for task in tasks]
    assert len(ids) == len(set(ids))
    for task in tasks[1:]:
        # Stable machine-readable id derived from the mutation key.
        assert task.id.startswith("SP-AR-RC-w4-") and "->" in task.id
    # A different seed draws a different sample.
    assert enumerate_tasks(["SP-AR-RC"], [4], sample=10, seed=4) != tasks
    # limit truncates the flattened grid.
    assert enumerate_tasks(["SP-AR-RC"], [4], sample=10, seed=3,
                           limit=5) == tasks[:5]


def test_run_campaign_rows_and_summary(tmp_path):
    out = tmp_path / "campaign.jsonl"
    rows = []
    summary = run_campaign(
        ["SP-AR-RC"], [4], sample=8, seed=1, cross_check=3,
        cone_cache_dir=str(tmp_path / "cones"), out_path=out,
        on_row=rows.append)
    assert summary["tasks"] == summary["executed"] == 9
    assert summary["skipped"] == 0
    assert summary["verdicts"].get("verified", 0) >= 1  # the baseline
    assert sum(summary["verdicts"].values()) == 9
    assert summary["cross_checked"] == 3
    assert summary["cross_check_disagreements"] == 0
    assert summary["out"] == str(out)

    persisted = [json.loads(line) for line in
                 out.read_text(encoding="utf-8").splitlines()]
    assert persisted == rows
    baseline = persisted[0]
    assert baseline["id"] == "SP-AR-RC-w4-baseline"
    assert baseline["mutation"] is None
    assert baseline["verdict"] == "verified"
    assert baseline["incremental"]["cones"] == 8
    for row in persisted[1:]:
        assert row["mutation"] is not None
        assert row["verdict"] in ("verified", "refuted")
    checked = [row for row in persisted if "cross_check" in row]
    assert len(checked) == 3
    assert all(row["cross_check"]["agrees"] for row in checked)


def test_second_run_replays_the_cone_cache(tmp_path):
    kwargs = dict(sample=8, seed=1, cone_cache_dir=str(tmp_path / "cones"))
    first = run_campaign(["SP-AR-RC"], [4],
                         out_path=tmp_path / "run1.jsonl", **kwargs)
    second = run_campaign(["SP-AR-RC"], [4],
                          out_path=tmp_path / "run2.jsonl", **kwargs)
    assert second["cone_cache"]["hit_rate"] >= 0.9
    assert second["cone_cache"]["misses"] == 0
    assert first["verdicts"] == second["verdicts"]

    def verdict_column(path):
        return [(json.loads(line)["id"], json.loads(line)["verdict"])
                for line in path.read_text(encoding="utf-8").splitlines()]

    assert verdict_column(tmp_path / "run1.jsonl") == \
        verdict_column(tmp_path / "run2.jsonl")


def test_resume_executes_only_the_unfinished_tasks(tmp_path):
    out = tmp_path / "campaign.jsonl"
    cache = str(tmp_path / "cones")
    partial = run_campaign(["SP-AR-RC"], [4], sample=8, seed=1, limit=4,
                           cone_cache_dir=cache, out_path=out)
    assert partial["executed"] == 4

    # Simulate the interruption tearing the last line mid-write.
    with open(out, "a", encoding="utf-8") as handle:
        handle.write('{"id": "SP-AR-RC-w4-tor')

    resumed = run_campaign(["SP-AR-RC"], [4], sample=8, seed=1, resume=True,
                           cone_cache_dir=cache, out_path=out)
    assert resumed["skipped"] == 4
    assert resumed["executed"] == 5
    assert resumed["tasks"] == 9
    ids = [json.loads(line)["id"]
           for line in out.read_text(encoding="utf-8").splitlines()
           if not line.startswith('{"id": "SP-AR-RC-w4-tor')]
    expected = [task.id for task in
                enumerate_tasks(["SP-AR-RC"], [4], sample=8, seed=1)]
    assert ids == expected

    # A third run with resume finds nothing left to do.
    done = run_campaign(["SP-AR-RC"], [4], sample=8, seed=1, resume=True,
                        cone_cache_dir=cache, out_path=out)
    assert done["executed"] == 0
    assert done["skipped"] == 9


def test_finished_ids_tolerates_torn_and_foreign_lines(tmp_path):
    out = tmp_path / "rows.jsonl"
    out.write_text('{"id": "a", "verdict": "verified"}\n'
                   '[1, 2, 3]\n'
                   'not json at all\n'
                   '{"no_id": true}\n'
                   '{"id": "b"}\n'
                   '{"id": "c", "verdi',
                   encoding="utf-8")
    assert _finished_ids(out) == {"a", "b"}
    assert _finished_ids(Path(tmp_path / "missing.jsonl")) == set()


def test_parallel_jobs_share_the_cache_and_agree(tmp_path):
    serial = run_campaign(["SP-AR-RC"], [4], sample=6, seed=2,
                          cone_cache_dir=str(tmp_path / "serial"),
                          out_path=tmp_path / "serial.jsonl")
    parallel = run_campaign(["SP-AR-RC"], [4], sample=6, seed=2, jobs=2,
                            cone_cache_dir=str(tmp_path / "parallel"),
                            out_path=tmp_path / "parallel.jsonl")
    assert parallel["verdicts"] == serial["verdicts"]

    def verdict_of(path):
        return {json.loads(line)["id"]: json.loads(line)["verdict"]
                for line in path.read_text(encoding="utf-8").splitlines()}

    assert verdict_of(tmp_path / "parallel.jsonl") == \
        verdict_of(tmp_path / "serial.jsonl")
