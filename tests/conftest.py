"""Shared pytest fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.circuit.netlist import Netlist


@pytest.fixture
def paper_full_adder() -> Netlist:
    """The full adder of the paper's Fig. 1 (five gates, XOR/AND/OR structure)."""
    netlist = Netlist("paper_full_adder")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    cin = netlist.add_input("cin")
    x1 = netlist.xor(a, b, "x1")
    x2 = netlist.and_(a, b, "x2")        # generate
    s = netlist.xor(x1, cin, "s")
    x4 = netlist.and_(x1, cin, "x4")
    c = netlist.or_(x2, x4, "c")
    netlist.add_output(s)
    netlist.add_output(c)
    netlist.validate()
    return netlist


@pytest.fixture
def tiny_and_netlist() -> Netlist:
    """A single AND gate, useful for unit tests of modelling and CNF."""
    netlist = Netlist("tiny_and")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    netlist.and_(a, b, "z")
    netlist.add_output("z")
    return netlist
