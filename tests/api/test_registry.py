"""Tests of the backend registry — the single source of truth for methods."""

from __future__ import annotations

import pytest

from repro.api import registry
from repro.api.registry import (
    ABLATION_METHODS,
    ADDER_BLOWUP_METHODS,
    BackendSpec,
    COMPARISON_METHODS,
    TABLE1_BASELINES,
    TABLE2_BASELINES,
    algebraic_backend_names,
    backend_names,
    backends,
    baseline_backend_names,
    get_backend,
    has_backend,
    register,
    scheduling_rank,
    unregister,
)
from repro.errors import VerificationError


def test_six_builtin_backends_in_canonical_order():
    assert backend_names() == ("mt-lr", "mt-fo", "mt-naive", "mt-xor",
                               "sat-cec", "bdd-cec")


def test_kind_partitions_cover_the_registry():
    assert algebraic_backend_names() == ("mt-lr", "mt-fo", "mt-naive", "mt-xor")
    assert baseline_backend_names() == ("sat-cec", "bdd-cec")
    assert (set(algebraic_backend_names()) | set(baseline_backend_names())
            == set(backend_names()))


def test_capability_metadata():
    assert get_backend("mt-lr").supports_stats
    assert get_backend("mt-lr").supports_counterexample
    assert not get_backend("sat-cec").supports_stats
    assert get_backend("sat-cec").supports_counterexample
    assert not get_backend("bdd-cec").supports_counterexample
    for spec in backends():
        assert spec.kind in ("algebraic", "sat", "bdd")
        assert spec.description
        assert spec.budget_keys


def test_scheduling_ranks_match_expected_cost_ordering():
    # MT-LR is the cheapest method, naive membership testing the costliest.
    ranks = [scheduling_rank(name) for name in
             ("mt-lr", "mt-xor", "sat-cec", "bdd-cec", "mt-fo", "mt-naive")]
    assert ranks == sorted(ranks)
    assert scheduling_rank("unknown-backend") == 0


def test_get_backend_rejects_unknown_names():
    with pytest.raises(VerificationError, match="unknown method"):
        get_backend("mt-bogus")
    assert not has_backend("mt-bogus")


def test_register_and_unregister_custom_backend():
    spec = BackendSpec(name="test-backend", kind="sat",
                       description="a test plug-in", cost_rank=9)
    try:
        register(spec)
        assert has_backend("test-backend")
        assert get_backend("test-backend") is spec
        assert "test-backend" in backend_names()
        with pytest.raises(VerificationError, match="already registered"):
            register(spec)
    finally:
        unregister("test-backend")
    assert not has_backend("test-backend")


def test_backend_spec_rejects_unknown_kind():
    with pytest.raises(VerificationError, match="unknown kind"):
        BackendSpec(name="x", kind="quantum")


def test_table_column_lists_are_registry_validated():
    for name in (TABLE1_BASELINES + TABLE2_BASELINES + COMPARISON_METHODS
                 + ABLATION_METHODS + ADDER_BLOWUP_METHODS):
        assert has_backend(name)


def test_derived_consumers_use_the_registry():
    from repro.experiments.runner import JOB_METHODS
    from repro.verification.engine import METHODS

    assert METHODS == algebraic_backend_names()
    assert JOB_METHODS == backend_names()


def test_no_hardcoded_method_lists_outside_the_registry():
    """Grep-style guard: consumers must derive their lists, not re-declare them."""
    from pathlib import Path

    src = Path(registry.__file__).resolve().parents[1]
    offenders = []
    for path in src.rglob("*.py"):
        if path.name == "registry.py":
            continue
        text = path.read_text(encoding="utf-8")
        for needle in ('"mt-lr", "mt-fo"', "'mt-lr', 'mt-fo'",
                       '"sat-cec", "bdd-cec"', "'sat-cec', 'bdd-cec'",
                       '"mt-naive", "mt-fo"', '"mt-fo", "mt-xor"'):
            if needle in text:
                offenders.append(f"{path.name}: {needle}")
    assert not offenders, f"hardcoded method lists found: {offenders}"
