"""Tests of the unified report schema: JSON and table-row round trips."""

from __future__ import annotations

import json

import pytest

from repro.api.report import (
    EXIT_CODES,
    REPORT_SCHEMA,
    STATUS_TO_VERDICT,
    VerificationReport,
    format_seconds,
)
from repro.api.request import Budgets, VerificationRequest
from repro.api.service import VerificationService
from repro.errors import VerificationError
from repro.experiments.runner import (
    ExperimentConfig,
    run_bdd_cec,
    run_membership_testing,
    run_sat_cec,
)

CONFIG = ExperimentConfig(widths=(3,), time_budget_s=60.0,
                          monomial_budget=200_000)


def _assert_row_roundtrip(row: dict) -> None:
    """from_row -> to_row is the identity, byte-for-byte in key order."""
    report = VerificationReport.from_row(row)
    assert report.to_row() == row
    assert list(report.to_row()) == list(row)
    # ... and survives the canonical JSON serialization unchanged.
    revived = VerificationReport.from_json(report.to_json())
    assert revived.to_row() == row
    assert list(revived.to_row()) == list(row)


def test_membership_row_roundtrip():
    _assert_row_roundtrip(run_membership_testing("SP-AR-RC", 3, "mt-lr", CONFIG))


def test_membership_budget_trip_row_roundtrip():
    tight = ExperimentConfig(widths=(4,), monomial_budget=10)
    row = run_membership_testing("SP-RT-KS", 4, "mt-naive", tight)
    assert row["status"] == "TO"
    _assert_row_roundtrip(row)


def test_sat_row_roundtrip():
    _assert_row_roundtrip(run_sat_cec("SP-WT-CL", 3, CONFIG))


def test_sat_not_applicable_row_roundtrip():
    row = run_sat_cec("BP-AR-RC", 3, CONFIG, booth_supported=False)
    assert row["status"] == "n/a"
    _assert_row_roundtrip(row)


def test_bdd_row_roundtrip():
    _assert_row_roundtrip(run_bdd_cec("SP-CT-BK", 3, CONFIG))


def test_error_and_crash_row_roundtrip():
    for status in ("error", "crash"):
        _assert_row_roundtrip({
            "architecture": "SP-AR-RC", "width": 3, "method": "mt-lr",
            "status": status, "time": "-", "time_s": None, "verified": None,
            "reason": "worker exited with code -9",
        })


def test_json_roundtrip_is_byte_identical():
    row = run_membership_testing("SP-AR-RC", 3, "mt-lr", CONFIG)
    text = VerificationReport.from_row(row).to_json()
    assert VerificationReport.from_json(text).to_json() == text
    document = json.loads(text)
    assert document["schema"] == REPORT_SCHEMA
    assert list(document) == ["schema", "verdict", "status", "method",
                              "circuit", "width", "specification", "time",
                              "time_s", "reason", "counterexample",
                              "remainder", "counters", "certificate",
                              "cross_check", "attempts", "incremental"]


def test_verdict_status_and_exit_code_mapping():
    for status, verdict in STATUS_TO_VERDICT.items():
        report = VerificationReport(verdict=verdict, status=status,
                                    method="mt-lr", circuit="X")
        assert report.verdict == verdict
    assert EXIT_CODES == {"verified": 0, "refuted": 2, "budget": 3,
                          "not_applicable": 0, "error": 1}
    assert VerificationReport(verdict="verified", method="m",
                              circuit="c").exit_code == 0
    assert VerificationReport(verdict="refuted", method="m",
                              circuit="c").exit_code == 2
    assert VerificationReport(verdict="budget", method="m",
                              circuit="c").exit_code == 3


def test_verified_tristate():
    assert VerificationReport(verdict="verified", method="m",
                              circuit="c").verified is True
    assert VerificationReport(verdict="refuted", method="m",
                              circuit="c").verified is False
    assert VerificationReport(verdict="budget", method="m",
                              circuit="c").verified is None


def test_unknown_verdict_and_status_rejected():
    with pytest.raises(VerificationError, match="unknown verdict"):
        VerificationReport(verdict="maybe", method="m", circuit="c")
    with pytest.raises(VerificationError, match="unknown row status"):
        VerificationReport.from_row({"architecture": "c", "width": 3,
                                     "method": "m", "status": "odd",
                                     "time": "-", "time_s": None,
                                     "verified": None})


def test_from_json_rejects_other_schema_versions():
    report = VerificationReport(verdict="verified", method="m", circuit="c")
    document = report.to_dict()
    document["schema"] = 99
    with pytest.raises(VerificationError, match="unsupported report schema"):
        VerificationReport.from_dict(document)


def test_from_json_accepts_legacy_schemas():
    """Schema-1/2 documents (pre-certificate) must still parse."""
    row = run_membership_testing("SP-AR-RC", 3, "mt-lr", CONFIG)
    document = VerificationReport.from_row(row).to_dict()
    del document["certificate"]
    del document["cross_check"]
    for legacy in (1, 2):
        document["schema"] = legacy
        revived = VerificationReport.from_dict(json.loads(json.dumps(document)))
        assert revived.verdict == "verified"
        assert revived.certificate is None
        assert revived.cross_check is None
        # Re-serialization upgrades to the current schema.
        assert revived.to_dict()["schema"] == REPORT_SCHEMA


def test_refuted_report_carries_remainder_and_counterexample():
    from repro.circuit.mutate import apply_mutation, list_mutations
    from repro.generators.multipliers import generate_multiplier

    netlist = generate_multiplier("SP-AR-RC", 3)
    buggy = apply_mutation(netlist, list_mutations(netlist)[0])
    report = VerificationService().submit(
        VerificationRequest.from_netlist(buggy, method="mt-lr"))
    assert report.verdict == "refuted"
    assert report.remainder
    assert report.counterexample
    revived = VerificationReport.from_json(report.to_json())
    assert revived.counterexample == report.counterexample
    assert revived.remainder == report.remainder


def test_budget_report_from_service():
    service = VerificationService()
    report = service.submit(VerificationRequest.from_architecture(
        "SP-RT-KS", 6, method="mt-naive",
        budgets=Budgets(monomial_budget=50)))
    assert report.verdict == "budget"
    assert report.status == "TO"
    assert report.time == "TO"
    assert report.reason
    assert report.exit_code == 3


def test_format_seconds():
    assert format_seconds(0.0) == "00:00:00.00"
    assert format_seconds(3725.5) == "01:02:05.50"
