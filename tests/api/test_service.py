"""Tests of the verification service façade.

Covers the ISSUE 4 acceptance tests: every registered backend runs on the
4-bit catalog with byte-identical report JSON round-trips, the SAT/BDD
baselines agree with the algebraic methods verdict-for-verdict, the old
``verify(**kwargs)`` shim pins to the new pipeline's results, and
``run_batch`` reproduces the parallel runner's rows.
"""

from __future__ import annotations

import pytest

from repro.api.registry import backend_names
from repro.api.report import VerificationReport
from repro.api.request import Budgets, VerificationRequest
from repro.api.service import VerificationService
from repro.circuit.mutate import apply_mutation, list_mutations
from repro.errors import VerificationError
from repro.experiments.runner import ParallelRunner
from repro.circuit.simulate import simulate_words
from repro.generators.multipliers import generate_multiplier
from repro.verification.engine import verify

CATALOG_4BIT = ("SP-AR-RC", "SP-WT-CL", "BP-CT-BK")


@pytest.fixture(scope="module")
def service():
    return VerificationService(budgets=Budgets(time_budget_s=60.0))


@pytest.mark.parametrize("method", backend_names())
@pytest.mark.parametrize("architecture", CATALOG_4BIT)
def test_every_backend_verifies_the_4bit_catalog_and_roundtrips(
        service, architecture, method):
    """Registry round-trip: every backend runs and its JSON is byte-stable."""
    report = service.submit(
        VerificationRequest.from_architecture(architecture, 4, method=method,
                                              budgets=service.budgets))
    assert report.verdict == "verified"
    assert report.method == method
    assert report.circuit == architecture
    assert report.width == 4
    text = report.to_json()
    revived = VerificationReport.from_json(text)
    assert revived.to_json() == text
    assert revived.to_row() == report.to_row()


def _observable_bug(netlist):
    """A mutated copy that provably computes a wrong product somewhere."""
    for mutation in list_mutations(netlist):
        buggy = apply_mutation(netlist, mutation)
        for a in range(4):
            for b in range(16):
                if simulate_words(buggy, {"a": a, "b": b}) != a * b:
                    return buggy
    raise AssertionError("no observable mutation found")


@pytest.mark.parametrize("architecture", CATALOG_4BIT)
def test_verdict_parity_grid_on_injected_bug(service, architecture):
    """SAT, BDD and MT must agree on buggy circuits at 4 bit."""
    buggy = _observable_bug(generate_multiplier(architecture, 4))
    verdicts = {}
    for method in backend_names():
        report = service.submit(VerificationRequest.from_netlist(
            buggy, method=method, budgets=service.budgets))
        verdicts[method] = report.verdict
    assert set(verdicts.values()) == {"refuted"}, verdicts


def test_deprecation_shim_pins_old_kwargs_to_new_pipeline(service):
    """`verify(**kwargs)` must reproduce the service pipeline's results."""
    netlist = generate_multiplier("SP-CT-BK", 4)
    with pytest.warns(DeprecationWarning, match="budget keyword arguments"):
        old = verify(netlist, method="mt-lr", monomial_budget=100_000,
                     time_budget_s=60.0, vanishing_cache_limit=4096,
                     counterexample_tries=16, seed=7)
    new = service.submit(VerificationRequest.from_netlist(
        netlist, method="mt-lr",
        budgets=Budgets(monomial_budget=100_000, time_budget_s=60.0,
                        vanishing_cache_limit=4096, counterexample_tries=16),
        seed=7))
    assert new.verdict == "verified"
    assert old.verified is True
    fresh = VerificationReport.from_result(old, circuit="SP-CT-BK", width=4)

    def deterministic(counters):
        return {k: v for k, v in counters.items()
                if not k.endswith("_time_s")}

    assert deterministic(fresh.counters) == deterministic(new.counters)
    assert fresh.verdict == new.verdict
    # The shim also accepts a ready Budgets object directly.
    via_budgets = verify(netlist, method="mt-lr",
                         budgets=Budgets(monomial_budget=100_000))
    assert via_budgets.verified is True
    assert (via_budgets.cancelled_vanishing_monomials
            == old.cancelled_vanishing_monomials)


_TIMING_KEYS = ("time", "time_s", "reduction_time_s", "rewrite_time_s",
                "conflicts", "decisions")


def _stable(row: dict) -> dict:
    """A row with the run-to-run-varying timing fields masked out."""
    return {key: ("*" if key in _TIMING_KEYS else value)
            for key, value in row.items()}


def test_run_batch_matches_parallel_runner_rows(service):
    architectures = ["SP-AR-RC", "SP-WT-CL"]
    methods = ["mt-lr", "sat-cec", "bdd-cec"]
    reports = service.run_grid(architectures, [3], methods)
    config = service._experiment_config(service.budgets)
    runner = ParallelRunner(config, workers=1)
    rows = runner.run(ParallelRunner.catalog(architectures, [3], methods))
    assert [_stable(report.to_row()) for report in reports] == [
        _stable(row) for row in rows]
    assert service.last_executed == len(rows)


def test_run_batch_parallel_matches_serial(service):
    requests = [VerificationRequest.from_architecture(
                    arch, 3, method, budgets=service.budgets,
                    find_counterexample=False)
                for arch in ("SP-AR-RC", "SP-CT-BK")
                for method in ("mt-lr", "mt-fo")]
    serial = service.run_batch(requests, jobs=1)
    parallel = service.run_batch(requests, jobs=2)
    assert [_stable(r.to_row()) for r in serial] == [
        _stable(r.to_row()) for r in parallel]


def test_run_batch_mixes_pooled_and_inprocess_requests(service):
    netlist = generate_multiplier("SP-AR-RC", 3)
    requests = [
        VerificationRequest.from_architecture("SP-WT-CL", 3,
                                              budgets=service.budgets,
                                              find_counterexample=False),
        VerificationRequest.from_netlist(netlist, budgets=service.budgets),
    ]
    reports = service.run_batch(requests)
    assert [r.verdict for r in reports] == ["verified", "verified"]
    assert reports[0].circuit == "SP-WT-CL"
    assert reports[1].circuit == netlist.name


def test_run_batch_honours_per_request_budget_groups(service):
    """Pooled requests carry their own budgets job-by-job (ISSUE 5)."""
    requests = [
        VerificationRequest.from_architecture(
            "SP-AR-RC", 3, "mt-lr", budgets=service.budgets,
            find_counterexample=False),
        # A 50-monomial budget that provably trips on the naive GB.
        VerificationRequest.from_architecture(
            "SP-WT-CL", 3, "mt-naive", budgets=Budgets(monomial_budget=50),
            find_counterexample=False),
        VerificationRequest.from_architecture(
            "SP-CT-BK", 3, "mt-fo",
            budgets=Budgets(monomial_budget=100_000, time_budget_s=30.0),
            find_counterexample=False),
    ]
    reports = service.run_batch(requests)
    assert [report.verdict for report in reports] == \
        ["verified", "budget", "verified"]
    # Budget groups survive the worker pool, and each pooled report agrees
    # with an in-process submit under the same request budgets.
    parallel = service.run_batch(requests, jobs=2)
    assert [_stable(r.to_row()) for r in parallel] == \
        [_stable(r.to_row()) for r in reports]
    tripped = service.submit(requests[1])
    assert tripped.verdict == "budget"
    assert tripped.reason == reports[1].reason


def test_run_batch_budget_groups_do_not_share_cache_entries(tmp_path):
    """Same job under different budgets must key different cache rows."""
    service = VerificationService(cache_dir=tmp_path)
    tight = VerificationRequest.from_architecture(
        "SP-WT-CL", 3, "mt-naive", budgets=Budgets(monomial_budget=50),
        find_counterexample=False)
    loose = VerificationRequest.from_architecture(
        "SP-WT-CL", 3, "mt-naive", find_counterexample=False)
    [first] = service.run_batch([tight])
    assert first.verdict == "budget"
    [second] = service.run_batch([loose])
    assert service.last_executed == 1          # no stale budget-trip hit
    assert second.verdict == "verified"
    [replayed] = service.run_batch([tight])
    assert service.last_cache_hits == 1
    assert replayed.to_json() == first.to_json()


def test_run_batch_uses_result_cache(tmp_path):
    service = VerificationService(cache_dir=tmp_path)
    requests = [VerificationRequest.from_architecture(
        "SP-AR-RC", 3, find_counterexample=False)]
    first = service.run_batch(requests)
    assert service.last_executed == 1
    second = service.run_batch(requests)
    assert service.last_cache_hits == 1
    assert service.last_executed == 0
    assert [r.to_row() for r in first] == [r.to_row() for r in second]


def test_experiment_config_maps_budgets_verbatim(monkeypatch):
    """run_batch must obey the same budget semantics as submit: None means
    disabled, and REPRO_BENCH_* environment overrides do not sneak in."""
    monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "7")
    monkeypatch.setenv("REPRO_BENCH_MONOMIAL_BUDGET", "123")
    service = VerificationService()          # default Budgets: no time guard
    config = service._experiment_config(service.budgets)
    assert config.time_budget_s is None
    assert config.monomial_budget == service.budgets.monomial_budget
    assert config.sat_conflict_budget == service.budgets.sat_conflict_budget
    assert config.bdd_node_budget == service.budgets.bdd_node_budget
    capped = service._experiment_config(Budgets(vanishing_cache_limit=64))
    assert capped.vanishing_cache_limit == 64
    assert Budgets.from_config(capped).vanishing_cache_limit == 64


def test_run_batch_honours_non_default_request_knobs(service):
    """xor_and_only / seed / counterexample requests must not be silently
    pooled with default semantics — batch and submit must agree."""
    request = VerificationRequest.from_architecture(
        "SP-AR-RC", 3, method="mt-lr", budgets=service.budgets,
        xor_and_only=True, find_counterexample=False)
    [batched] = service.run_batch([request])
    direct = service.submit(request)
    assert service.last_executed == 0        # routed in-process, not pooled
    assert batched.counters["cancelled_vanishing_monomials"] == \
        direct.counters["cancelled_vanishing_monomials"]


def test_unknown_algebraic_plugin_fails_loudly_not_as_mt_xor():
    """A plug-in algebraic backend without an engine scheme must not be
    silently dispatched through the XOR-rewriting branch."""
    from repro.api.registry import BackendSpec, register, unregister

    register(BackendSpec(name="mt-plugin", kind="algebraic",
                         description="test plug-in", cost_rank=9))
    try:
        with pytest.raises(VerificationError, match="rewriting scheme"):
            VerificationService().submit(VerificationRequest.from_architecture(
                "SP-AR-RC", 3, method="mt-plugin"))
    finally:
        unregister("mt-plugin")


def test_custom_backend_method_name_propagates():
    """A second sat-kind backend must not be mislabelled as sat-cec."""
    from repro.api.registry import BackendSpec, register, unregister

    register(BackendSpec(name="sat-custom", kind="sat",
                         description="test plug-in", cost_rank=9))
    try:
        service = VerificationService()
        report = service.submit(VerificationRequest.from_architecture(
            "SP-AR-RC", 3, method="sat-custom"))
        assert report.method == "sat-custom"
        assert report.verdict == "verified"

        from repro.experiments.runner import VerificationJob, run_job
        config = service._experiment_config(service.budgets)
        row = run_job(VerificationJob("SP-AR-RC", 3, "sat-custom"), config)
        assert row["method"] == "sat-custom"
    finally:
        unregister("sat-custom")


def test_baselines_reject_non_multiplier_specifications(service):
    with pytest.raises(VerificationError, match="multiplier"):
        service.submit(VerificationRequest.from_architecture(
            "KS", 4, method="sat-cec", circuit_kind="adder",
            budgets=service.budgets))


def test_adder_verification_through_the_service(service):
    report = service.submit(VerificationRequest.from_architecture(
        "KS", 5, method="mt-lr", circuit_kind="adder",
        budgets=service.budgets))
    assert report.verdict == "verified"
    assert "adder" in (report.specification or "")
