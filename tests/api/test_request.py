"""Tests of typed requests and the unified budget bundle."""

from __future__ import annotations

import pytest

from repro.api.request import Budgets, VerificationRequest
from repro.circuit.verilog import write_verilog
from repro.errors import VerificationError
from repro.experiments.runner import ExperimentConfig
from repro.generators.multipliers import generate_multiplier


def test_budgets_defaults_match_historical_entrypoint_defaults():
    budgets = Budgets()
    assert budgets.monomial_budget == 2_000_000
    assert budgets.time_budget_s is None
    assert budgets.sat_conflict_budget == 200_000
    assert budgets.bdd_node_budget == 1_000_000
    assert budgets.vanishing_cache_limit is None
    assert budgets.counterexample_tries == 4096
    assert budgets.task_timeout_s is None


def test_budgets_replace_and_from_config():
    assert Budgets().replace(monomial_budget=7).monomial_budget == 7
    config = ExperimentConfig(monomial_budget=123, time_budget_s=4.5,
                              sat_conflict_budget=9, bdd_node_budget=10)
    budgets = Budgets.from_config(config, task_timeout_s=2.0)
    assert budgets.monomial_budget == 123
    assert budgets.time_budget_s == 4.5
    assert budgets.sat_conflict_budget == 9
    assert budgets.bdd_node_budget == 10
    assert budgets.task_timeout_s == 2.0


def test_exactly_one_circuit_source_required():
    with pytest.raises(VerificationError, match="exactly one circuit source"):
        VerificationRequest(method="mt-lr")
    with pytest.raises(VerificationError, match="exactly one circuit source"):
        VerificationRequest(architecture="SP-AR-RC", width=4,
                            verilog_text="module m; endmodule")
    with pytest.raises(VerificationError, match="operand width"):
        VerificationRequest(architecture="SP-AR-RC")


def test_unknown_method_and_kind_fail_fast():
    with pytest.raises(VerificationError, match="unknown method"):
        VerificationRequest.from_architecture("SP-AR-RC", 4, method="mt-bogus")
    with pytest.raises(VerificationError, match="circuit kind"):
        VerificationRequest.from_architecture("SP-AR-RC", 4,
                                              circuit_kind="divider")


def test_resolution_of_all_three_sources(tmp_path):
    netlist = generate_multiplier("SP-AR-RC", 3)
    from_netlist = VerificationRequest.from_netlist(netlist)
    assert from_netlist.resolve_netlist() is netlist

    from_arch = VerificationRequest.from_architecture("SP-AR-RC", 3)
    assert from_arch.resolve_netlist().name == netlist.name

    text = write_verilog(netlist)
    from_text = VerificationRequest.from_verilog(text=text)
    assert sorted(from_text.resolve_netlist().inputs) == sorted(netlist.inputs)
    path = tmp_path / "mult.v"
    path.write_text(text, encoding="utf-8")
    from_path = VerificationRequest.from_verilog(path=path)
    assert sorted(from_path.resolve_netlist().outputs) == sorted(netlist.outputs)


def test_adder_requests_resolve_through_the_adder_generator():
    request = VerificationRequest.from_architecture("KS", 4,
                                                    circuit_kind="adder")
    netlist = request.resolve_netlist()
    assert netlist.input_word("a")
    assert request.resolve_specification() == "adder"


def test_display_name_prefers_architecture_then_module():
    netlist = generate_multiplier("SP-AR-RC", 3)
    assert VerificationRequest.from_architecture(
        "SP-AR-RC", 3).display_name() == "SP-AR-RC"
    assert VerificationRequest.from_netlist(netlist).display_name() == netlist.name
    assert VerificationRequest.from_verilog(
        path="/tmp/foo.v").display_name() == "foo"
