"""Tests for the command-line interface."""


from repro.cli import build_parser, main
from repro.circuit.verilog import save_verilog
from repro.circuit.mutate import apply_mutation, list_mutations
from repro.generators.multipliers import generate_multiplier


def test_verify_command_on_correct_multiplier(capsys):
    assert main(["verify", "-a", "SP-WT-CL", "-w", "3"]) == 0
    out = capsys.readouterr().out
    assert "VERIFIED" in out
    assert "#P=" in out


def test_verify_command_on_adder(capsys):
    assert main(["verify", "--adder", "-a", "KS", "-w", "6"]) == 0
    assert "VERIFIED" in capsys.readouterr().out


def test_verify_command_detects_bug(tmp_path, capsys):
    netlist = generate_multiplier("SP-AR-RC", 3)
    buggy = apply_mutation(netlist, [m for m in list_mutations(netlist)
                                     if m.signal.startswith("pp")][0])
    path = tmp_path / "buggy.v"
    save_verilog(buggy, str(path))
    assert main(["verify-verilog", str(path), "--spec", "multiplier"]) == 2
    out = capsys.readouterr().out
    assert "MISMATCH" in out
    assert "counterexample" in out


def test_generate_command_writes_verilog(tmp_path, capsys):
    out_file = tmp_path / "mult.v"
    assert main(["generate", "-a", "BP-WT-CL", "-w", "4", "-o", str(out_file)]) == 0
    assert out_file.exists()
    text = out_file.read_text()
    assert "module BP_WT_CL_4x4" in text


def test_generate_command_prints_to_stdout(capsys):
    assert main(["generate", "-a", "SP-AR-RC", "-w", "2"]) == 0
    assert "module SP_AR_RC_2x2" in capsys.readouterr().out


def test_timeout_exit_code(capsys):
    code = main(["verify", "-a", "BP-RT-KS", "-w", "6", "--method", "mt-fo",
                 "--monomial-budget", "500", "--time-budget", "5"])
    assert code == 3


def test_error_exit_code_for_unknown_architecture(capsys):
    assert main(["verify", "-a", "XX-YY-ZZ", "-w", "4"]) == 1


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("verify", "verify-verilog", "generate", "table", "batch"):
        assert command in text


def test_batch_verdicts_identical_serial_vs_parallel(capsys):
    """--jobs must not change the verdict output in any byte."""
    args = ["batch", "-a", "SP-AR-RC,SP-WT-CL,SP-CT-BK", "-w", "3",
            "-m", "mt-lr,mt-fo"]
    assert main(args + ["--jobs", "1"]) == 0
    serial_output = capsys.readouterr().out
    assert main(args + ["--jobs", "2"]) == 0
    parallel_output = capsys.readouterr().out
    assert serial_output == parallel_output
    assert "summary: pass=6" in serial_output


def test_batch_writes_json_results(tmp_path, capsys):
    out_file = tmp_path / "rows.json"
    assert main(["batch", "-a", "SP-AR-RC", "-w", "3", "-m", "mt-lr",
                 "-o", str(out_file)]) == 0
    import json
    rows = json.loads(out_file.read_text())
    assert rows[0]["architecture"] == "SP-AR-RC"
    assert rows[0]["verified"] is True
    assert "time_s" in rows[0]


def test_batch_rejects_unknown_method(capsys):
    assert main(["batch", "-a", "SP-AR-RC", "-w", "3", "-m", "bogus"]) == 1
    assert "unknown method" in capsys.readouterr().err


def test_verify_stats_surfaces_engine_and_vanishing_counters(capsys):
    assert main(["verify", "-a", "SP-AR-RC", "-w", "4", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "rewrite[xor-rewriting]:" in out
    assert "vanishing-cache[xor-rewriting]:" in out
    assert "hits=" in out and "misses=" in out and "size=" in out
    assert "witness-hits=" in out
    assert "batches=" in out and "batched-steps=" in out
    assert "reduction: substitutions=" in out


def test_verify_vanishing_cache_limit_flag(capsys):
    assert main(["verify", "-a", "SP-AR-RC", "-w", "4", "--stats",
                 "--vanishing-cache-limit", "4"]) == 0
    out = capsys.readouterr().out
    assert "VERIFIED" in out
    # A tiny cap forces at least one whole-cache reset, visible in --stats.
    assert "resets=0" not in out.split("vanishing-cache", 1)[1].splitlines()[0]
