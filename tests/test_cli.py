"""Tests for the command-line interface."""


from repro.cli import build_parser, main
from repro.circuit.verilog import save_verilog
from repro.circuit.mutate import apply_mutation, list_mutations
from repro.generators.multipliers import generate_multiplier


def test_verify_command_on_correct_multiplier(capsys):
    assert main(["verify", "-a", "SP-WT-CL", "-w", "3"]) == 0
    out = capsys.readouterr().out
    assert "VERIFIED" in out
    assert "#P=" in out


def test_verify_command_on_adder(capsys):
    assert main(["verify", "--adder", "-a", "KS", "-w", "6"]) == 0
    assert "VERIFIED" in capsys.readouterr().out


def test_verify_command_detects_bug(tmp_path, capsys):
    netlist = generate_multiplier("SP-AR-RC", 3)
    buggy = apply_mutation(netlist, [m for m in list_mutations(netlist)
                                     if m.signal.startswith("pp")][0])
    path = tmp_path / "buggy.v"
    save_verilog(buggy, str(path))
    assert main(["verify-verilog", str(path), "--spec", "multiplier"]) == 2
    out = capsys.readouterr().out
    assert "MISMATCH" in out
    assert "counterexample" in out


def test_generate_command_writes_verilog(tmp_path, capsys):
    out_file = tmp_path / "mult.v"
    assert main(["generate", "-a", "BP-WT-CL", "-w", "4", "-o", str(out_file)]) == 0
    assert out_file.exists()
    text = out_file.read_text()
    assert "module BP_WT_CL_4x4" in text


def test_generate_command_prints_to_stdout(capsys):
    assert main(["generate", "-a", "SP-AR-RC", "-w", "2"]) == 0
    assert "module SP_AR_RC_2x2" in capsys.readouterr().out


def test_timeout_exit_code(capsys):
    code = main(["verify", "-a", "BP-RT-KS", "-w", "6", "--method", "mt-fo",
                 "--monomial-budget", "500", "--time-budget", "5"])
    assert code == 3


def test_error_exit_code_for_unknown_architecture(capsys):
    assert main(["verify", "-a", "XX-YY-ZZ", "-w", "4"]) == 1


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("verify", "verify-verilog", "check-certificate",
                    "generate", "table", "batch"):
        assert command in text


def test_batch_verdicts_identical_serial_vs_parallel(capsys):
    """--jobs must not change the verdict output in any byte."""
    args = ["batch", "-a", "SP-AR-RC,SP-WT-CL,SP-CT-BK", "-w", "3",
            "-m", "mt-lr,mt-fo"]
    assert main(args + ["--jobs", "1"]) == 0
    serial_output = capsys.readouterr().out
    assert main(args + ["--jobs", "2"]) == 0
    parallel_output = capsys.readouterr().out
    assert serial_output == parallel_output
    assert "summary: pass=6" in serial_output


def test_batch_writes_json_results(tmp_path, capsys):
    out_file = tmp_path / "rows.json"
    assert main(["batch", "-a", "SP-AR-RC", "-w", "3", "-m", "mt-lr",
                 "-o", str(out_file)]) == 0
    import json
    rows = json.loads(out_file.read_text())
    assert rows[0]["architecture"] == "SP-AR-RC"
    assert rows[0]["verified"] is True
    assert "time_s" in rows[0]


def test_batch_rejects_unknown_method(capsys):
    assert main(["batch", "-a", "SP-AR-RC", "-w", "3", "-m", "bogus"]) == 1
    assert "unknown method" in capsys.readouterr().err


def test_verify_stats_surfaces_engine_and_vanishing_counters(capsys):
    assert main(["verify", "-a", "SP-AR-RC", "-w", "4", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "rewrite[xor-rewriting]:" in out
    assert "vanishing-cache[xor-rewriting]:" in out
    assert "hits=" in out and "misses=" in out and "size=" in out
    assert "witness-hits=" in out
    assert "batches=" in out and "batched-steps=" in out
    assert "reduction: substitutions=" in out


def test_verify_json_emits_one_report_object(capsys):
    import json
    assert main(["verify", "-a", "SP-WT-CL", "-w", "3", "--json"]) == 0
    from repro.api.report import REPORT_SCHEMA
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == REPORT_SCHEMA
    assert report["verdict"] == "verified"
    assert report["method"] == "mt-lr"
    assert report["circuit"] == "SP-WT-CL"
    assert report["width"] == 3
    assert "counters" in report


def test_verify_json_budget_trip_exit_3(capsys):
    import json
    code = main(["verify", "-a", "BP-RT-KS", "-w", "6", "--method", "mt-fo",
                 "--monomial-budget", "500", "--json"])
    assert code == 3
    report = json.loads(capsys.readouterr().out)
    assert report["verdict"] == "budget"
    assert report["status"] == "TO"
    assert report["reason"]


def test_verify_verilog_json_and_refuted_exit_2(tmp_path, capsys):
    import json
    netlist = generate_multiplier("SP-AR-RC", 3)
    buggy = apply_mutation(netlist, [m for m in list_mutations(netlist)
                                     if m.signal.startswith("pp")][0])
    path = tmp_path / "buggy.v"
    save_verilog(buggy, str(path))
    assert main(["verify-verilog", str(path), "--json"]) == 2
    report = json.loads(capsys.readouterr().out)
    assert report["verdict"] == "refuted"
    assert report["counterexample"]
    assert report["remainder"]


def test_verify_sat_and_bdd_methods_through_the_cli(capsys):
    assert main(["verify", "-a", "SP-AR-RC", "-w", "3",
                 "--method", "sat-cec"]) == 0
    assert "VERIFIED" in capsys.readouterr().out
    assert main(["verify", "-a", "SP-AR-RC", "-w", "3",
                 "--method", "bdd-cec"]) == 0
    assert "VERIFIED" in capsys.readouterr().out


def test_batch_json_emits_one_line_per_row(capsys):
    import json
    assert main(["batch", "-a", "SP-AR-RC,SP-CT-BK", "-w", "3",
                 "-m", "mt-lr,sat-cec", "--json"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 4
    reports = [json.loads(line) for line in lines]
    assert all(report["verdict"] == "verified" for report in reports)
    assert [r["method"] for r in reports] == ["mt-lr", "sat-cec"] * 2


def test_batch_and_verify_share_the_report_schema(capsys):
    import json
    assert main(["verify", "-a", "SP-AR-RC", "-w", "3", "--json"]) == 0
    single = json.loads(capsys.readouterr().out)
    assert main(["batch", "-a", "SP-AR-RC", "-w", "3", "-m", "mt-lr",
                 "--json"]) == 0
    batch = json.loads(capsys.readouterr().out.strip())
    assert list(single) == list(batch)


def test_verify_vanishing_cache_limit_flag(capsys):
    assert main(["verify", "-a", "SP-AR-RC", "-w", "4", "--stats",
                 "--vanishing-cache-limit", "4"]) == 0
    out = capsys.readouterr().out
    assert "VERIFIED" in out
    # A tiny cap forces at least one whole-cache reset, visible in --stats.
    assert "resets=0" not in out.split("vanishing-cache", 1)[1].splitlines()[0]


def test_verify_certificate_flag_writes_checkable_proof(tmp_path, capsys):
    proof = tmp_path / "proof.json"
    assert main(["verify", "-a", "SP-AR-RC", "-w", "4",
                 "--certificate", str(proof)]) == 0
    assert proof.exists()
    assert main(["check-certificate", str(proof)]) == 0
    out = capsys.readouterr().out
    assert "valid verified" in out


def test_check_certificate_refutation_exit_2(tmp_path, capsys):
    netlist = generate_multiplier("SP-AR-RC", 4)
    buggy = apply_mutation(netlist, list_mutations(netlist)[5])
    path = tmp_path / "buggy.v"
    save_verilog(buggy, str(path))
    proof = tmp_path / "refuted.json"
    assert main(["verify-verilog", str(path),
                 "--certificate", str(proof)]) == 2
    assert main(["check-certificate", str(proof)]) == 2
    assert "valid refuted" in capsys.readouterr().out


def test_check_certificate_rejects_tampering_exit_1(tmp_path, capsys):
    import json
    proof = tmp_path / "proof.json"
    assert main(["verify", "-a", "SP-AR-RC", "-w", "3",
                 "--certificate", str(proof)]) == 0
    document = json.loads(proof.read_text())
    document["body"]["verdict"] = "refuted"
    proof.write_text(json.dumps(document))
    assert main(["check-certificate", str(proof)]) == 1
    assert "INVALID [hash]" in capsys.readouterr().err


def test_check_certificate_missing_file_exit_1(tmp_path, capsys):
    assert main(["check-certificate", str(tmp_path / "nope.json")]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_check_certificate_is_engine_free():
    """The checker's trusted base is the algebra primitive plus stdlib.

    ``repro/__init__`` eagerly re-exports the engine, so a runtime
    ``sys.modules`` probe cannot separate the checker from the package
    init; the enforceable invariant is the checker module's own import
    statements.
    """
    import ast
    import repro.certify.checker as checker
    tree = ast.parse(open(checker.__file__, encoding="utf-8").read())
    imported = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            imported |= {alias.name for alias in node.names}
        elif isinstance(node, ast.ImportFrom):
            imported.add(node.module)
    assert imported == {"__future__", "hashlib", "json",
                        "repro.algebra.polynomial", "repro.errors"}
