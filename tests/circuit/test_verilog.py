"""Tests for the structural-Verilog writer and reader."""

import pytest

from repro.circuit.simulate import exhaustive_check, simulate
from repro.circuit.verilog import (
    load_verilog,
    parse_verilog,
    save_verilog,
    write_verilog,
)
from repro.errors import CircuitError
from repro.generators.multipliers import generate_multiplier


def test_roundtrip_full_adder(paper_full_adder):
    text = write_verilog(paper_full_adder)
    assert "module paper_full_adder" in text
    parsed = parse_verilog(text)
    for a in (0, 1):
        for b in (0, 1):
            for cin in (0, 1):
                want = simulate(paper_full_adder, {"a": a, "b": b, "cin": cin})
                got = simulate(parsed, {"a": a, "b": b, "cin": cin})
                assert want["s"] == got["s"] and want["c"] == got["c"]


def test_roundtrip_generated_multiplier(tmp_path):
    netlist = generate_multiplier("SP-WT-CL", 3)
    path = tmp_path / "mult.v"
    save_verilog(netlist, str(path))
    loaded = load_verilog(str(path))
    ok, _ = exhaustive_check(loaded, lambda a, b: a * b, ["a", "b"], [3, 3])
    assert ok


def test_parse_vector_declarations_and_assigns():
    source = """
    module vec (a, b, y, z);
      input [1:0] a;
      input b;
      output y;
      output z;
      wire t;
      assign t = a[0] & a[1];
      assign y = t | b;
      assign z = ~b;
    endmodule
    """
    netlist = parse_verilog(source)
    assert set(netlist.inputs) == {"a0", "a1", "b"}
    values = simulate(netlist, {"a0": 1, "a1": 1, "b": 0})
    assert values["y"] == 1 and values["z"] == 1


def test_parse_constants_and_buffers():
    source = """
    module consts (a, y0, y1, y2);
      input a;
      output y0; output y1; output y2;
      assign y0 = 1'b0;
      assign y1 = 1'b1;
      assign y2 = a;
    endmodule
    """
    netlist = parse_verilog(source)
    values = simulate(netlist, {"a": 1})
    assert values["y0"] == 0 and values["y1"] == 1 and values["y2"] == 1


def test_parse_rejects_unknown_instantiation():
    source = """
    module bad (a, y);
      input a;
      output y;
      magic u1 (y, a);
    endmodule
    """
    with pytest.raises(CircuitError):
        parse_verilog(source)


def test_parse_requires_module_header():
    with pytest.raises(CircuitError):
        parse_verilog("assign y = a;")
