"""Tests for topological/level/fanout analyses."""

import pytest

from repro.circuit.analysis import (
    circuit_depth,
    fanout_counts,
    input_support,
    multi_fanout_signals,
    signal_levels,
    topological_signals,
    transitive_fanin,
)
from repro.circuit.gates import Gate, GateType
from repro.circuit.netlist import Netlist
from repro.errors import CircuitError


def test_topological_order_respects_dependencies(paper_full_adder):
    order = topological_signals(paper_full_adder)
    position = {signal: i for i, signal in enumerate(order)}
    for gate in paper_full_adder.gates():
        for source in gate.inputs:
            assert position[source] < position[gate.output]


def test_levels_of_full_adder(paper_full_adder):
    levels = signal_levels(paper_full_adder)
    assert levels["a"] == 0 and levels["cin"] == 0
    assert levels["x1"] == 1 and levels["x2"] == 1
    assert levels["s"] == 2 and levels["x4"] == 2
    assert levels["c"] == 3
    assert circuit_depth(paper_full_adder) == 3


def test_fanout_counts_and_multi_fanout(paper_full_adder):
    counts = fanout_counts(paper_full_adder)
    # x1 feeds the sum XOR and the AND gate.
    assert counts["x1"] == 2
    assert counts["x2"] == 1
    # outputs count as one extra reader
    assert counts["s"] == 1
    assert "x1" in multi_fanout_signals(paper_full_adder)
    assert "x2" not in multi_fanout_signals(paper_full_adder)


def test_transitive_fanin_and_input_support(paper_full_adder):
    cone = transitive_fanin(paper_full_adder, ["c"])
    assert {"a", "b", "cin", "x1", "x2", "x4", "c"} <= cone
    assert "s" not in cone
    assert input_support(paper_full_adder, "s") == {"a", "b", "cin"}


def test_cycle_detection_in_topological_sort():
    netlist = Netlist()
    netlist.add_input("a")
    netlist._gates["x"] = Gate(output="x", gate_type=GateType.AND, inputs=("a", "y"))
    netlist._gates["y"] = Gate(output="y", gate_type=GateType.NOT, inputs=("x",))
    with pytest.raises(CircuitError):
        topological_signals(netlist)
