"""Property tests: Verilog round-trips and fault-injection campaigns.

Two system-level guarantees of the interchange layer:

* ``parse_verilog(write_verilog(n))`` preserves *semantics* across the whole
  generator catalog — the round-tripped netlist simulates identically and
  produces the same verification verdict as the original;
* an ``inject_bug`` mutation that changes the circuit function is reported
  unverified with a counterexample that actually exhibits the bug on the
  gate level.
"""

from __future__ import annotations

import random

import pytest

from repro.circuit.mutate import inject_bug, list_mutations
from repro.circuit.simulate import simulate_words
from repro.circuit.verilog import parse_verilog, write_verilog
from repro.generators.catalog import architecture_names
from repro.generators.multipliers import generate_multiplier
from repro.verification.engine import verify_multiplier

WIDTH = 3
ALL_ARCHITECTURES = architecture_names()


def _product_mismatch(netlist, width: int) -> tuple[int, int] | None:
    """First (a, b) on which the netlist does not compute ``a * b``."""
    modulus = 1 << (2 * width)
    for a in range(1 << width):
        for b in range(1 << width):
            if simulate_words(netlist, {"a": a, "b": b}) != (a * b) % modulus:
                return a, b
    return None


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_roundtrip_preserves_simulation_semantics(architecture):
    original = generate_multiplier(architecture, WIDTH)
    recovered = parse_verilog(write_verilog(original))
    assert recovered.inputs == original.inputs
    assert recovered.outputs == original.outputs
    rng = random.Random(hash(architecture) & 0xFFFF)
    samples = [(rng.randrange(1 << WIDTH), rng.randrange(1 << WIDTH))
               for _ in range(16)] + [(0, 0), (7, 7)]
    for a, b in samples:
        expected = simulate_words(original, {"a": a, "b": b})
        assert simulate_words(recovered, {"a": a, "b": b}) == expected


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_roundtrip_preserves_verification_verdict(architecture):
    original = generate_multiplier(architecture, WIDTH)
    recovered = parse_verilog(write_verilog(original))
    result = verify_multiplier(recovered, method="mt-lr",
                               find_counterexample=False)
    reference = verify_multiplier(original, method="mt-lr",
                                  find_counterexample=False)
    assert reference.verified is True
    assert result.verified is True
    # The round-trip preserves gate structure, so the rewritten model and
    # the reduction behave identically, not just the verdict.
    assert (result.cancelled_vanishing_monomials
            == reference.cancelled_vanishing_monomials)
    assert (result.reduction_trace.substitutions
            == reference.reduction_trace.substitutions)


def test_roundtrip_of_buggy_netlist_stays_buggy():
    netlist, _ = inject_bug(generate_multiplier("SP-AR-RC", WIDTH), seed=3)
    recovered = parse_verilog(write_verilog(netlist))
    original_result = verify_multiplier(netlist, find_counterexample=False)
    recovered_result = verify_multiplier(recovered, find_counterexample=False)
    assert original_result.verified == recovered_result.verified


# ---------------------------------------------------------------------------
# Fault-injection campaign
# ---------------------------------------------------------------------------

CAMPAIGN = [(arch, seed)
            for arch in ("SP-AR-RC", "SP-WT-CL", "SP-CT-BK", "SP-DT-HC",
                         "BP-WT-CL", "BP-CT-KS")
            for seed in (0, 1, 2)]


@pytest.mark.parametrize("architecture,seed", CAMPAIGN)
def test_injected_bugs_are_reported_with_valid_counterexamples(
        architecture, seed):
    golden = generate_multiplier(architecture, WIDTH)
    buggy, mutation = inject_bug(golden, seed=seed)
    result = verify_multiplier(buggy, method="mt-lr",
                               find_counterexample=True)
    mismatch = _product_mismatch(buggy, WIDTH)
    if mismatch is None:
        # The mutation happened to be functionally benign (e.g. redundant
        # logic); soundness demands the verifier still proves the circuit.
        assert result.verified is True, (
            f"benign mutation ({mutation.describe()}) flagged as a bug")
        return
    assert result.verified is False, (
        f"undetected bug: {mutation.describe()}")
    assert result.counterexample is not None, (
        f"no counterexample for {mutation.describe()}")
    # The counterexample must exhibit the bug on the gate level.
    assignment = result.counterexample
    a = sum(assignment.get(f"a{i}", 0) << i for i in range(WIDTH))
    b = sum(assignment.get(f"b{i}", 0) << i for i in range(WIDTH))
    modulus = 1 << (2 * WIDTH)
    assert simulate_words(buggy, {"a": a, "b": b}) != (a * b) % modulus, (
        f"counterexample a={a} b={b} does not exhibit "
        f"{mutation.describe()}")


def test_campaign_covers_every_mutation_kind_on_one_circuit():
    """Exhaustive sweep on a small circuit: every detected-as-different
    mutation must be flagged; every flagged one must be genuinely different."""
    golden = generate_multiplier("SP-AR-RC", 2)
    for mutation in list_mutations(golden):
        from repro.circuit.mutate import apply_mutation
        buggy = apply_mutation(golden, mutation)
        result = verify_multiplier(buggy, method="mt-lr",
                                   find_counterexample=False)
        functionally_different = _product_mismatch(buggy, 2) is not None
        assert result.verified == (not functionally_different), (
            f"verdict {result.verified} disagrees with simulation for "
            f"{mutation.describe()}")
