"""Tests for bug injection."""

import pytest

from repro.circuit.mutate import Mutation, apply_mutation, inject_bug, list_mutations
from repro.circuit.gates import GateType
from repro.circuit.simulate import exhaustive_check
from repro.errors import CircuitError
from repro.generators.multipliers import generate_multiplier


def test_list_mutations_covers_every_gate(paper_full_adder):
    mutations = list_mutations(paper_full_adder)
    mutated_signals = {m.signal for m in mutations}
    assert mutated_signals == {"x1", "x2", "s", "x4", "c"}
    assert all(m.original is not m.mutated for m in mutations)


def test_apply_mutation_changes_function(paper_full_adder):
    mutation = Mutation("x2", GateType.AND, GateType.OR)
    mutated = apply_mutation(paper_full_adder, mutation)
    assert mutated.gate_of("x2").gate_type is GateType.OR
    # The original netlist is untouched.
    assert paper_full_adder.gate_of("x2").gate_type is GateType.AND


def test_apply_mutation_validates_original_type(paper_full_adder):
    with pytest.raises(CircuitError):
        apply_mutation(paper_full_adder,
                       Mutation("x2", GateType.OR, GateType.AND))


def test_injected_bug_changes_multiplier_function():
    netlist = generate_multiplier("SP-AR-RC", 3)
    observable = 0
    for seed in range(8):
        buggy, mutation = inject_bug(netlist, seed=seed)
        assert mutation.describe()
        ok, counterexample = exhaustive_check(buggy, lambda a, b: a * b,
                                              ["a", "b"], [3, 3])
        if not ok:
            observable += 1
            assert counterexample is not None
    # The occasional mutation can be functionally masked (e.g. a gate feeding
    # a truncated carry), but the vast majority must change the function.
    assert observable >= 6


def test_inject_bug_is_deterministic():
    netlist = generate_multiplier("SP-AR-RC", 3)
    _, first = inject_bug(netlist, seed=3)
    _, second = inject_bug(netlist, seed=3)
    assert first == second
