"""Unit tests for the netlist container."""

import pytest

from repro.circuit.gates import Gate, GateType
from repro.circuit.netlist import Netlist
from repro.errors import CircuitError


def test_basic_construction_and_queries():
    netlist = Netlist("demo")
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    z = netlist.and_(a, b, "z")
    netlist.add_output(z)
    assert netlist.inputs == ["a", "b"]
    assert netlist.outputs == ["z"]
    assert netlist.num_gates == 1
    assert netlist.is_input("a") and not netlist.is_input("z")
    assert netlist.is_output("z")
    assert netlist.gate_of("z").gate_type is GateType.AND
    netlist.validate()


def test_duplicate_driver_rejected():
    netlist = Netlist()
    netlist.add_input("a")
    with pytest.raises(CircuitError):
        netlist.add_input("a")
    netlist.not_("a", "z")
    with pytest.raises(CircuitError):
        netlist.and_("a", "a", "z")


def test_fresh_signal_names_never_collide():
    netlist = Netlist()
    netlist.add_input("a")
    names = {netlist.not_("a") for _ in range(10)}
    assert len(names) == 10


def test_word_helpers_order_by_index():
    netlist = Netlist()
    word = netlist.add_input_word("a", 11)
    assert word[0] == "a0" and word[10] == "a10"
    assert netlist.input_word("a") == word
    for name in word:
        netlist.buf(name, f"s{word.index(name)}")
    netlist.add_output_word([f"s{i}" for i in range(11)])
    assert netlist.output_word("s")[10] == "s10"


def test_gate_trees():
    netlist = Netlist()
    inputs = netlist.add_input_word("x", 5)
    out = netlist.and_tree(inputs, "all")
    assert out == "all"
    netlist.add_output(out)
    netlist.validate()
    single = netlist.or_tree([inputs[0]], "just_one")
    assert netlist.gate_of(single).gate_type is GateType.BUF
    with pytest.raises(CircuitError):
        netlist.xor_tree([])


def test_validate_detects_undriven_signal():
    netlist = Netlist()
    netlist.add_input("a")
    netlist._gates["z"] = Gate(output="z", gate_type=GateType.AND,
                               inputs=("a", "ghost"))
    with pytest.raises(CircuitError):
        netlist.validate()


def test_validate_detects_combinational_loop():
    netlist = Netlist()
    netlist.add_input("a")
    netlist._gates["x"] = Gate(output="x", gate_type=GateType.AND, inputs=("a", "y"))
    netlist._gates["y"] = Gate(output="y", gate_type=GateType.AND, inputs=("a", "x"))
    with pytest.raises(CircuitError):
        netlist.validate()


def test_copy_is_independent():
    netlist = Netlist("original")
    netlist.add_input("a")
    netlist.not_("a", "z")
    netlist.add_output("z")
    clone = netlist.copy("clone")
    clone.buf("z", "extra")
    assert clone.num_gates == 2
    assert netlist.num_gates == 1


def test_replace_gate_checks_target():
    netlist = Netlist()
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.and_("a", "b", "z")
    netlist.replace_gate("z", Gate(output="z", gate_type=GateType.OR,
                                   inputs=("a", "b")))
    assert netlist.gate_of("z").gate_type is GateType.OR
    with pytest.raises(CircuitError):
        netlist.replace_gate("z", Gate(output="other", gate_type=GateType.OR,
                                       inputs=("a", "b")))
    with pytest.raises(CircuitError):
        netlist.replace_gate("a", Gate(output="a", gate_type=GateType.OR,
                                       inputs=("a", "b")))


def test_gate_type_histogram():
    netlist = Netlist()
    netlist.add_input("a")
    netlist.add_input("b")
    netlist.and_("a", "b")
    netlist.and_("a", "b")
    netlist.xor("a", "b")
    histogram = netlist.gate_type_histogram()
    assert histogram[GateType.AND] == 2
    assert histogram[GateType.XOR] == 1


def test_gate_arity_validation():
    with pytest.raises(CircuitError):
        Gate(output="z", gate_type=GateType.AND, inputs=("a",))
    with pytest.raises(CircuitError):
        Gate(output="z", gate_type=GateType.NOT, inputs=("a", "b"))
    with pytest.raises(CircuitError):
        Gate(output="z", gate_type=GateType.XOR, inputs=("a", "a"))
