"""Tests for bit-true netlist simulation."""

import pytest

from repro.circuit.gates import GateType, evaluate_gate
from repro.circuit.netlist import Netlist
from repro.circuit.simulate import (
    bits_to_word,
    exhaustive_check,
    simulate,
    simulate_words,
    word_to_bits,
)
from repro.errors import CircuitError


def test_evaluate_gate_truth_tables():
    assert evaluate_gate(GateType.AND, [1, 1]) == 1
    assert evaluate_gate(GateType.AND, [1, 0]) == 0
    assert evaluate_gate(GateType.NAND, [1, 1]) == 0
    assert evaluate_gate(GateType.OR, [0, 0]) == 0
    assert evaluate_gate(GateType.NOR, [0, 0]) == 1
    assert evaluate_gate(GateType.XOR, [1, 1, 1]) == 1
    assert evaluate_gate(GateType.XNOR, [1, 0]) == 0
    assert evaluate_gate(GateType.NOT, [0]) == 1
    assert evaluate_gate(GateType.BUF, [1]) == 1
    assert evaluate_gate(GateType.CONST0, []) == 0
    assert evaluate_gate(GateType.CONST1, []) == 1


def test_simulate_full_adder_truth_table(paper_full_adder):
    for a in (0, 1):
        for b in (0, 1):
            for cin in (0, 1):
                values = simulate(paper_full_adder, {"a": a, "b": b, "cin": cin})
                assert values["s"] + 2 * values["c"] == a + b + cin


def test_simulate_missing_input_raises(paper_full_adder):
    with pytest.raises(CircuitError):
        simulate(paper_full_adder, {"a": 1, "b": 0})


def test_word_bit_conversions_roundtrip():
    for value in (0, 1, 5, 127, 200):
        assert bits_to_word(word_to_bits(value, 8)) == value


def test_simulate_words_on_small_adder():
    netlist = Netlist("adder1")
    a = netlist.add_input_word("a", 1)
    b = netlist.add_input_word("b", 1)
    netlist.xor(a[0], b[0], "s0")
    netlist.and_(a[0], b[0], "s1")
    netlist.add_output("s0")
    netlist.add_output("s1")
    assert simulate_words(netlist, {"a": 1, "b": 1}) == 2
    assert simulate_words(netlist, {"a": 1, "b": 0}) == 1
    with pytest.raises(CircuitError):
        simulate_words(netlist, {"q": 1})


def test_exhaustive_check_detects_wrong_reference():
    netlist = Netlist("adder1")
    a = netlist.add_input_word("a", 1)
    b = netlist.add_input_word("b", 1)
    netlist.xor(a[0], b[0], "s0")
    netlist.and_(a[0], b[0], "s1")
    netlist.add_output("s0")
    netlist.add_output("s1")
    ok, _ = exhaustive_check(netlist, lambda x, y: x + y, ["a", "b"], [1, 1])
    assert ok
    bad, failing = exhaustive_check(netlist, lambda x, y: x * y, ["a", "b"], [1, 1])
    assert not bad
    assert failing is not None


def test_exhaustive_check_random_sampling_path():
    netlist = Netlist("wide_xor")
    a = netlist.add_input_word("a", 6)
    b = netlist.add_input_word("b", 6)
    for i in range(6):
        netlist.xor(a[i], b[i], f"s{i}")
        netlist.add_output(f"s{i}")
    ok, _ = exhaustive_check(netlist, lambda x, y: x ^ y, ["a", "b"], [6, 6],
                             max_vectors=64)
    assert ok
