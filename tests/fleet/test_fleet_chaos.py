"""Fleet chaos: kill a worker process mid-batch, the grid still lands.

The ISSUE 9 fleet-survival gate: two real ``repro-verify serve`` worker
*processes* (not threads — a SIGKILL must take the whole worker down the
way a crashed host would), a dispatcher scattering a 4-bit grid over
both, and one worker killed while the grid is in flight.  Every row must
still complete with the same verdicts as a local run, and the rows that
failed over must say so in their ``attempts`` history.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.api.request import VerificationRequest
from repro.api.service import VerificationService
from repro.fleet import FleetDispatcher, FleetTopology

from .test_dispatcher import stable

REPO_ROOT = Path(__file__).resolve().parents[2]

ARCHITECTURES = ("SP-AR-RC", "SP-AR-CL", "SP-WT-RC", "SP-WT-CL",
                 "SP-DT-KS", "BP-AR-RC", "BP-CT-BK")
METHODS = ("mt-lr", "sat-cec")


def _grid_requests() -> list[VerificationRequest]:
    return [VerificationRequest.from_architecture(
        architecture, 4, method, find_counterexample=False)
        for architecture in ARCHITECTURES for method in METHODS]


def _spawn_worker() -> tuple[subprocess.Popen, int]:
    """A real worker process on an ephemeral port, announced on stderr."""
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        cwd=REPO_ROOT, env=environment, text=True)
    announce = process.stderr.readline()
    match = re.search(r"http://[\d.]+:(\d+)", announce)
    if match is None:       # pragma: no cover - diagnostics on boot failure
        process.kill()
        raise AssertionError(f"worker did not announce a port: {announce!r}")
    return process, int(match.group(1))


def test_worker_killed_mid_batch_grid_still_completes():
    victim, victim_port = _spawn_worker()
    survivor, survivor_port = _spawn_worker()
    try:
        topology = FleetTopology.from_document({
            "workers": [
                {"name": "victim", "port": victim_port, "capacity": 2},
                {"name": "survivor", "port": survivor_port, "capacity": 2},
            ],
            "straggler_grace_s": 30.0,
            "max_attempts": 3,
        })
        requests = _grid_requests()
        dispatcher = FleetDispatcher(topology, request_timeout_s=60.0)
        reports: list = []

        def consume() -> None:
            reports.extend(dispatcher.run_batch(requests))

        consumer = threading.Thread(target=consume)
        consumer.start()
        # Wait until both workers are saturated (capacity 2 each), then
        # kill the victim while its requests are in flight — a hard
        # SIGKILL, as a crashed host would be.
        deadline = time.monotonic() + 60.0
        while len(dispatcher.dispatch_log) < 4:
            assert time.monotonic() < deadline, "fleet never saturated"
            time.sleep(0.001)
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)
        consumer.join(timeout=120.0)
        assert not consumer.is_alive()
        assert len(reports) == len(requests)

        # Every row landed with the local verdicts — no silent gaps.
        local = VerificationService().run_batch(_grid_requests())
        assert [stable(report) for report in reports] == \
            [stable(report) for report in local]
        assert all(report.verdict == "verified" for report in reports)

        # The victim took dispatches before dying, and at least one of
        # its rows failed over with an honest attempts history.
        dispatched_to = {name for _, _, name in dispatcher.dispatch_log}
        assert dispatched_to == {"victim", "survivor"}
        failed_over = [report for report in reports if report.attempts]
        assert failed_over, "no re-dispatch was recorded in attempts"
        for report in failed_over:
            crashes = [entry for entry in report.attempts
                       if entry["outcome"] == "crash"]
            assert crashes
            assert any("victim" in (entry["reason"] or "")
                       for entry in crashes)
            assert report.attempts[-1]["outcome"] == "verified"
        assert dispatcher.last_retries >= len(failed_over)
    finally:
        for process in (victim, survivor):
            if process.poll() is None:
                process.terminate()
                process.wait(timeout=30)
