"""Fleet topology parsing and validation.

The topology document is the fleet's public configuration surface
(``batch --fleet CONFIG`` / ``serve --fleet CONFIG``), so its contract
— defaults, unknown-key rejection, type checks, allowlist validation
against the registry, and the three loaders (document / file /
``REPRO_FLEET``) — is pinned here.
"""

from __future__ import annotations

import json

import pytest

from repro.api.registry import backend_names
from repro.errors import VerificationError
from repro.fleet import FleetTopology, WorkerSpec


def test_minimal_document_gets_defaults():
    topology = FleetTopology.from_document({"workers": [{}]})
    worker = topology.workers[0]
    assert worker == WorkerSpec(name="worker-0", host="127.0.0.1",
                                port=8585, capacity=1, backends=())
    assert worker.url == "http://127.0.0.1:8585"
    assert topology.straggler_grace_s is None
    assert topology.max_attempts == 3
    assert topology.cache_dir is None
    assert topology.shared_cache is None


def test_full_document_round_trips():
    topology = FleetTopology.from_document({
        "workers": [
            {"name": "a", "host": "10.0.0.1", "port": 9000, "capacity": 4},
            {"name": "b", "port": 9001, "backends": ["sat-cec"]},
        ],
        "straggler_grace_s": 2.5,
        "max_attempts": 5,
        "cache_dir": "/tmp/fleet-cache",
        "shared_cache": "http://10.0.0.1:9000",
    })
    assert [worker.name for worker in topology.workers] == ["a", "b"]
    assert topology.workers[0].capacity == 4
    assert topology.workers[1].backends == ("sat-cec",)
    assert topology.straggler_grace_s == 2.5
    assert topology.max_attempts == 5


def test_allowlist_routing_helpers():
    topology = FleetTopology.from_document({"workers": [
        {"name": "generalist"},
        {"name": "sat-box", "port": 9001, "backends": ["sat-cec", "bdd-cec"]},
    ]})
    assert topology.workers[0].supports("mt-lr")
    assert not topology.workers[1].supports("mt-lr")
    assert [worker.name for worker in topology.workers_for("sat-cec")] == \
        ["generalist", "sat-box"]
    assert [worker.name for worker in topology.workers_for("mt-lr")] == \
        ["generalist"]


@pytest.mark.parametrize("document, fragment", [
    ([], "JSON object"),
    ({}, "non-empty 'workers'"),
    ({"workers": []}, "non-empty 'workers'"),
    ({"workers": [{}], "bogus": 1}, "unknown fleet topology field"),
    ({"workers": ["w"]}, "must be a JSON object"),
    ({"workers": [{"bogus": 1}]}, "unknown fleet worker field"),
    ({"workers": [{"name": 3}]}, "must be strings"),
    ({"workers": [{"port": 0}]}, "TCP port"),
    ({"workers": [{"port": True}]}, "TCP port"),
    ({"workers": [{"port": 99999}]}, "TCP port"),
    ({"workers": [{"capacity": 0}]}, "positive"),
    ({"workers": [{"backends": "sat-cec"}]}, "array of"),
    ({"workers": [{"backends": ["no-such"]}]}, "unknown backend"),
    ({"workers": [{}], "straggler_grace_s": "fast"}, "number or null"),
    ({"workers": [{}], "straggler_grace_s": 0}, "must be > 0"),
    ({"workers": [{}], "max_attempts": 0.5}, "integer"),
    ({"workers": [{}], "max_attempts": 0}, ">= 1"),
    ({"workers": [{}], "cache_dir": 7}, "string"),
    ({"workers": [{}], "shared_cache": 7}, "URL string"),
    ({"workers": [{"name": "twin"}, {"name": "twin"}]}, "unique"),
], ids=lambda value: str(value)[:60])
def test_invalid_documents_are_rejected(document, fragment):
    with pytest.raises(VerificationError, match=fragment):
        FleetTopology.from_document(document)


def test_allowlists_are_validated_against_the_registry():
    # The error names the registered backends so a typo is self-repairing.
    with pytest.raises(VerificationError) as info:
        FleetTopology.from_document(
            {"workers": [{"backends": ["mt-lr", "bdd"]}]})
    assert "bdd" in str(info.value)
    assert list(backend_names())[0] in str(info.value)


def test_from_json_and_from_file(tmp_path):
    document = {"workers": [{"name": "w", "port": 9000}]}
    assert FleetTopology.from_json(json.dumps(document)).workers[0].port \
        == 9000
    path = tmp_path / "fleet.json"
    path.write_text(json.dumps(document), encoding="utf-8")
    assert FleetTopology.from_file(path).workers[0].name == "w"
    with pytest.raises(VerificationError, match="not valid JSON"):
        FleetTopology.from_json("{nope")
    with pytest.raises(VerificationError, match="cannot read"):
        FleetTopology.from_file(tmp_path / "missing.json")


def test_from_environment(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_FLEET", raising=False)
    assert FleetTopology.from_environment() is None
    monkeypatch.setenv("REPRO_FLEET",
                       '{"workers": [{"name": "inline", "port": 9000}]}')
    assert FleetTopology.from_environment().workers[0].name == "inline"
    path = tmp_path / "fleet.json"
    path.write_text('{"workers": [{"name": "from-file"}]}', encoding="utf-8")
    monkeypatch.setenv("REPRO_FLEET", str(path))
    assert FleetTopology.from_environment().workers[0].name == "from-file"
