"""FleetDispatcher against real in-process worker servers.

Two :class:`ServerThread` workers on ephemeral ports back these tests;
the dispatcher drives them over real sockets.  Pins the subsystem's
core contracts: report byte-parity with the in-process service (modulo
timings and ``attempts``), longest-expected-first placement over both
workers, backend-allowlist routing, the coordinator-side shared result
cache, tolerance of workers that are down at start, retry failover with
an honest ``attempts`` history, and the ``/v1/version`` mixed-schema
refusal.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api.request import VerificationRequest
from repro.api.service import VerificationService
from repro.errors import VerificationError
from repro.fleet import FleetDispatcher, FleetTopology, wire_document
from repro.generators.multipliers import generate_multiplier
from repro.server import ServerThread, VerificationClient, \
    VerificationServerApp
from repro.server.app import _json_response
from repro.server.client import ServerError

GRID = [("SP-AR-RC", 4, "mt-lr"), ("SP-AR-RC", 4, "sat-cec"),
        ("SP-WT-CL", 4, "mt-lr"), ("SP-WT-CL", 4, "sat-cec"),
        ("BP-CT-BK", 4, "mt-lr"), ("BP-CT-BK", 4, "sat-cec"),
        ("SP-DT-KS", 3, "mt-fo"), ("SP-AR-RC", 3, "bdd-cec")]

_TIMING_KEYS = ("time", "time_s", "attempts")
_TIMING_COUNTERS = ("conflicts", "decisions")


def stable(report) -> dict:
    """A report dict with the run-to-run-varying fields masked."""
    document = report.to_dict()
    for key in _TIMING_KEYS:
        document[key] = "*"
    document["counters"] = {
        key: ("*" if key.endswith("time_s") or key in _TIMING_COUNTERS
              else value)
        for key, value in (document.get("counters") or {}).items()}
    return document


def requests_for(grid):
    return [VerificationRequest.from_architecture(
        architecture, width, method, find_counterexample=False)
        for architecture, width, method in grid]


@pytest.fixture(scope="module")
def workers():
    with ServerThread(VerificationServerApp()) as one:
        with ServerThread(VerificationServerApp()) as two:
            yield one, two


def topology_for(workers, **extra) -> FleetTopology:
    return FleetTopology.from_document({
        "workers": [{"name": f"w{index}", "port": worker.port}
                    for index, worker in enumerate(workers)],
        **extra})


# -- parity --------------------------------------------------------------------

def test_fleet_batch_matches_local_run_batch(workers):
    requests = requests_for(GRID)
    dispatcher = FleetDispatcher(topology_for(workers))
    fleet = dispatcher.run_batch(requests)
    local = VerificationService().run_batch(requests_for(GRID))
    assert [stable(report) for report in fleet] == \
        [stable(report) for report in local]
    # Every row executed remotely, and both workers took dispatches.
    assert dispatcher.last_executed == len(GRID)
    assert dispatcher.last_cache_hits == 0
    assert {name for _, _, name in dispatcher.dispatch_log} == {"w0", "w1"}


def test_placement_is_longest_expected_first(workers):
    from repro.fleet import dispatch_cost

    requests = requests_for(GRID)
    dispatcher = FleetDispatcher(topology_for(workers))
    dispatcher.run_batch(requests)
    dispatched = [index for _, index, _ in dispatcher.dispatch_log]
    expected = sorted(range(len(requests)),
                      key=lambda i: dispatch_cost(requests[i]), reverse=True)
    assert dispatched == expected


def test_untransportable_requests_run_on_the_local_service(workers):
    netlist = generate_multiplier("SP-AR-RC", 3)
    request = VerificationRequest(netlist=netlist, method="mt-lr",
                                  find_counterexample=False)
    assert wire_document(request) is None
    dispatcher = FleetDispatcher(topology_for(workers))
    report = dispatcher.run_batch([request])[0]
    local = VerificationService().run_batch(
        [VerificationRequest(netlist=netlist, method="mt-lr",
                             find_counterexample=False)])[0]
    assert stable(report) == stable(local)
    assert dispatcher.dispatch_log == []        # nothing went over the wire


# -- allowlists ----------------------------------------------------------------

def test_backend_allowlists_route_dispatch(workers):
    topology = FleetTopology.from_document({"workers": [
        {"name": "mt-only", "port": workers[0].port,
         "backends": ["mt-lr", "mt-fo"]},
        {"name": "sat-only", "port": workers[1].port,
         "backends": ["sat-cec", "bdd-cec"]},
    ]})
    requests = requests_for(GRID)
    dispatcher = FleetDispatcher(topology)
    reports = dispatcher.run_batch(requests)
    assert [report.verdict for report in reports] == \
        ["verified"] * len(requests)
    for _, index, worker in dispatcher.dispatch_log:
        method = requests[index].method
        assert worker == ("mt-only" if method.startswith("mt") else "sat-only")


# -- shared result cache -------------------------------------------------------

def test_coordinator_cache_replays_without_executing(workers, tmp_path):
    topology = topology_for(workers, cache_dir=str(tmp_path / "cache"))
    first = FleetDispatcher(topology)
    originals = first.run_batch(requests_for(GRID))
    assert first.last_executed == len(GRID)

    replay = FleetDispatcher(topology)
    replayed = replay.run_batch(requests_for(GRID))
    assert replay.last_executed == 0
    assert replay.last_cache_hits == len(GRID)
    assert replay.dispatch_log == []
    # Replays are byte-identical to the executed originals — timings too,
    # because they are the *same* cached documents.
    assert [report.to_json() for report in replayed] == \
        [report.to_json() for report in originals]


# -- failure handling ----------------------------------------------------------

def _closed_port() -> int:
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_worker_down_at_start_is_tolerated(workers):
    topology = FleetTopology.from_document({"workers": [
        {"name": "alive", "port": workers[0].port},
        {"name": "dead", "port": _closed_port()},
    ]})
    dispatcher = FleetDispatcher(topology)
    reports = dispatcher.run_batch(requests_for(GRID[:4]))
    assert [report.verdict for report in reports] == ["verified"] * 4
    assert {name for _, _, name in dispatcher.dispatch_log} == {"alive"}
    assert "dead" not in dispatcher.worker_versions


def test_no_reachable_worker_is_an_error():
    topology = FleetTopology.from_document(
        {"workers": [{"name": "dead", "port": _closed_port()}]})
    with pytest.raises(VerificationError, match="no fleet worker is reachable"):
        FleetDispatcher(topology).run_batch(requests_for(GRID[:1]))


class _FlakyOnce:
    """Delegates to a real client, failing the first batch POST with a 503."""

    def __init__(self, client: VerificationClient) -> None:
        self.client = client
        self.failures = 0

    def version(self) -> dict:
        return self.client.version()

    def request_raw(self, method: str, path: str, document=None):
        if self.failures == 0:
            self.failures += 1
            return 503, json.dumps({"error": {
                "code": "worker_overloaded",
                "message": "injected transient failure"}}).encode("utf-8")
        return self.client.request_raw(method, path, document)


def test_transient_5xx_is_retried_and_recorded_in_attempts(workers):
    flaky: dict[str, _FlakyOnce] = {}

    def factory(worker):
        flaky[worker.name] = _FlakyOnce(
            VerificationClient(port=worker.port))
        return flaky[worker.name]

    dispatcher = FleetDispatcher(topology_for(workers[:1]),
                                 client_factory=factory)
    report = dispatcher.run_batch(requests_for(GRID[:1]))[0]
    assert report.verdict == "verified"
    assert dispatcher.last_retries == 1
    crash, final = report.attempts
    assert crash["outcome"] == "crash"
    assert "HTTP 503" in crash["reason"]
    assert final["kind"] == "retry"
    assert final["outcome"] == "verified"
    # The annotated report still matches a local run once attempts are masked.
    local = VerificationService().run_batch(requests_for(GRID[:1]))[0]
    assert stable(report) == stable(local)


def test_exhausted_retries_yield_an_honest_error_report(workers):
    class _AlwaysBusy(_FlakyOnce):
        def request_raw(self, method, path, document=None):
            self.failures += 1
            return 503, b'{"error":{"code":"busy","message":"always"}}'

    busy: dict[str, _AlwaysBusy] = {}

    def factory(worker):
        busy[worker.name] = _AlwaysBusy(VerificationClient(port=worker.port))
        return busy[worker.name]

    topology = topology_for(workers[:1], max_attempts=2)
    dispatcher = FleetDispatcher(topology, client_factory=factory)
    report = dispatcher.run_batch(requests_for(GRID[:1]))[0]
    assert report.status == "error"
    assert report.verdict == "error"
    assert "HTTP 503" in report.reason
    assert busy["w0"].failures == 2             # max_attempts, then give up
    assert [entry["outcome"] for entry in report.attempts] == \
        ["crash", "crash"]


def test_queued_jobs_resolve_when_every_worker_goes_down(workers):
    """A job dropped because its workers died must wake the consumer.

    One worker, capacity 1, two requests: the first dispatch marks the
    worker down (connection error), so the second — still queued — is
    resolved by the scheduler thread, not by any worker attempt.  The
    consumer blocked in ``take()`` must see that resolution instead of
    sleeping forever.
    """
    class _Dead:
        def __init__(self, client: VerificationClient) -> None:
            self.client = client

        def version(self) -> dict:
            return self.client.version()

        def request_raw(self, method, path, document=None):
            raise ServerError(0, "connection_error", "injected dead worker")

    dispatcher = FleetDispatcher(
        topology_for(workers[:1]),
        client_factory=lambda worker: _Dead(
            VerificationClient(port=worker.port)))
    reports: list = []
    consumer = threading.Thread(
        target=lambda: reports.extend(
            dispatcher.run_batch(requests_for(GRID[:2]))),
        daemon=True)
    consumer.start()
    consumer.join(timeout=30.0)
    assert not consumer.is_alive(), "consumer hung on a dropped queued job"
    assert [report.verdict for report in reports] == ["error", "error"]
    assert any("connection_error" in (report.reason or "")
               for report in reports)
    assert any("are down" in (report.reason or "") for report in reports)


def test_request_timeout_is_retried_without_marking_worker_down(workers):
    """One slow job must not remove a healthy worker from the fleet."""
    class _TimesOutOnce(_FlakyOnce):
        def request_raw(self, method, path, document=None):
            if self.failures == 0:
                self.failures += 1
                raise ServerError(0, "request_timeout",
                                  "POST /v1/batch: timed out")
            return self.client.request_raw(method, path, document)

    dispatcher = FleetDispatcher(
        topology_for(workers[:1]),
        client_factory=lambda worker: _TimesOutOnce(
            VerificationClient(port=worker.port)))
    report = dispatcher.run_batch(requests_for(GRID[:1]))[0]
    assert report.verdict == "verified"
    assert dispatcher.last_retries == 1
    # The worker stayed up: the retry was dispatched back to it.
    assert [name for _, _, name in dispatcher.dispatch_log] == ["w0", "w0"]
    crash, final = report.attempts
    assert crash["outcome"] == "crash"
    assert "request_timeout" in crash["reason"]
    assert final["outcome"] == "verified"


# -- work-stealing -------------------------------------------------------------

class _Gated:
    """Real client whose batch POSTs can block on an event or dawdle."""

    def __init__(self, client: VerificationClient,
                 gate: "threading.Event | None" = None,
                 delay: float = 0.0) -> None:
        self.client = client
        self.gate = gate
        self.delay = delay

    def version(self) -> dict:
        return self.client.version()

    def request_raw(self, method, path, document=None):
        if self.gate is not None:
            self.gate.wait(timeout=30.0)
        if self.delay:
            time.sleep(self.delay)
        return self.client.request_raw(method, path, document)


def test_steal_annotation_recorded_when_stolen_attempt_wins(workers):
    gate = threading.Event()

    def factory(worker):
        client = VerificationClient(port=worker.port)
        # w0 blocks until released; the steal to w1 runs through and wins.
        return _Gated(client, gate=gate if worker.name == "w0" else None)

    topology = topology_for(workers, straggler_grace_s=0.05)
    dispatcher = FleetDispatcher(topology, client_factory=factory)
    iterator = dispatcher.iter_batch(requests_for(GRID[:1]))
    report = next(iterator)
    gate.set()          # release the original; the epoch guard drops it
    assert list(iterator) == []
    assert report.verdict == "verified"
    assert dispatcher.last_steals == 1
    assert len(dispatcher.dispatch_log) == 2
    superseded, final = report.attempts
    assert superseded["attempt"] == 1
    assert superseded["outcome"] == "hard_timeout"
    assert "straggler re-dispatch" in superseded["reason"]
    assert final["attempt"] == 2
    assert final["outcome"] == "verified"


def test_no_steal_annotation_when_original_attempt_wins(workers):
    gate = threading.Event()

    def factory(worker):
        client = VerificationClient(port=worker.port)
        if worker.name == "w0":
            # Slow enough to trip the grace and trigger a steal, but the
            # steal target blocks — the original finishes first and wins.
            return _Gated(client, delay=0.5)
        return _Gated(client, gate=gate)

    topology = topology_for(workers, straggler_grace_s=0.05)
    dispatcher = FleetDispatcher(topology, client_factory=factory)
    iterator = dispatcher.iter_batch(requests_for(GRID[:1]))
    report = next(iterator)
    gate.set()          # release the losing stolen attempt
    assert list(iterator) == []
    assert report.verdict == "verified"
    assert dispatcher.last_steals == 1          # a steal was dispatched...
    assert len(dispatcher.dispatch_log) == 2
    # ...but the winner was never superseded, so its history stays clean.
    assert not report.attempts


# -- version handshake ---------------------------------------------------------

class _AncientSchemaApp(VerificationServerApp):
    def handle_version(self, body: bytes = b"") -> object:
        document = json.loads(
            super().handle_version(body).body.decode("utf-8"))
        document["report_schema"] = 1
        return _json_response(document)


def test_mixed_schema_fleet_is_refused(workers):
    with ServerThread(_AncientSchemaApp()) as ancient:
        topology = FleetTopology.from_document({"workers": [
            {"name": "modern", "port": workers[0].port},
            {"name": "ancient", "port": ancient.port},
        ]})
        with pytest.raises(VerificationError,
                           match="refusing mixed-schema") as info:
            FleetDispatcher(topology).run_batch(requests_for(GRID[:1]))
        assert "ancient" in str(info.value)
        assert "report_schema=1" in str(info.value)
