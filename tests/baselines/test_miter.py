"""Tests for miter construction and SAT-based equivalence checking."""

import pytest

from repro.baselines.sat.miter import build_miter, sat_equivalence_check
from repro.circuit.mutate import apply_mutation, list_mutations
from repro.circuit.netlist import Netlist
from repro.errors import SatError
from repro.generators.adders import generate_adder
from repro.generators.multipliers import generate_multiplier


def test_equivalent_multiplier_architectures():
    left = generate_multiplier("SP-WT-CL", 3)
    right = generate_multiplier("SP-AR-RC", 3)
    result = sat_equivalence_check(left, right)
    assert result.equivalent
    assert result.num_clauses > 0 and result.num_variables > 0


def test_different_circuits_produce_counterexample():
    golden = generate_multiplier("SP-AR-RC", 3)
    buggy = apply_mutation(golden, [m for m in list_mutations(golden)
                                    if m.signal.startswith("pp")][0])
    result = sat_equivalence_check(buggy, golden)
    assert result.status == "different"
    assert result.counterexample is not None
    assert set(result.counterexample) == set(golden.inputs)


def test_adder_equivalence_across_architectures():
    result = sat_equivalence_check(generate_adder("KS", 6), generate_adder("RC", 6))
    assert result.equivalent


def test_conflict_budget_reports_unknown():
    left = generate_multiplier("SP-WT-CL", 5)
    right = generate_multiplier("SP-CT-BK", 5)
    result = sat_equivalence_check(left, right, conflict_limit=5)
    assert result.timed_out
    assert not result.equivalent


def test_miter_requires_matching_interfaces():
    left = Netlist("l")
    left.add_input("a")
    left.buf("a", "y")
    left.add_output("y")
    right = Netlist("r")
    right.add_input("b")
    right.buf("b", "y")
    right.add_output("y")
    with pytest.raises(SatError):
        build_miter(left, right)
