"""Tests for the CDCL SAT solver."""

import itertools
import random


from repro.baselines.sat.cnf import CNF
from repro.baselines.sat.solver import CdclSolver, solve_cnf


def _cnf_from_clauses(num_vars, clauses):
    cnf = CNF()
    for _ in range(num_vars):
        cnf.new_variable()
    cnf.extend(clauses)
    return cnf


def _brute_force_sat(num_vars, clauses):
    for bits in itertools.product((False, True), repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if all(any((lit > 0) == assignment[abs(lit)] for lit in clause)
               for clause in clauses):
            return True
    return False


def test_trivially_satisfiable_and_unsatisfiable():
    sat = solve_cnf(_cnf_from_clauses(1, [(1,)]))
    assert sat.is_sat and sat.model[1] is True
    unsat = solve_cnf(_cnf_from_clauses(1, [(1,), (-1,)]))
    assert unsat.is_unsat


def test_empty_formula_is_satisfiable():
    assert solve_cnf(CNF()).is_sat


def test_unit_propagation_chain():
    clauses = [(1,), (-1, 2), (-2, 3), (-3, 4)]
    result = solve_cnf(_cnf_from_clauses(4, clauses))
    assert result.is_sat
    assert all(result.model[v] for v in (1, 2, 3, 4))


def test_pigeonhole_3_into_2_is_unsat():
    # Variables p_{i,j}: pigeon i in hole j (i in 0..2, j in 0..1).
    def var(i, j):
        return i * 2 + j + 1
    clauses = []
    for i in range(3):
        clauses.append((var(i, 0), var(i, 1)))
    for j in range(2):
        for i1 in range(3):
            for i2 in range(i1 + 1, 3):
                clauses.append((-var(i1, j), -var(i2, j)))
    result = solve_cnf(_cnf_from_clauses(6, clauses))
    assert result.is_unsat
    assert result.conflicts > 0


def test_model_satisfies_all_clauses_on_random_formulas():
    rng = random.Random(42)
    for trial in range(30):
        num_vars = rng.randint(3, 10)
        num_clauses = rng.randint(3, 30)
        clauses = []
        for _ in range(num_clauses):
            size = rng.randint(1, 3)
            clause = tuple(rng.choice([-1, 1]) * rng.randint(1, num_vars)
                           for _ in range(size))
            clauses.append(clause)
        result = solve_cnf(_cnf_from_clauses(num_vars, clauses))
        expected = _brute_force_sat(num_vars, clauses)
        assert result.is_sat == expected, (clauses, trial)
        if result.is_sat:
            assert all(any((lit > 0) == result.model[abs(lit)] for lit in clause)
                       for clause in clauses)


def test_assumptions_and_conflict_limit():
    cnf = _cnf_from_clauses(2, [(1, 2)])
    solver = CdclSolver(cnf)
    result = solver.solve(assumptions=[-1])
    assert result.is_sat and result.model[2] is True

    limited = CdclSolver(_cnf_from_clauses(1, [(1,), (-1,)]), conflict_limit=0)
    outcome = limited.solve()
    assert outcome.status in ("unsat", "unknown")
