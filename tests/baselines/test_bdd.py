"""Tests for the ROBDD package and BDD-based equivalence checking."""

import itertools

import pytest

from repro.baselines.bdd.bdd import BddManager
from repro.baselines.bdd.equivalence import bdd_equivalence_check
from repro.circuit.mutate import apply_mutation, list_mutations
from repro.errors import BddError
from repro.generators.adders import generate_adder
from repro.generators.multipliers import generate_multiplier


def test_terminal_nodes_and_variables():
    manager = BddManager(3)
    x = manager.variable(0)
    assert manager.level(x) == 0
    assert manager.low(x) == manager.FALSE
    assert manager.high(x) == manager.TRUE
    with pytest.raises(BddError):
        manager.variable(5)


def test_boolean_operations_match_truth_tables():
    manager = BddManager(2)
    x, y = manager.variable(0), manager.variable(1)
    table = {
        "and": (manager.and_(x, y), lambda a, b: a & b),
        "or": (manager.or_(x, y), lambda a, b: a | b),
        "xor": (manager.xor(x, y), lambda a, b: a ^ b),
    }
    for node, reference in table.values():
        for a, b in itertools.product((0, 1), repeat=2):
            assert manager.evaluate(node, {0: a, 1: b}) == bool(reference(a, b))
    assert manager.not_(manager.TRUE) == manager.FALSE


def test_reduction_rules_give_canonical_nodes():
    manager = BddManager(2)
    x = manager.variable(0)
    # x AND x == x, x OR NOT x == TRUE: canonicity means identical node ids.
    assert manager.and_(x, x) == x
    assert manager.or_(x, manager.not_(x)) == manager.TRUE
    assert manager.ite(x, manager.TRUE, manager.FALSE) == x


def test_satisfying_assignment():
    manager = BddManager(3)
    x, y, z = (manager.variable(i) for i in range(3))
    f = manager.and_(x, manager.and_(manager.not_(y), z))
    assignment = manager.satisfying_assignment(f)
    assert assignment == {0: 1, 1: 0, 2: 1}
    assert manager.satisfying_assignment(manager.FALSE) is None


def test_node_budget_enforced():
    manager = BddManager(8, node_budget=10)
    with pytest.raises(BddError):
        node = manager.FALSE
        for i in range(8):
            node = manager.xor(manager.variable(i), node)


def test_bdd_equivalence_on_adders_and_multipliers():
    assert bdd_equivalence_check(generate_adder("BK", 8), "add").equivalent
    assert bdd_equivalence_check(generate_multiplier("SP-WT-CL", 3),
                                 "multiply").equivalent


def test_bdd_detects_buggy_circuit():
    netlist = generate_multiplier("SP-AR-RC", 3)
    buggy = apply_mutation(netlist, [m for m in list_mutations(netlist)
                                     if m.signal.startswith("pp")][0])
    result = bdd_equivalence_check(buggy, "multiply")
    assert result.status == "different"
    assert result.failing_output is not None


def test_bdd_node_budget_reports_unknown():
    result = bdd_equivalence_check(generate_multiplier("SP-WT-CL", 6),
                                   "multiply", node_budget=200)
    assert result.timed_out


def test_multiplier_bdds_grow_much_faster_than_adder_bdds():
    """The classical blow-up: product BDDs explode, sum BDDs stay linear."""
    adder_nodes = bdd_equivalence_check(generate_adder("RC", 6), "add").num_nodes
    mult_nodes = bdd_equivalence_check(generate_multiplier("SP-AR-RC", 6),
                                       "multiply").num_nodes
    assert mult_nodes > 10 * adder_nodes
