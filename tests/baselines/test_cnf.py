"""Tests for CNF construction and Tseitin encoding."""

import itertools

import pytest

from repro.baselines.sat.cnf import CNF, tseitin_encode
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.circuit.simulate import simulate
from repro.errors import SatError


def test_cnf_basic_operations():
    cnf = CNF()
    x = cnf.new_variable()
    y = cnf.new_variable()
    cnf.add_clause((x, -y))
    cnf.extend([(y,), (-x, y)])
    assert cnf.num_variables == 2
    assert cnf.num_clauses == 3
    dimacs = cnf.to_dimacs()
    assert dimacs.startswith("p cnf 2 3")
    assert "1 -2 0" in dimacs


def test_cnf_rejects_bad_literals():
    cnf = CNF()
    cnf.new_variable()
    with pytest.raises(SatError):
        cnf.add_clause((0,))
    with pytest.raises(SatError):
        cnf.add_clause((5,))
    with pytest.raises(SatError):
        cnf.add_clause(())


def _clause_satisfied(clause, assignment):
    return any((lit > 0) == assignment[abs(lit)] for lit in clause)


@pytest.mark.parametrize("gate_type", [
    GateType.AND, GateType.OR, GateType.XOR, GateType.NAND, GateType.NOR,
    GateType.XNOR, GateType.NOT, GateType.BUF, GateType.CONST0, GateType.CONST1,
])
def test_tseitin_encoding_is_consistent_with_simulation(gate_type):
    netlist = Netlist(f"gate_{gate_type.value}")
    arity = gate_type.min_arity
    inputs = [netlist.add_input(f"x{i}") for i in range(arity)]
    netlist.add_gate(gate_type, inputs, "z")
    netlist.add_output("z")
    cnf, variables = tseitin_encode(netlist)

    for bits in itertools.product((0, 1), repeat=arity):
        values = simulate(netlist, dict(zip(inputs, bits)))
        assignment = {variables[name]: bool(value)
                      for name, value in values.items() if name in variables}
        # Fill any auxiliary Tseitin variables consistently by checking that
        # some completion satisfies all clauses: here gates are single-level,
        # so every CNF variable is a circuit signal already.
        assert all(_clause_satisfied(clause, assignment)
                   for clause in cnf.clauses
                   if all(abs(lit) in assignment for lit in clause))


def test_tseitin_three_input_xor_uses_auxiliary_variable():
    netlist = Netlist()
    inputs = [netlist.add_input(f"x{i}") for i in range(3)]
    netlist.add_gate(GateType.XOR, inputs, "z")
    netlist.add_output("z")
    cnf, variables = tseitin_encode(netlist)
    assert cnf.num_variables > len(variables) or len(variables) == cnf.num_variables
    assert cnf.num_clauses >= 8


def test_tseitin_shared_inputs_for_miter_style_encoding(tiny_and_netlist):
    cnf, variables = tseitin_encode(tiny_and_netlist)
    before = cnf.num_variables
    second = tiny_and_netlist.copy("copy")
    shared = {name: variables[name] for name in second.inputs}
    cnf, second_vars = tseitin_encode(second, cnf, shared)
    assert cnf.num_variables == before + 1          # only the new output
    assert second_vars["a"] == variables["a"]
