"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AlgebraError,
    BddError,
    BlowUpError,
    CircuitError,
    ModelingError,
    ReproError,
    SatError,
    VerificationError,
)


@pytest.mark.parametrize("exception_type", [
    AlgebraError, BddError, BlowUpError, CircuitError, ModelingError,
    SatError, VerificationError,
])
def test_every_error_is_a_repro_error(exception_type):
    assert issubclass(exception_type, ReproError)
    assert issubclass(exception_type, Exception)


def test_blowup_error_carries_diagnostics():
    error = BlowUpError("too big", monomials=12345, elapsed_s=1.5)
    assert error.monomials == 12345
    assert error.elapsed_s == 1.5
    assert "too big" in str(error)


def test_blowup_error_defaults():
    error = BlowUpError("budget exceeded")
    assert error.monomials is None
    assert error.elapsed_s is None


def test_errors_can_be_caught_as_repro_error():
    with pytest.raises(ReproError):
        raise CircuitError("broken netlist")
