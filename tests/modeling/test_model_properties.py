"""Property-based cross-checks between simulation and the algebraic model.

For randomly generated netlists the polynomial model must agree with the
bit-true simulator on every signal — this ties the two independent
implementations of gate semantics (``evaluate_gate`` and ``gate_tail``)
together and underpins the soundness of the whole verification flow.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.circuit.simulate import simulate
from repro.modeling.model import AlgebraicModel

_GATE_CHOICES = [GateType.AND, GateType.OR, GateType.XOR, GateType.NAND,
                 GateType.NOR, GateType.XNOR, GateType.NOT, GateType.BUF]


@st.composite
def random_netlists(draw):
    """A random DAG of up to 12 gates over 4 primary inputs."""
    netlist = Netlist("random")
    signals = [netlist.add_input(f"i{k}") for k in range(4)]
    num_gates = draw(st.integers(min_value=1, max_value=12))
    for index in range(num_gates):
        gate_type = draw(st.sampled_from(_GATE_CHOICES))
        if gate_type in (GateType.NOT, GateType.BUF):
            inputs = [draw(st.sampled_from(signals))]
        else:
            first = draw(st.sampled_from(signals))
            second = draw(st.sampled_from([s for s in signals if s != first]))
            inputs = [first, second]
        signals.append(netlist.add_gate(gate_type, inputs, f"g{index}"))
    netlist.add_output(signals[-1])
    return netlist


@settings(max_examples=60, deadline=None)
@given(random_netlists(), st.lists(st.integers(min_value=0, max_value=1),
                                   min_size=4, max_size=4))
def test_model_evaluation_matches_simulation(netlist, bits):
    assignment = {f"i{k}": bits[k] for k in range(4)}
    simulated = simulate(netlist, assignment)

    model = AlgebraicModel.from_netlist(netlist)
    ring = model.ring
    values = model.evaluate({ring.index(name): value
                             for name, value in assignment.items()})
    for signal, expected in simulated.items():
        assert values[ring.index(signal)] == expected


@settings(max_examples=60, deadline=None)
@given(random_netlists())
def test_random_netlist_models_are_groebner_bases(netlist):
    model = AlgebraicModel.from_netlist(netlist)
    assert model.check_groebner_by_construction()


@settings(max_examples=40, deadline=None)
@given(random_netlists(), st.lists(st.integers(min_value=0, max_value=1),
                                   min_size=4, max_size=4))
def test_gate_polynomials_vanish_on_simulated_valuations(netlist, bits):
    """Every gate polynomial -x + tail(x) is zero on a consistent valuation."""
    assignment = {f"i{k}": bits[k] for k in range(4)}
    simulated = simulate(netlist, assignment)
    model = AlgebraicModel.from_netlist(netlist)
    ring = model.ring
    valuation = {ring.index(name): value for name, value in simulated.items()}
    for poly in model.polynomials():
        assert poly.evaluate(valuation) == 0
