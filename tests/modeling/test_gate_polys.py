"""Tests for the gate-to-polynomial translation."""

import itertools

import pytest

from repro.algebra.polynomial import Polynomial
from repro.circuit.gates import GateType, evaluate_gate
from repro.errors import ModelingError
from repro.modeling.gate_polys import gate_polynomial, gate_tail


TWO_INPUT_GATES = [GateType.AND, GateType.OR, GateType.XOR,
                   GateType.NAND, GateType.NOR, GateType.XNOR]


@pytest.mark.parametrize("gate_type", TWO_INPUT_GATES)
def test_two_input_gate_tails_match_truth_tables(gate_type):
    tail = gate_tail(gate_type, [0, 1])
    for a, b in itertools.product((0, 1), repeat=2):
        assert tail.evaluate({0: a, 1: b}) == evaluate_gate(gate_type, [a, b])


@pytest.mark.parametrize("gate_type", [GateType.AND, GateType.OR, GateType.XOR])
@pytest.mark.parametrize("arity", [3, 4, 5])
def test_multi_input_gate_tails(gate_type, arity):
    variables = list(range(arity))
    tail = gate_tail(gate_type, variables)
    for bits in itertools.product((0, 1), repeat=arity):
        assignment = dict(enumerate(bits))
        assert tail.evaluate(assignment) == evaluate_gate(gate_type, list(bits))


def test_not_buf_const_tails():
    assert gate_tail(GateType.NOT, [3]) == Polynomial.from_terms([(1, []), (-1, [3])])
    assert gate_tail(GateType.BUF, [3]) == Polynomial.variable(3)
    assert gate_tail(GateType.CONST0, []) == Polynomial.zero()
    assert gate_tail(GateType.CONST1, []) == Polynomial.constant(1)


def test_paper_gate_polynomial_forms():
    """The exact polynomial forms listed in Section II-B of the paper."""
    z, a, b = 2, 0, 1
    assert gate_polynomial(z, GateType.NOT, [a]) == Polynomial.from_terms(
        [(-1, [z]), (1, []), (-1, [a])])
    assert gate_polynomial(z, GateType.AND, [a, b]) == Polynomial.from_terms(
        [(-1, [z]), (1, [a, b])])
    assert gate_polynomial(z, GateType.OR, [a, b]) == Polynomial.from_terms(
        [(-1, [z]), (1, [a]), (1, [b]), (-1, [a, b])])
    assert gate_polynomial(z, GateType.XOR, [a, b]) == Polynomial.from_terms(
        [(-1, [z]), (1, [a]), (1, [b]), (-2, [a, b])])


def test_gate_polynomial_leading_variable_is_output():
    poly = gate_polynomial(9, GateType.XOR, [1, 2])
    mono, coeff = poly.leading_term()
    assert mono == frozenset({9})
    assert coeff == -1


def test_missing_inputs_rejected():
    with pytest.raises(ModelingError):
        gate_tail(GateType.AND, [])
