"""Tests for the specification polynomials."""

import itertools

import pytest

from repro.errors import ModelingError
from repro.generators.adders import generate_adder
from repro.generators.multipliers import generate_multiplier
from repro.modeling.model import AlgebraicModel
from repro.modeling.spec import (
    adder_specification,
    custom_specification,
    multiplier_specification,
)


def test_multiplier_specification_vanishes_on_circuit_valuations():
    netlist = generate_multiplier("SP-AR-RC", 3)
    model = AlgebraicModel.from_netlist(netlist)
    spec = multiplier_specification(model)
    assert spec.modulus == 1 << 6
    ring = model.ring
    for a_val, b_val in itertools.product(range(8), repeat=2):
        assignment = {ring.index(f"a{i}"): (a_val >> i) & 1 for i in range(3)}
        assignment.update({ring.index(f"b{i}"): (b_val >> i) & 1 for i in range(3)})
        values = model.evaluate(assignment)
        assert spec.polynomial.evaluate(values) == 0


def test_adder_specification_vanishes_on_circuit_valuations():
    netlist = generate_adder("CL", 4)
    model = AlgebraicModel.from_netlist(netlist)
    spec = adder_specification(model)
    assert spec.modulus is None
    ring = model.ring
    for a_val, b_val in itertools.product(range(16), repeat=2):
        assignment = {ring.index(f"a{i}"): (a_val >> i) & 1 for i in range(4)}
        assignment.update({ring.index(f"b{i}"): (b_val >> i) & 1 for i in range(4)})
        values = model.evaluate(assignment)
        assert spec.polynomial.evaluate(values) == 0


def test_specification_description_and_modulus_toggle():
    netlist = generate_multiplier("BP-WT-CL", 4)
    model = AlgebraicModel.from_netlist(netlist)
    spec = multiplier_specification(model, use_modulus=False)
    assert spec.modulus is None
    assert "4x4" in spec.description
    spec_mod = multiplier_specification(model)
    assert "mod 2^8" in spec_mod.description


def test_apply_modulus_drops_wrapped_terms():
    from repro.algebra.polynomial import Polynomial

    spec = custom_specification(Polynomial.zero(), modulus=8)
    remainder = Polynomial.from_terms([(8, [1]), (3, [2])])
    reduced = spec.apply_modulus(remainder)
    assert reduced.coefficient([1]) == 0
    assert reduced.coefficient([2]) == 3
    no_mod = custom_specification(Polynomial.zero())
    assert no_mod.apply_modulus(remainder) == remainder


def test_narrow_output_word_rejected():
    netlist = generate_adder("RC", 4)   # outputs are only width+1 bits
    model = AlgebraicModel.from_netlist(netlist)
    with pytest.raises(ModelingError):
        multiplier_specification(model)
