"""Tests for the algebraic circuit model (Step 1 of the MT algorithm)."""

import itertools

import pytest

from repro.algebra.monomial import Monomial
from repro.circuit.gates import GateType
from repro.errors import ModelingError
from repro.generators.adders import generate_adder
from repro.generators.multipliers import generate_multiplier
from repro.modeling.model import AlgebraicModel


def test_model_of_full_adder_matches_paper_structure(paper_full_adder):
    model = AlgebraicModel.from_netlist(paper_full_adder)
    assert model.num_polynomials == 5
    assert model.check_groebner_by_construction()
    # Inputs have the lowest indices (level 0), the carry the highest level.
    ring = model.ring
    assert ring.index("a") < ring.index("x1") < ring.index("s")
    assert model.level(ring.index("c")) == 3
    # Gate records capture the structural information for the vanishing rule.
    record = model.records[ring.index("x2")]
    assert record.gate_type is GateType.AND
    assert set(record.inputs) == {ring.index("a"), ring.index("b")}


def test_variable_order_is_reverse_topological():
    netlist = generate_multiplier("SP-AR-RC", 3)
    model = AlgebraicModel.from_netlist(netlist)
    for var, tail in model.tails.items():
        for used in tail.support():
            assert used < var, "tail variables must be smaller than the output"


def test_leading_monomials_are_output_variables():
    netlist = generate_adder("KS", 6)
    model = AlgebraicModel.from_netlist(netlist)
    for var in model.tails:
        assert model.polynomial(var).leading_monomial() == Monomial((var,))
    assert model.check_groebner_by_construction()


def test_gate_polynomials_vanish_on_consistent_valuations(paper_full_adder):
    model = AlgebraicModel.from_netlist(paper_full_adder)
    ring = model.ring
    for a, b, cin in itertools.product((0, 1), repeat=3):
        assignment = {ring.index("a"): a, ring.index("b"): b,
                      ring.index("cin"): cin}
        values = model.evaluate(assignment)
        for poly in model.polynomials():
            assert poly.evaluate(values) == 0


def test_fanout_and_xor_variable_selection(paper_full_adder):
    model = AlgebraicModel.from_netlist(paper_full_adder)
    ring = model.ring
    fanouts = model.fanout_variables()
    assert ring.index("x1") in fanouts
    assert ring.index("x2") not in fanouts
    xors = model.xor_variables()
    # XOR inputs and outputs: a, b, x1, cin, s.
    assert {ring.index(n) for n in ("a", "b", "x1", "cin", "s")} <= xors
    assert ring.index("x2") not in xors


def test_word_lookup_and_errors():
    netlist = generate_multiplier("SP-WT-CL", 3)
    model = AlgebraicModel.from_netlist(netlist)
    assert len(model.word("a")) == 3
    assert len(model.word("s", from_outputs=True)) == 6
    with pytest.raises(ModelingError):
        model.word("nope")
    with pytest.raises(ModelingError):
        model.tail(model.input_vars[0])


def test_describe_and_render(paper_full_adder):
    model = AlgebraicModel.from_netlist(paper_full_adder)
    assert "5 polynomials" in model.describe()
    rendered = model.render_polynomials()
    assert "c:" in rendered and "s:" in rendered
