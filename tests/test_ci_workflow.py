"""Structural validation of the CI workflow (actionlint-style dry check).

The real pipeline only runs on the forge, so this test pins down the
invariants the repository relies on: the workflow parses as YAML, covers
the documented Python matrix, and contains the expected jobs (test matrix,
lint, docs, certificate gate, benchmark smoke with artifact upload) with
well-formed steps.
"""

from __future__ import annotations

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = Path(__file__).resolve().parent.parent / ".github" / "workflows" / "ci.yml"
WIDE_WORKFLOW = WORKFLOW.parent / "bench-wide.yml"


@pytest.fixture(scope="module")
def workflow():
    assert WORKFLOW.exists(), "missing .github/workflows/ci.yml"
    return yaml.safe_load(WORKFLOW.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def wide_workflow():
    assert WIDE_WORKFLOW.exists(), "missing .github/workflows/bench-wide.yml"
    return yaml.safe_load(WIDE_WORKFLOW.read_text(encoding="utf-8"))


def test_workflow_parses_and_triggers(workflow):
    # PyYAML parses the bare `on:` key as boolean True (YAML 1.1).
    triggers = workflow.get("on", workflow.get(True))
    assert triggers is not None, "workflow must declare push/pull_request triggers"
    assert "pull_request" in triggers
    assert "push" in triggers


def test_workflow_has_expected_jobs(workflow):
    jobs = workflow["jobs"]
    assert set(jobs) >= {"test", "lint", "docs", "certify", "bench-smoke",
                         "chaos", "fleet", "campaign"}


def test_test_job_covers_python_matrix(workflow):
    matrix = workflow["jobs"]["test"]["strategy"]["matrix"]
    assert matrix["python-version"] == ["3.10", "3.11", "3.12"]
    commands = " ".join(step.get("run", "")
                        for step in workflow["jobs"]["test"]["steps"])
    assert "pytest" in commands


def test_lint_job_runs_ruff(workflow):
    commands = " ".join(step.get("run", "")
                        for step in workflow["jobs"]["lint"]["steps"])
    assert "ruff check" in commands


def test_bench_smoke_job_gates_and_uploads(workflow):
    job = workflow["jobs"]["bench-smoke"]
    commands = " ".join(step.get("run", "") for step in job["steps"])
    assert "benchmarks/smoke.py" in commands
    assert "--baseline" in commands
    uploads = [step for step in job["steps"]
               if "upload-artifact" in step.get("uses", "")]
    assert uploads, "bench-smoke must upload the BENCH_*.json artifact"
    assert "BENCH" in uploads[0]["with"]["path"]


def test_json_report_smoke_step_validates_schema(workflow):
    """The CI must pipe `--json` output through a JSON parser and check keys."""
    commands = " ".join(step.get("run", "")
                        for step in workflow["jobs"]["bench-smoke"]["steps"])
    assert "--json" in commands
    assert "json.tool" in commands
    assert "verdict" in commands
    assert "counters" in commands


def test_certify_job_emits_checks_and_cross_checks(workflow):
    """Emit a catalog slice, re-check it engine-free, and prove a refutation.

    The gate must (a) run `check-certificate` over freshly emitted
    certificates, (b) drive one injected-bug refutation end to end —
    verifier exit 2, checker exit 2, SAT cross-check on the report —
    and (c) reject a tampered document.
    """
    commands = " ".join(step.get("run", "")
                        for step in workflow["jobs"]["certify"]["steps"])
    assert "--certificate" in commands
    assert "check-certificate" in commands
    assert "apply_mutation" in commands
    assert "verify-verilog" in commands
    assert commands.count('-eq 2 ') >= 2 or commands.count('-eq 2') >= 2
    assert "cross_check" in commands
    assert "counterexample_confirmed" in commands
    assert "tampered" in commands


def test_chaos_job_runs_two_seeds_and_drain_smoke(workflow):
    """Seeded fault-injection suite (two seeds) + SIGTERM drain smoke.

    The chaos gate must (a) run ``tests/resilience`` under two distinct
    ``REPRO_CHAOS_SEED`` values, and (b) SIGTERM the server while a batch
    is in flight, asserting the response still arrives and the process
    exits 0 (graceful drain, not a dropped connection).
    """
    commands = " ".join(step.get("run", "")
                        for step in workflow["jobs"]["chaos"]["steps"])
    assert "tests/resilience" in commands
    assert commands.count("REPRO_CHAOS_SEED=") >= 2
    seeds = {part.split()[0] for part in
             commands.split("REPRO_CHAOS_SEED=")[1:]}
    assert len(seeds) >= 2, f"chaos job must use two distinct seeds: {seeds}"
    assert "repro-verify serve" in commands
    assert "kill -TERM" in commands
    assert "/v1/batch" in commands
    assert "verified" in commands


def test_fleet_job_checks_parity_steals_and_cache(workflow):
    """Two real workers, byte-parity with serial, steals, cache replay.

    The fleet gate must (a) run the fleet test suite, (b) push a 4-bit
    grid through ``batch --fleet`` against two worker processes and
    byte-diff the stdout against the serial run, (c) force work-stealing
    with a tiny straggler grace and grep a non-zero ``steals`` counter,
    and (d) re-run against the shared cache asserting non-zero cache
    hits with zero executions.
    """
    commands = " ".join(step.get("run", "")
                        for step in workflow["jobs"]["fleet"]["steps"])
    assert "tests/fleet" in commands
    assert commands.count("repro-verify serve") >= 2
    assert "--fleet" in commands
    assert "straggler_grace_s" in commands
    assert "cache_dir" in commands
    assert "diff serial" in commands
    assert "steals=[1-9]" in commands
    assert "cache-hits=[1-9]" in commands
    assert "executed=0" in commands


def test_campaign_job_reruns_against_one_cone_cache(workflow):
    """Seeded mutation campaign, twice, with reuse and parity gates.

    The campaign gate must (a) run ``repro-verify campaign`` twice with
    the same seed against one shared ``--cone-cache`` directory, (b)
    cross-check a seeded mutant subset from scratch (the command exits 1
    itself on a verdict disagreement), (c) assert the second run's cone
    hit rate is at least 0.9, and (d) byte-diff the extracted
    (id, verdict) columns of the two runs.
    """
    commands = " ".join(step.get("run", "")
                        for step in workflow["jobs"]["campaign"]["steps"])
    assert commands.count("repro-verify campaign") >= 2
    assert "--cone-cache" in commands
    assert "--cross-check" in commands
    assert commands.count("--seed 7") >= 2
    assert "hit_rate" in commands
    assert ">= 0.9" in commands
    assert "diff verdicts1.txt verdicts2.txt" in commands


def test_docs_job_runs_snippet_check(workflow):
    """The docs job must run tests/test_docs.py against the tree."""
    commands = " ".join(step.get("run", "")
                        for step in workflow["jobs"]["docs"]["steps"])
    assert "tests/test_docs.py" in commands


def test_docs_job_smokes_the_server(workflow):
    """Boot `serve`, poll /healthz, verify a 2-bit multiplier, check verdict."""
    commands = " ".join(step.get("run", "")
                        for step in workflow["jobs"]["docs"]["steps"])
    assert "repro-verify serve" in commands
    assert "/healthz" in commands
    assert "/v1/verify" in commands
    assert '"width": 2' in commands
    assert "verified" in commands


def test_wide_bench_runs_on_schedule_and_dispatch(wide_workflow):
    triggers = wide_workflow.get("on", wide_workflow.get(True))
    assert "workflow_dispatch" in triggers
    schedules = triggers["schedule"]
    assert schedules and all("cron" in entry for entry in schedules)


def test_wide_bench_covers_8_and_16_bits(wide_workflow):
    job = wide_workflow["jobs"]["bench-wide"]
    commands = " ".join(step.get("run", "") for step in job["steps"])
    assert "benchmarks/smoke.py" in commands
    assert "8,16" in commands
    env = {}
    for step in job["steps"]:
        env.update(step.get("env", {}))
    assert env.get("REPRO_BENCH_BITS") == "8,16"


def test_wide_bench_uploads_artifact(wide_workflow):
    job = wide_workflow["jobs"]["bench-wide"]
    uploads = [step for step in job["steps"]
               if "upload-artifact" in step.get("uses", "")]
    assert uploads, "bench-wide must upload the BENCH_wide.json artifact"
    assert "BENCH_wide" in uploads[0]["with"]["path"]


def test_every_step_is_well_formed(workflow, wide_workflow):
    for document in (workflow, wide_workflow):
        for name, job in document["jobs"].items():
            assert "runs-on" in job, f"job {name} missing runs-on"
            for step in job["steps"]:
                assert "uses" in step or "run" in step, (
                    f"step in job {name} has neither 'uses' nor 'run'")


def test_referenced_paths_exist():
    assert (WORKFLOW.parent.parent.parent / "benchmarks" / "smoke.py").exists()
    assert (WORKFLOW.parent.parent.parent / "benchmarks" / "baselines"
            / "BENCH_smoke_baseline.json").exists()
