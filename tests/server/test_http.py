"""End-to-end tests of the asyncio HTTP front end over real sockets.

One module-scoped server thread on an ephemeral port backs every test;
the thin :class:`VerificationClient` drives it exactly like an external
consumer would.  Covers the ISSUE 5 acceptance tests: endpoint round
trips against the catalog with report parity to the in-process service
(byte-identical through a shared result cache), per-request budget
groups in ``/v1/batch``, async job polling and eviction, structured 4xx
bodies over the wire, and a concurrent-client smoke.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.api.report import VerificationReport
from repro.api.request import Budgets, VerificationRequest
from repro.api.service import VerificationService
from repro.circuit.mutate import apply_mutation, list_mutations
from repro.circuit.simulate import simulate_words
from repro.circuit.verilog import write_verilog
from repro.generators.multipliers import generate_multiplier
from repro.server import (
    ServerError,
    ServerThread,
    VerificationClient,
    VerificationServerApp,
)

CATALOG = ("SP-AR-RC", "SP-WT-CL", "BP-CT-BK")


def observable_bug(netlist):
    """A mutated copy that provably computes a wrong product somewhere."""
    for mutation in list_mutations(netlist):
        buggy = apply_mutation(netlist, mutation)
        for a in range(8):
            for b in range(8):
                if simulate_words(buggy, {"a": a, "b": b}) != a * b:
                    return buggy
    raise AssertionError("no observable mutation found")


@pytest.fixture(scope="module")
def server():
    with ServerThread(VerificationServerApp(job_store_limit=4)) as thread:
        yield thread


@pytest.fixture(scope="module")
def client(server):
    return VerificationClient(port=server.port)


_TIMING_KEYS = ("time", "time_s", "reduction_time_s", "rewrite_time_s",
                "conflicts", "decisions")


def _stable(document: dict) -> dict:
    masked = {key: ("*" if key in _TIMING_KEYS else value)
              for key, value in document.items()}
    masked["counters"] = {key: ("*" if key in _TIMING_KEYS else value)
                          for key, value in document.get("counters",
                                                         {}).items()}
    return masked


# -- endpoint round trips ------------------------------------------------------

@pytest.mark.parametrize("architecture", CATALOG)
def test_verify_round_trip_matches_in_process_submit(client, architecture):
    document = {"architecture": architecture, "width": 4, "method": "mt-lr"}
    raw = client.verify_raw(document)
    report = VerificationReport.from_json(raw.decode("utf-8"))
    assert raw == report.to_json().encode("utf-8")
    direct = VerificationService().submit(
        VerificationRequest.from_architecture(architecture, 4,
                                              method="mt-lr"))
    assert _stable(report.to_dict()) == _stable(direct.to_dict())
    assert report.verdict == "verified"


def test_verilog_text_source_round_trips(client):
    netlist = generate_multiplier("SP-AR-RC", 3)
    report = client.verify({"verilog_text": write_verilog(netlist)})
    assert report.verdict == "verified"
    # Verilog module identifiers replace the dashes of the netlist name.
    assert report.circuit == netlist.name.replace("-", "_")


def test_healthz_metrics_backends_over_the_wire(client):
    assert client.healthz()["status"] == "ok"
    assert [entry["name"] for entry in client.backends()][0] == "mt-lr"
    metrics = client.metrics()
    assert metrics["http"]["requests_total"] >= 1


# -- batches with per-request budget groups ------------------------------------

def test_batch_with_per_request_budget_groups(client):
    documents = [
        {"architecture": "SP-AR-RC", "width": 3, "method": "mt-lr",
         "find_counterexample": False},
        # Its own budget group: a 50-monomial budget that provably trips.
        {"architecture": "SP-WT-CL", "width": 3, "method": "mt-naive",
         "budgets": {"monomial_budget": 50}, "find_counterexample": False},
        {"architecture": "SP-CT-BK", "width": 3, "method": "mt-fo",
         "budgets": {"monomial_budget": 100000, "time_budget_s": 60.0},
         "find_counterexample": False},
    ]
    reports = client.batch(documents)
    assert [report.verdict for report in reports] == \
        ["verified", "budget", "verified"]
    # Each report agrees with an in-process submit under the same budgets.
    service = VerificationService()
    for document, report in zip(documents, reports):
        budgets = Budgets(**document.get("budgets", {}))
        direct = service.submit(VerificationRequest.from_architecture(
            document["architecture"], 3, method=document["method"],
            budgets=budgets, find_counterexample=False))
        assert direct.verdict == report.verdict
        assert direct.reason == report.reason


def test_50_row_batch_byte_identical_to_service_through_shared_cache(
        tmp_path):
    """The ISSUE 5 acceptance gate.

    Wall-clock timings make two *executions* of one job differ, so true
    byte identity is established the same way the runner's cache contract
    is: the server executes the 50-row batch into a result cache, and the
    in-process service replays the identical batch from that cache — every
    report pair must then serialize byte-identically.
    """
    architectures = [f"SP-{acc}-{add}" for acc in ("AR", "WT", "DT", "CT")
                     for add in ("RC", "CL", "BK")] + ["BP-AR-RC"]
    budget_groups = (None, {"monomial_budget": 500000},
                     {"monomial_budget": 250000, "time_budget_s": 120.0},
                     None)
    documents = []
    for index, architecture in enumerate(architectures):
        for method in ("mt-lr", "mt-fo", "sat-cec", "bdd-cec"):
            document = {"architecture": architecture, "width": 3,
                        "method": method, "find_counterexample": False}
            budgets = budget_groups[index % len(budget_groups)]
            if budgets is not None and method.startswith("mt"):
                document["budgets"] = dict(budgets)
            documents.append(document)
    assert len(documents) >= 50

    cache_dir = tmp_path / "server-cache"
    with ServerThread(VerificationServerApp(cache_dir=cache_dir)) as thread:
        local = VerificationClient(port=thread.port)
        served = local.batch(documents)
        executed = local.metrics()["cache"]["executed_total"]
    assert [report.verdict for report in served] == ["verified"] * len(served)
    assert executed > 0

    service = VerificationService(cache_dir=cache_dir)
    requests = []
    for document in documents:
        budgets = Budgets(**document.get("budgets", {}))
        requests.append(VerificationRequest.from_architecture(
            document["architecture"], document["width"],
            method=document["method"], budgets=budgets,
            find_counterexample=False))
    replayed = service.run_batch(requests)
    assert service.last_executed == 0          # everything replays cached
    assert [report.to_json() for report in replayed] == \
        [report.to_json() for report in served]


# -- asynchronous jobs ---------------------------------------------------------

def test_async_job_submit_poll_and_result_parity(client):
    documents = [{"architecture": "SP-AR-RC", "width": 3, "method": method,
                  "find_counterexample": False}
                 for method in ("mt-lr", "sat-cec")]
    job_id = client.submit_batch(documents)
    document = client.job(job_id)
    assert document["state"] in ("pending", "running", "done")
    reports = client.wait(job_id, timeout_s=120.0)
    assert [report.verdict for report in reports] == ["verified", "verified"]
    # Terminal job documents replay stably.
    final = client.job(job_id)
    assert final["state"] == "done"
    assert [VerificationReport.from_dict(entry).to_json()
            for entry in final["reports"]] == \
        [report.to_json() for report in reports]


def test_async_job_failure_is_reported_not_silent(client):
    # A netlist that parses but fails verification setup: unknown spec kind
    # is caught at parse time, so use an unknown architecture — it passes
    # wire validation and fails inside the batch run.
    job_id = client.submit_batch([{"architecture": "XX-YY-ZZ", "width": 3}])
    with pytest.raises(ServerError, match="job_failed|GeneratorError|error"):
        client.wait(job_id, timeout_s=60.0)


def test_job_store_eviction_over_http(client):
    quick = [{"architecture": "SP-AR-RC", "width": 2, "method": "mt-lr",
              "find_counterexample": False}]
    ids = []
    for _ in range(5):                       # store limit is 4
        job_id = client.submit_batch(quick)
        client.wait(job_id, timeout_s=60.0)
        ids.append(job_id)
    with pytest.raises(ServerError) as info:
        client.job(ids[0])
    assert info.value.status == 404
    assert info.value.code == "job_not_found"
    assert client.job(ids[-1])["state"] == "done"


# -- errors over the wire ------------------------------------------------------

def test_malformed_request_is_a_structured_4xx_over_http(client):
    status, body = client.request_raw("POST", "/v1/verify",
                                      {"architecture": "SP-AR-RC"})
    assert status == 400
    error = json.loads(body.decode("utf-8"))["error"]
    assert error["code"] == "verification_error"
    assert "width" in error["message"]


def test_protocol_garbage_gets_a_400_not_a_hang(server):
    with socket.create_connection(("127.0.0.1", server.port),
                                  timeout=10.0) as raw:
        raw.sendall(b"NONSENSE\r\n\r\n")
        response = raw.recv(65536)
    assert response.startswith(b"HTTP/1.1 400")
    assert b"bad_request" in response


def test_oversized_request_line_is_a_431(server):
    """A header line beyond the stream limit answers 431, not a dead socket."""
    with socket.create_connection(("127.0.0.1", server.port),
                                  timeout=10.0) as raw:
        raw.sendall(b"GET /" + b"a" * 20_000 + b" HTTP/1.1\r\n\r\n")
        response = raw.recv(65536)
    assert response.startswith(b"HTTP/1.1 431")
    assert b"header_too_large" in response


def test_exactly_max_header_count_is_accepted(server):
    from repro.server.http import MAX_HEADER_COUNT
    headers = b"".join(b"X-Pad-%d: v\r\n" % i
                       for i in range(MAX_HEADER_COUNT - 1))
    with socket.create_connection(("127.0.0.1", server.port),
                                  timeout=10.0) as raw:
        raw.sendall(b"GET /healthz HTTP/1.1\r\n" + headers +
                    b"Content-Length: 0\r\n\r\n")
        response = raw.recv(65536)
    assert response.startswith(b"HTTP/1.1 200")
    with socket.create_connection(("127.0.0.1", server.port),
                                  timeout=10.0) as raw:
        raw.sendall(b"GET /healthz HTTP/1.1\r\n" + headers +
                    b"X-Pad-Last: v\r\nX-Over: v\r\n\r\n")
        response = raw.recv(65536)
    assert response.startswith(b"HTTP/1.1 431")


def test_oversized_content_length_is_a_413(server):
    with socket.create_connection(("127.0.0.1", server.port),
                                  timeout=10.0) as raw:
        raw.sendall(b"POST /v1/verify HTTP/1.1\r\n"
                    b"Content-Length: 999999999999\r\n\r\n")
        response = raw.recv(65536)
    assert response.startswith(b"HTTP/1.1 413")


# -- concurrency ---------------------------------------------------------------

def test_concurrent_clients_agree_with_serial_verdicts(server):
    documents = [{"architecture": architecture, "width": 3,
                  "method": method, "find_counterexample": False}
                 for architecture in CATALOG
                 for method in ("mt-lr", "mt-fo")]
    serial = [VerificationService().submit(
        VerificationRequest.from_architecture(
            document["architecture"], 3, method=document["method"],
            find_counterexample=False)).verdict for document in documents]

    results: list = [None] * len(documents)

    def fetch(index: int) -> None:
        client = VerificationClient(port=server.port)
        try:
            results[index] = client.verify(documents[index]).verdict
        except Exception as error:  # noqa: BLE001 - surfaced via assert
            results[index] = error

    threads = [threading.Thread(target=fetch, args=(index,))
               for index in range(len(documents))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert results == serial
