"""The fleet-facing server surface over real sockets.

Covers the PR 9 wire additions: the ``/v1/version`` handshake, the
``GET/PUT /v1/cache/{key}`` shared result-cache protocol, keep-alive
connection pooling in :class:`VerificationClient`, streaming
``POST /v1/batch`` NDJSON (including the first-row-before-last-dispatch
acceptance against a real fleet coordinator), and the worker-side
``--shared-cache`` read-through.
"""

from __future__ import annotations

import time

import pytest

from repro import __version__
from repro.api.report import (LEGACY_REPORT_SCHEMAS, REPORT_SCHEMA,
                              VerificationReport)
from repro.api.request import VerificationRequest
from repro.api.service import request_cache_key
from repro.certify.certificate import CERTIFICATE_VERSION
from repro.experiments.runner import ResultCache
from repro.fleet import FleetTopology, dispatch_cost
from repro.server import (ServerError, ServerThread, VerificationClient,
                          VerificationServerApp)

DOCUMENT = {"architecture": "SP-AR-RC", "width": 3, "method": "mt-lr",
            "find_counterexample": False}


@pytest.fixture(scope="module")
def cached_server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("server-cache")
    with ServerThread(VerificationServerApp(cache_dir=cache_dir)) as thread:
        yield thread


@pytest.fixture(scope="module")
def client(cached_server):
    return VerificationClient(port=cached_server.port)


# -- /v1/version ---------------------------------------------------------------

def test_version_handshake_document(client):
    document = client.version()
    assert document == {
        "version": __version__,
        "report_schema": REPORT_SCHEMA,
        "legacy_report_schemas": list(LEGACY_REPORT_SCHEMAS),
        "certificate_version": CERTIFICATE_VERSION,
        "cache_schema": ResultCache.SCHEMA,
    }


# -- /v1/cache/{key} -----------------------------------------------------------

def test_cache_put_then_get_round_trips(client):
    report = client.verify(DOCUMENT)
    key = request_cache_key(VerificationRequest.from_architecture(
        "SP-AR-RC", 3, "mt-lr", find_counterexample=False))
    assert key is not None
    assert client.cache_put(key, report) is True
    served = client.cache_get(key)
    assert served is not None
    assert served.to_json() == report.to_json()
    metrics = client.metrics()["shared_cache"]
    assert metrics["gets_served_total"] >= 1
    assert metrics["puts_served_total"] >= 1


def test_cache_miss_is_none_and_bad_keys_are_400(client):
    assert client.cache_get("00" * 32) is None
    with pytest.raises(ServerError) as info:
        client.cache_get("not-a-digest")
    assert info.value.status == 400
    assert info.value.code == "invalid_cache_key"
    status, _ = client.request_raw("POST", "/v1/cache/" + "00" * 32, {})
    assert status == 405


def test_cache_put_refuses_uncacheable_reports(client):
    # Infrastructure failures never enter the shared cache: a confused
    # worker must not be able to poison the fleet with error rows.
    report = VerificationReport.from_row({
        "architecture": "SP-AR-RC", "width": 3, "method": "mt-lr",
        "status": "error", "time": "-", "time_s": None, "verified": None,
        "reason": "injected"})
    assert client.cache_put("11" * 32, report) is False
    assert client.cache_get("11" * 32) is None


def test_cache_routes_404_when_server_has_no_cache():
    with ServerThread(VerificationServerApp()) as thread:
        bare = VerificationClient(port=thread.port)
        with pytest.raises(ServerError) as info:
            bare.request("GET", "/v1/cache/" + "00" * 32)
        assert info.value.code == "cache_disabled"
        report = VerificationReport.from_row({
            "architecture": "SP-AR-RC", "width": 3, "method": "mt-lr",
            "status": "ok", "time": "0.1", "time_s": 0.1, "verified": True,
            "reason": None})
        assert bare.cache_put("00" * 32, report) is False


# -- keep-alive ----------------------------------------------------------------

def test_keep_alive_pools_one_connection_across_requests(cached_server):
    pooled = VerificationClient(port=cached_server.port)
    pooled.healthz()
    pooled.version()
    pooled.healthz()
    assert pooled._local.served == 3        # one connection, reused
    pooled.close()
    assert getattr(pooled._local, "connection") is None

    fresh = VerificationClient(port=cached_server.port, keep_alive=False)
    fresh.healthz()
    assert getattr(fresh._local, "connection", None) is None


# -- streaming /v1/batch -------------------------------------------------------

def test_batch_stream_matches_sync_batch_and_carries_a_trailer(client):
    documents = [dict(DOCUMENT, method=method)
                 for method in ("mt-lr", "mt-fo", "sat-cec")]
    streamed = []
    for report in client.batch_stream(documents):
        assert client.last_trailer is None  # trailer only after the rows
        streamed.append(report)
    assert [report.to_json() for report in streamed] == \
        [report.to_json() for report in client.batch(documents)]
    trailer = client.last_trailer
    assert trailer["reports"] == 3
    assert trailer["cache_hits"] + trailer["executed"] == 3
    assert set(trailer) == {"reports", "cache_hits", "executed",
                            "retries", "fallbacks", "steals"}


def test_batch_stream_surfaces_failures_as_an_error_line(client):
    documents = [dict(DOCUMENT), {"architecture": "XX-YY-ZZ", "width": 3}]
    received = []
    with pytest.raises(ServerError, match="XX-YY-ZZ|error|generator"):
        for report in client.batch_stream(documents):
            received.append(report)
    # The good row still arrived before the failure line.
    assert [report.verdict for report in received] == ["verified"]


def test_stream_and_async_are_mutually_exclusive(client):
    status, _ = client.request_raw(
        "POST", "/v1/batch",
        {"requests": [DOCUMENT], "stream": True, "async": True})
    assert status == 400


# -- fleet coordinator: stream while dispatching -------------------------------

class _RecordingFleetApp(VerificationServerApp):
    """Coordinator app that keeps a handle on its batch dispatchers."""

    def _batch_runner(self):
        runner = super()._batch_runner()
        self.runners = getattr(self, "runners", [])
        self.runners.append(runner)
        return runner


def test_fleet_stream_yields_first_row_before_last_dispatch():
    """The ISSUE 9 streaming acceptance.

    One worker with capacity 1 serializes the dispatches; requests are
    ordered longest-expected-first, so row 0 resolves (and streams) while
    the tail of the grid is still waiting to be dispatched.
    """
    grid = [("BP-CT-BK", 4, "sat-cec"), ("SP-WT-CL", 4, "mt-lr"),
            ("SP-AR-RC", 4, "mt-lr"), ("SP-AR-RC", 3, "mt-lr"),
            ("SP-AR-RC", 2, "mt-lr")]
    documents = [{"architecture": architecture, "width": width,
                  "method": method, "find_counterexample": False}
                 for architecture, width, method in grid]
    requests = [VerificationRequest.from_architecture(
        architecture, width, method, find_counterexample=False)
        for architecture, width, method in grid]
    assert [dispatch_cost(request) for request in requests] == \
        sorted((dispatch_cost(request) for request in requests),
               reverse=True), "grid must be ordered longest-first"

    with ServerThread(VerificationServerApp()) as worker:
        topology = FleetTopology.from_document({"workers": [
            {"name": "solo", "port": worker.port, "capacity": 1}]})
        coordinator_app = _RecordingFleetApp(fleet_topology=topology)
        with ServerThread(coordinator_app) as coordinator:
            client = VerificationClient(port=coordinator.port)
            first_row_at = None
            streamed = []
            for report in client.batch_stream(documents):
                if first_row_at is None:
                    first_row_at = time.monotonic()
                streamed.append(report)
    assert [report.verdict for report in streamed] == ["verified"] * len(grid)
    assert client.last_trailer["executed"] == len(grid)

    (dispatcher,) = coordinator_app.runners
    dispatch_times = [moment for moment, _, _ in dispatcher.dispatch_log]
    assert len(dispatch_times) == len(grid)
    assert first_row_at < max(dispatch_times), \
        "first NDJSON row must stream before the last job is dispatched"
    # And the dispatch order is the longest-expected-first request order.
    assert [index for _, index, _ in dispatcher.dispatch_log] == \
        list(range(len(grid)))
