"""Unit tests of the bounded in-memory job store."""

from __future__ import annotations

import pytest

from repro.server.jobs import JobStore, JobStoreFull


def test_lifecycle_and_document_shapes():
    store = JobStore(limit=4)
    job = store.create()
    assert job.state == "pending"
    document = job.to_document()
    assert document["job"] == job.id
    assert "reports" not in document

    store.start(job.id)
    assert store.get(job.id).state == "running"

    class _Report:
        @staticmethod
        def to_dict():
            return {"verdict": "verified"}

    store.finish(job.id, [_Report()], cache_hits=1, executed=2)
    finished = store.get(job.id)
    assert finished.state == "done" and finished.finished
    document = finished.to_document()
    assert document["reports"] == [{"verdict": "verified"}]
    assert document["cache_hits"] == 1 and document["executed"] == 2
    assert document["finished_s"] is not None


def test_failed_jobs_carry_the_error():
    store = JobStore(limit=2)
    job = store.create()
    store.fail(job.id, "ValueError: boom")
    document = store.get(job.id).to_document()
    assert document["state"] == "failed"
    assert document["error"] == "ValueError: boom"
    assert "reports" not in document


def test_ids_are_unique_and_sequential_within_a_store():
    store = JobStore(limit=8)
    ids = [store.create().id for _ in range(5)]
    assert len(set(ids)) == 5
    prefixes = {job_id.rsplit("-", 1)[0] for job_id in ids}
    assert len(prefixes) == 1


def test_finished_jobs_are_evicted_oldest_first():
    store = JobStore(limit=2)
    first, second = store.create(), store.create()
    store.finish(first.id, [])
    store.finish(second.id, [])
    third = store.create()                       # evicts `first`
    assert store.get(first.id) is None
    assert store.get(second.id) is not None
    assert store.get(third.id) is not None
    assert store.evicted == 1
    assert store.stats()["stored"] == 2


def test_full_store_of_unfinished_jobs_refuses_new_submissions():
    store = JobStore(limit=2)
    store.create()
    running = store.create()
    store.start(running.id)
    with pytest.raises(JobStoreFull, match="unfinished"):
        store.create()
    # Finishing one frees a slot again.
    store.finish(running.id, [])
    assert store.create() is not None


def test_stats_counts_states():
    store = JobStore(limit=8)
    pending = store.create()
    running = store.create()
    done = store.create()
    store.start(running.id)
    store.finish(done.id, [])
    stats = store.stats()
    assert stats["pending"] == 1
    assert stats["running"] == 1
    assert stats["done"] == 1
    assert stats["failed"] == 0
    assert stats["stored"] == 3
    assert stats["limit"] == 8
    assert pending.id != done.id


def test_limit_must_be_positive():
    with pytest.raises(ValueError):
        JobStore(limit=0)
