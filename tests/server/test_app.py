"""Transport-free tests of the server application (no sockets involved).

Routing, wire-schema validation (structured 4xx bodies), report identity
against the in-process service, and the metrics counters are all pinned
here against :meth:`VerificationServerApp.handle` directly.
"""

from __future__ import annotations

import json

import pytest

from repro.api.registry import backend_names
from repro.api.report import VerificationReport
from repro.api.request import Budgets, VerificationRequest
from repro.api.service import VerificationService
from repro.server.app import (
    BUDGET_KEYS,
    REQUEST_KEYS,
    VerificationServerApp,
    parse_request_document,
)


@pytest.fixture()
def app():
    app = VerificationServerApp()
    yield app
    app.close()


def _post(app, path, document):
    return app.handle("POST", path, json.dumps(document).encode("utf-8"))


def _body(response) -> dict:
    return json.loads(response.body.decode("utf-8"))


# -- request-document parsing --------------------------------------------------

def test_parse_request_document_builds_equivalent_requests():
    document = {"architecture": "SP-AR-RC", "width": 4, "method": "mt-fo",
                "budgets": {"monomial_budget": 12345},
                "find_counterexample": False, "seed": 3}
    request = parse_request_document(document)
    assert request == VerificationRequest.from_architecture(
        "SP-AR-RC", 4, method="mt-fo",
        budgets=Budgets(monomial_budget=12345),
        find_counterexample=False, seed=3)


def test_wire_keys_track_the_request_and_budget_dataclasses():
    import dataclasses
    request_fields = {field.name for field in
                      dataclasses.fields(VerificationRequest)}
    assert set(REQUEST_KEYS) == request_fields - {"netlist", "verilog_path"}
    assert set(BUDGET_KEYS) == {field.name
                                for field in dataclasses.fields(Budgets)}


@pytest.mark.parametrize("document,code", [
    ("not an object", "bad_request"),
    ({"netlist": "x", "architecture": "SP-AR-RC", "width": 4},
     "unsupported_field"),
    ({"verilog_path": "/etc/passwd"}, "unsupported_field"),
    ({"architecture": "SP-AR-RC", "width": 4, "bogus": 1}, "unknown_field"),
    ({"architecture": "SP-AR-RC", "width": 4, "budgets": 7}, "bad_request"),
    ({"architecture": "SP-AR-RC", "width": 4,
      "budgets": {"nope": 1}}, "unknown_field"),
    ({"architecture": "SP-AR-RC", "width": 4,
      "budgets": {"monomial_budget": "1000"}}, "bad_request"),
    ({"architecture": "SP-AR-RC", "width": 4,
      "budgets": {"time_budget_s": True}}, "bad_request"),
    ({"architecture": "SP-AR-RC", "width": "4"}, "bad_request"),
    ({"architecture": "SP-AR-RC", "width": True}, "bad_request"),
    ({"architecture": 7, "width": 4}, "bad_request"),
    ({"architecture": "SP-AR-RC", "width": 4,
      "find_counterexample": "yes"}, "bad_request"),
    ({"architecture": "SP-AR-RC", "width": 4, "seed": "0"}, "bad_request"),
    ({"architecture": "SP-AR-RC", "width": 4,
      "specification": {"kind": "multiplier"}}, "bad_request"),
])
def test_malformed_documents_are_structured_400s(app, document, code):
    response = _post(app, "/v1/verify", document)
    assert response.status == 400
    assert _body(response)["error"]["code"] == code


def test_invalid_json_body_is_a_400(app):
    response = app.handle("POST", "/v1/verify", b"{not json")
    assert response.status == 400
    assert _body(response)["error"]["code"] == "invalid_json"


def test_unknown_architecture_and_method_are_400s(app):
    response = _post(app, "/v1/verify", {"architecture": "XX-YY-ZZ",
                                         "width": 4})
    assert response.status == 400
    assert _body(response)["error"]["code"] == "verification_error"
    response = _post(app, "/v1/verify", {"architecture": "SP-AR-RC",
                                         "width": 4, "method": "no-such"})
    assert response.status == 400


# -- routing -------------------------------------------------------------------

def test_unknown_route_is_404(app):
    response = app.handle("GET", "/v2/verify")
    assert response.status == 404
    assert _body(response)["error"]["code"] == "not_found"


def test_wrong_method_is_405(app):
    response = app.handle("PUT", "/v1/verify")
    assert response.status == 405
    assert _body(response)["error"]["code"] == "method_not_allowed"
    response = app.handle("POST", "/healthz")
    assert response.status == 405
    response = app.handle("DELETE", "/v1/jobs/xyz")
    assert response.status == 405


def test_unknown_job_is_404(app):
    response = app.handle("GET", "/v1/jobs/no-such-job")
    assert response.status == 404
    assert _body(response)["error"]["code"] == "job_not_found"


# -- introspection endpoints ---------------------------------------------------

def test_healthz_reports_ok_and_job_store(app):
    response = app.handle("GET", "/healthz")
    assert response.status == 200
    document = _body(response)
    assert document["status"] == "ok"
    assert document["jobs"]["stored"] == 0
    assert document["uptime_s"] >= 0


def test_backends_mirror_the_registry(app):
    document = _body(app.handle("GET", "/v1/backends"))
    assert [entry["name"] for entry in document["backends"]] == \
        list(backend_names())
    by_name = {entry["name"]: entry for entry in document["backends"]}
    assert by_name["mt-lr"]["kind"] == "algebraic"
    assert by_name["mt-lr"]["supports_counterexample"] is True
    assert "monomial_budget" in by_name["mt-lr"]["budget_keys"]
    assert by_name["bdd-cec"]["budget_keys"] == ["bdd_node_budget"]
    assert all(entry["description"] for entry in document["backends"])


# -- verify / batch ------------------------------------------------------------

_TIMING_KEYS = ("time", "time_s", "reduction_time_s", "rewrite_time_s",
                "conflicts", "decisions")


def _stable(document: dict) -> dict:
    masked = {key: ("*" if key in _TIMING_KEYS else value)
              for key, value in document.items()}
    masked["counters"] = {key: ("*" if key in _TIMING_KEYS else value)
                          for key, value in document.get("counters", {}).items()}
    return masked


def test_verify_body_is_the_canonical_report_json(app):
    document = {"architecture": "SP-AR-RC", "width": 4, "method": "mt-lr"}
    response = _post(app, "/v1/verify", document)
    assert response.status == 200
    report = VerificationReport.from_json(response.body.decode("utf-8"))
    # Canonical serialization: the body is exactly to_json() of the report.
    assert response.body == report.to_json().encode("utf-8")
    direct = VerificationService().submit(parse_request_document(document))
    assert _stable(report.to_dict()) == _stable(direct.to_dict())


def test_verify_reports_refutation_with_counterexample(app):
    from repro.circuit.verilog import write_verilog
    from repro.generators.multipliers import generate_multiplier
    from tests.server.test_http import observable_bug

    buggy = observable_bug(generate_multiplier("SP-AR-RC", 3))
    response = _post(app, "/v1/verify", {"verilog_text": write_verilog(buggy),
                                         "method": "mt-lr"})
    assert response.status == 200          # transport ok; verdict in the body
    report = VerificationReport.from_json(response.body.decode("utf-8"))
    assert report.verdict == "refuted"
    assert report.counterexample is not None


def test_batch_envelope_reports_serialize_byte_identically(app):
    documents = [{"architecture": arch, "width": 3, "method": "mt-lr",
                  "find_counterexample": False}
                 for arch in ("SP-AR-RC", "SP-WT-CL")]
    response = _post(app, "/v1/batch", {"requests": documents})
    assert response.status == 200
    envelope = _body(response)
    assert {"reports", "cache_hits", "executed"} <= set(envelope)
    for entry in envelope["reports"]:
        report = VerificationReport.from_dict(entry)
        assert json.dumps(entry, ensure_ascii=False,
                          separators=(",", ":")) == report.to_json()
        assert report.verdict == "verified"


@pytest.mark.parametrize("document,code", [
    ({"requests": []}, "bad_request"),
    ({"requests": "SP-AR-RC"}, "bad_request"),
    ({}, "bad_request"),
    ({"requests": [{"architecture": "SP-AR-RC", "width": 3}], "jobs": 0},
     "bad_request"),
    ({"requests": [{"architecture": "SP-AR-RC", "width": 3}], "jobs": True},
     "bad_request"),
    ({"requests": [{"architecture": "SP-AR-RC", "width": 3}], "extra": 1},
     "unknown_field"),
])
def test_malformed_batches_are_structured_400s(app, document, code):
    response = _post(app, "/v1/batch", document)
    assert response.status == 400
    assert _body(response)["error"]["code"] == code


def test_metrics_count_requests_reports_and_errors(app):
    _post(app, "/v1/verify", {"architecture": "SP-AR-RC", "width": 3,
                              "method": "mt-lr"})
    _post(app, "/v1/verify", {"bogus": True})
    app.handle("GET", "/nowhere")
    metrics = _body(app.handle("GET", "/metrics"))
    assert metrics["http"]["requests_total"] == 4
    assert metrics["http"]["errors_total"] == 2
    assert metrics["reports"]["total"] == 1
    assert metrics["reports"]["verdicts"]["verified"] == 1
    assert metrics["jobs"]["stored"] == 0
    assert metrics["pool"]["jobs"] == 1
