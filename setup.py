"""Setup shim.

The project is fully described by ``pyproject.toml``; this file only exists
so that editable installs keep working on environments whose setuptools/pip
combination cannot build PEP 660 editable wheels offline
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
