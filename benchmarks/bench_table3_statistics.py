"""Table III — statistics of the MT-LR algorithm.

For each architecture the paper reports the number of vanishing monomials
cancelled by the XOR-AND rule (#CVM), the run-time of the GB reduction after
logic-reduction rewriting, and the size of the rewritten model (#P, #M, #MP,
#VM).  The benchmark regenerates those columns at the configured widths and
checks the qualitative claims of the paper's discussion:

* designs with carry look-ahead / Kogge-Stone final adders have the largest
  number of vanishing monomials,
* the GB reduction accounts for only part of the total run-time (most is
  spent in rewriting at small widths the split is less extreme, so the check
  is on the reduction being bounded by the total).
"""

from __future__ import annotations

import pytest

from _harness import bench_config, record_row
from repro.experiments.runner import run_membership_testing
from repro.generators.catalog import TABLE3_ARCHITECTURES

CONFIG = bench_config()
WIDTH = max(CONFIG.widths)
ROWS: dict[str, dict] = {}


@pytest.mark.parametrize("architecture", TABLE3_ARCHITECTURES)
def test_table3_statistics(benchmark, architecture):
    row = benchmark.pedantic(
        run_membership_testing, args=(architecture, WIDTH, "mt-lr", CONFIG),
        rounds=1, iterations=1)
    assert row["status"] == "ok"
    ROWS[architecture] = row
    record_row("Table III (MT-LR statistics)", {
        "benchmark": architecture,
        "bits": f"{WIDTH}/{2 * WIDTH}",
        "#CVM": row["cancelled_vanishing_monomials"],
        "GB reduction": f"{row['reduction_time_s']:.2f}s",
        "#P": row["num_polynomials"],
        "#M": row["num_monomials"],
        "#MP": row["max_polynomial_terms"],
        "#VM": row["max_monomial_variables"],
    })
    assert row["cancelled_vanishing_monomials"] > 0
    assert row["num_polynomials"] > 0
    assert row["max_monomial_variables"] >= 2
    assert row["reduction_time_s"] <= row["time_s"]


def test_table3_prefix_adders_cancel_the_most_vanishing_monomials():
    """Paper: CL/KS-based designs show the largest #CVM values."""
    if len(ROWS) < len(TABLE3_ARCHITECTURES):
        pytest.skip("statistics rows not collected (benchmark-only filtering)")
    kogge_stone = ROWS["BP-RT-KS"]["cancelled_vanishing_monomials"]
    brent_kung = ROWS["SP-CT-BK"]["cancelled_vanishing_monomials"]
    assert kogge_stone > brent_kung
