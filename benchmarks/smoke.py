#!/usr/bin/env python
"""CI benchmark smoke run: trimmed 4-bit Table I rows with a regression gate.

Runs the Table I architectures at 4 bits with MT-LR and MT-FO through the
:class:`~repro.experiments.runner.ParallelRunner`, writes the rows (with
timings and the deterministic model counters) to a ``BENCH_*.json`` file,
and — when a committed baseline exists — fails on:

* any verdict change versus the baseline,
* any change in the deterministic counters (substitution counts, peak
  remainder sizes, #CVM), or
* a wall-clock regression of more than ``--tolerance`` (default 20%).

Raw CI runner speeds vary between machines, so the time gate is
*calibrated*: the script times a fixed reference workload, stores it in the
result file, and scales the baseline timings by the ratio of the two
calibrations before applying the tolerance.

Usage::

    PYTHONPATH=src python benchmarks/smoke.py \
        --output BENCH_smoke.json \
        --baseline benchmarks/baselines/BENCH_smoke_baseline.json

    # refresh the committed baseline after an intentional perf change
    PYTHONPATH=src python benchmarks/smoke.py \
        --output benchmarks/baselines/BENCH_smoke_baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.experiments.runner import (
    ExperimentConfig,
    ParallelRunner,
    run_membership_testing,
)
from repro.generators.catalog import TABLE1_ARCHITECTURES

#: Deterministic per-row counters that must not change without review.
COUNTER_KEYS = (
    "cancelled_vanishing_monomials",
    "num_polynomials",
    "num_monomials",
    "max_polynomial_terms",
    "max_monomial_variables",
    "peak_remainder",
)

SMOKE_WIDTH = 4
SMOKE_METHODS = ("mt-lr", "mt-fo")


def _calibrate(config: ExperimentConfig, repeats: int = 5) -> float:
    """Time a fixed reference workload (seconds, best of ``repeats``)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_membership_testing("SP-AR-RC", SMOKE_WIDTH, "mt-lr", config)
        best = min(best, time.perf_counter() - start)
    return best


def _vanishing_microbench(repeats: int = 7) -> dict:
    """Micro-benchmark of ``VanishingRules.is_vanishing_mask`` itself.

    The implied-literal rule is the dominant per-monomial cost of 16-bit
    MT-LR rewriting, so the regression gate covers it directly: a
    deterministic sample of monomials (pairwise products of the 8-bit
    SP-DT-HC model's tail monomials) is classified on a cold cache, best of
    ``repeats``.  The per-sample verdict counts are returned alongside the
    timing so a semantic change to the rule fails the gate even on a fast
    machine.
    """
    from repro.generators.multipliers import generate_multiplier
    from repro.modeling.model import AlgebraicModel
    from repro.verification.vanishing import VanishingRules

    model = AlgebraicModel.from_netlist(generate_multiplier("SP-DT-HC", 8))
    masks = sorted({mask for tail in model.tails.values()
                    for mask in tail.masks() if mask})
    sample = [first | second
              for index, first in enumerate(masks[:256])
              for second in masks[index + 1:index + 9]]
    best = float("inf")
    vanishing_count = 0
    for _ in range(repeats):
        rules = VanishingRules(model)
        is_vanishing_mask = rules.is_vanishing_mask
        start = time.perf_counter()
        vanishing_count = sum(1 for mask in sample if is_vanishing_mask(mask))
        best = min(best, time.perf_counter() - start)
    return {"seconds": best, "samples": len(sample),
            "vanishing": vanishing_count}


def run_smoke(jobs: int, widths: tuple[int, ...] = (SMOKE_WIDTH,),
              task_timeout_s: float | None = None) -> dict:
    """Execute the benchmark grid and return the result document.

    The default single 4-bit width is the CI smoke gate; the scheduled wide
    run passes ``widths=(8, 16)`` to produce the ``BENCH_wide`` trend
    artifact (no committed baseline, so no gate).  ``task_timeout_s`` is
    the runner's hard per-job wall-clock limit — unlike the in-process
    ``REPRO_BENCH_TIMEOUT`` budget it preempts a job wedged inside one
    giant substitution step by killing the worker.
    """
    config = ExperimentConfig.from_environment()
    config.widths = tuple(widths)
    # Never serve cached rows here: the whole point of the benchmark is to
    # time fresh runs, and a REPRO_BENCH_CACHE exported for table work must
    # not leak stale timings into the baseline or the regression gate.
    config.cache_dir = None
    calibration_s = _calibrate(config)
    vanishing_bench = _vanishing_microbench()
    runner = ParallelRunner(config, workers=jobs,
                            task_timeout_s=task_timeout_s)
    grid = ParallelRunner.catalog(TABLE1_ARCHITECTURES, config.widths,
                                  SMOKE_METHODS)
    start = time.perf_counter()
    rows = runner.run(grid)
    total_s = time.perf_counter() - start
    # Summed per-row time is independent of the worker count, so the gate
    # compares like with like even when baseline and CI use different --jobs.
    work_s = sum(row["time_s"] for row in rows if row.get("time_s"))
    return {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "jobs": jobs,
            "widths": list(config.widths),
            "methods": list(SMOKE_METHODS),
            "calibration_s": calibration_s,
        },
        "total_s": total_s,
        "work_s": work_s,
        "vanishing_bench": vanishing_bench,
        "rows": rows,
    }


def _row_key(row: dict) -> str:
    return f"{row['architecture']}-{row['width']}-{row['method']}"


def compare_to_baseline(result: dict, baseline: dict,
                        tolerance: float) -> list[str]:
    """Return a list of failure messages (empty = gate passed)."""
    failures: list[str] = []
    baseline_rows = {_row_key(row): row for row in baseline["rows"]}
    result_keys = {_row_key(row) for row in result["rows"]}
    for key in baseline_rows:
        if key not in result_keys:
            failures.append(f"{key}: present in baseline but missing from "
                            "this run (grid coverage shrank)")
    for row in result["rows"]:
        key = _row_key(row)
        expected = baseline_rows.get(key)
        if expected is None:
            continue  # new grid cell: informational only
        if row["verified"] != expected["verified"]:
            failures.append(
                f"{key}: verdict changed "
                f"{expected['verified']!r} -> {row['verified']!r}")
        for counter in COUNTER_KEYS:
            if counter in expected and row.get(counter) != expected[counter]:
                failures.append(
                    f"{key}: {counter} changed "
                    f"{expected[counter]!r} -> {row.get(counter)!r}")
    if result["meta"]["jobs"] != baseline["meta"].get("jobs"):
        # Worker counts change both wall-clock and (under core
        # oversubscription) per-row times, so cross-jobs timing comparisons
        # are meaningless; verdicts and counters above are still gated.
        print(f"note: jobs mismatch (run {result['meta']['jobs']} vs "
              f"baseline {baseline['meta'].get('jobs')}); time gate skipped",
              file=sys.stderr)
        return failures
    calibration = result["meta"]["calibration_s"]
    baseline_calibration = baseline["meta"].get("calibration_s")
    scale = (calibration / baseline_calibration
             if baseline_calibration else 1.0)
    # Gate on the summed per-row time (wall-clock-scheduling independent),
    # falling back to the total for baselines predating ``work_s``.
    metric = "work_s" if "work_s" in baseline else "total_s"
    budget = baseline[metric] * scale * (1.0 + tolerance)
    if result[metric] > budget:
        failures.append(
            f"{metric} {result[metric]:.3f}s exceeds budget "
            f"{budget:.3f}s (baseline {baseline[metric]:.3f}s x "
            f"machine-speed scale {scale:.2f} x tolerance "
            f"{1.0 + tolerance:.2f})")
    base_bench = baseline.get("vanishing_bench")
    bench = result.get("vanishing_bench")
    if base_bench and bench:
        for counter in ("samples", "vanishing"):
            if bench.get(counter) != base_bench.get(counter):
                failures.append(
                    f"vanishing_bench {counter} changed "
                    f"{base_bench.get(counter)!r} -> {bench.get(counter)!r}")
        # A ~2 ms micro-benchmark is noisier than the multi-row aggregate,
        # so it gets twice the relative headroom.
        bench_budget = base_bench["seconds"] * scale * (1.0 + 2 * tolerance)
        if bench["seconds"] > bench_budget:
            failures.append(
                f"vanishing_bench {bench['seconds'] * 1000:.2f}ms exceeds "
                f"budget {bench_budget * 1000:.2f}ms (baseline "
                f"{base_bench['seconds'] * 1000:.2f}ms x scale {scale:.2f} "
                f"x tolerance {1.0 + tolerance:.2f})")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", "-o", default="BENCH_smoke.json")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to gate against (skipped when "
                             "the file does not exist)")
    parser.add_argument("--jobs", "-j", type=int,
                        default=int(os.environ.get("REPRO_BENCH_JOBS", "1")))
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get(
                            "REPRO_SMOKE_TOLERANCE", "0.20")),
                        help="allowed relative time regression (default 0.20)")
    parser.add_argument("--widths", default=os.environ.get(
                            "REPRO_BENCH_BITS", str(SMOKE_WIDTH)),
                        help="comma-separated operand widths "
                             f"(default {SMOKE_WIDTH}; the scheduled wide "
                             "run uses 8,16)")
    parser.add_argument("--allow-timeouts", action="store_true",
                        help="report TO rows as data instead of failures "
                             "(the wide trend run: MT-FO legitimately blows "
                             "up at 16 bits, as in the paper's tables)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        help="hard per-job wall-clock limit in seconds, "
                             "enforced by killing the worker (needed for "
                             "wide runs where a blow-up can wedge a job "
                             "inside one substitution step)")
    args = parser.parse_args(argv)

    widths = tuple(int(w) for w in str(args.widths).split(",") if w.strip())
    result = run_smoke(args.jobs, widths=widths or (SMOKE_WIDTH,),
                       task_timeout_s=args.task_timeout)
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(result, indent=2, default=str) + "\n",
                      encoding="utf-8")
    print(f"wrote {output} (total {result['total_s']:.3f}s, "
          f"calibration {result['meta']['calibration_s'] * 1000:.1f}ms)")

    bad = [row for row in result["rows"] if row["verified"] is not True]
    if args.allow_timeouts:
        bad = [row for row in bad if row["status"] != "TO"]
    for row in bad:
        print(f"FAIL {_row_key(row)}: status={row['status']} "
              f"reason={row.get('reason', '-')}", file=sys.stderr)
    if bad:
        return 1

    if args.baseline and Path(args.baseline).exists():
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        failures = compare_to_baseline(result, baseline, args.tolerance)
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"baseline gate passed ({args.baseline})")
    elif args.baseline:
        print(f"baseline {args.baseline} not found; gate skipped")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
