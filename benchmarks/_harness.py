"""Shared helpers of the benchmark harness (budgets and row collection)."""

from __future__ import annotations

import os
from collections import defaultdict

from repro.experiments.runner import ExperimentConfig

#: Rows collected by the individual benchmarks, keyed by table name.
COLLECTED: dict[str, list[dict]] = defaultdict(list)


def bench_config() -> ExperimentConfig:
    """Benchmark-wide budgets (environment-overridable, see conftest docstring)."""
    config = ExperimentConfig.from_environment()
    if "REPRO_BENCH_TIMEOUT" not in os.environ:
        config.time_budget_s = 20.0
    if "REPRO_BENCH_SAT_CONFLICTS" not in os.environ:
        config.sat_conflict_budget = 20_000
    if "REPRO_BENCH_MONOMIAL_BUDGET" not in os.environ:
        config.monomial_budget = 400_000
    return config


def record_row(table: str, row: dict) -> None:
    """Collect a result row and echo it immediately."""
    COLLECTED[table].append(row)
    cells = " ".join(f"{key}={value}" for key, value in row.items())
    print(f"[{table}] {cells}")
