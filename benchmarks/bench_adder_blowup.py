"""Section III analysis — vanishing monomials in parallel-prefix adders.

The paper motivates the logic-reduction rewriting with the observation (and
reference [8]) that symbolic computer algebra cannot verify Kogge-Stone
adders beyond about 6 bits because the vanishing monomials of the carry
network blow up during reduction.  This benchmark sweeps adder widths for
MT-Naive, MT-FO and MT-LR and checks the expected shape: MT-LR scales to
every width while the baselines hit the monomial budget once the prefix
network is wide enough.
"""

from __future__ import annotations

import pytest

from _harness import record_row
from repro.api.request import Budgets
from repro.errors import BlowUpError
from repro.generators.adders import generate_adder
from repro.verification.engine import verify_adder

WIDTHS = (4, 8, 16, 24, 32)
METHODS = ("mt-naive", "mt-fo", "mt-lr")
MONOMIAL_BUDGET = 100_000
TIME_BUDGET_S = 15.0
RESULTS: dict[tuple[str, int], str] = {}


def _run(method: str, width: int) -> dict:
    netlist = generate_adder("KS", width)
    try:
        result = verify_adder(netlist, method=method,
                              budgets=Budgets(monomial_budget=MONOMIAL_BUDGET,
                                              time_budget_s=TIME_BUDGET_S),
                              find_counterexample=False)
        return {"status": "ok", "verified": result.verified,
                "time_s": result.total_time_s,
                "peak": result.reduction_trace.peak_monomials}
    except BlowUpError:
        return {"status": "TO", "verified": None, "time_s": None, "peak": None}


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("method", METHODS)
def test_kogge_stone_adder_scaling(benchmark, method, width):
    row = benchmark.pedantic(_run, args=(method, width), rounds=1, iterations=1)
    RESULTS[(method, width)] = row["status"]
    record_row("Kogge-Stone adder scaling (Section III)", {
        "adder": f"KS-{width}", "method": method, "status": row["status"],
        "peak monomials": row["peak"] if row["peak"] is not None else f">{MONOMIAL_BUDGET}",
    })
    if method == "mt-lr":
        assert row["status"] == "ok" and row["verified"] is True
    else:
        assert row["status"] in ("ok", "TO")


def test_mt_lr_scales_further_than_the_baselines():
    """MT-LR must verify at least as many widths as either baseline."""
    if len(RESULTS) < len(WIDTHS) * len(METHODS):
        pytest.skip("scaling rows not collected (benchmark-only filtering)")

    def verified_widths(method):
        return {w for w in WIDTHS if RESULTS[(method, w)] == "ok"}

    assert verified_widths("mt-lr") == set(WIDTHS)
    assert verified_widths("mt-naive") <= verified_widths("mt-lr")
    assert verified_widths("mt-fo") <= verified_widths("mt-lr")
