"""Table I — verification of simple-partial-product multipliers.

Paper columns: Commercial, CPP [13], MT-FO [7], MT-LR.
Reproduction columns: SAT-miter CEC and BDD CEC (conventional-equivalence
stand-ins, see DESIGN.md §3), MT-FO and MT-LR, at the widths configured via
``REPRO_BENCH_BITS`` (default 4 and 8 bit operands).

Expected shape (matching the paper): MT-LR verifies every architecture;
MT-FO only survives the array/ripple-carry design; the conventional checkers
degrade quickly with the operand width.
"""

from __future__ import annotations

import pytest

from _harness import bench_config, record_row
from repro.experiments.runner import (
    run_bdd_cec,
    run_membership_testing,
    run_sat_cec,
)
from repro.generators.catalog import TABLE1_ARCHITECTURES

CONFIG = bench_config()
GRID = [(arch, width) for width in CONFIG.widths for arch in TABLE1_ARCHITECTURES]


def _ids(grid):
    return [f"{arch}-{width}x{width}" for arch, width in grid]


@pytest.mark.parametrize("architecture,width", GRID, ids=_ids(GRID))
def test_table1_mt_lr(benchmark, architecture, width):
    """MT-LR column of Table I (must verify every architecture)."""
    row = benchmark.pedantic(
        run_membership_testing, args=(architecture, width, "mt-lr", CONFIG),
        rounds=1, iterations=1)
    record_row("Table I (MT-LR)", {
        "benchmark": architecture, "bits": f"{width}/{2 * width}",
        "time": row["time"], "#CVM": row.get("cancelled_vanishing_monomials", "-")})
    assert row["status"] == "ok" and row["verified"] is True


@pytest.mark.parametrize("architecture,width", GRID, ids=_ids(GRID))
def test_table1_mt_fo(benchmark, architecture, width):
    """MT-FO column of Table I (expected to time out on parallel designs)."""
    row = benchmark.pedantic(
        run_membership_testing, args=(architecture, width, "mt-fo", CONFIG),
        rounds=1, iterations=1)
    record_row("Table I (MT-FO)", {
        "benchmark": architecture, "bits": f"{width}/{2 * width}",
        "time": row["time"]})
    assert row["status"] in ("ok", "TO")
    if row["status"] == "ok":
        assert row["verified"] is True


@pytest.mark.parametrize("architecture,width",
                         [(a, w) for a, w in GRID if w <= min(CONFIG.widths)],
                         ids=_ids([(a, w) for a, w in GRID
                                   if w <= min(CONFIG.widths)]))
def test_table1_sat_cec(benchmark, architecture, width):
    """Conventional-CEC stand-in column (commercial / ABC cec)."""
    row = benchmark.pedantic(run_sat_cec, args=(architecture, width, CONFIG),
                             rounds=1, iterations=1)
    record_row("Table I (SAT CEC)", {
        "benchmark": architecture, "bits": f"{width}/{2 * width}",
        "time": row["time"], "conflicts": row.get("conflicts", "-")})
    assert row["status"] in ("ok", "TO")


@pytest.mark.parametrize("architecture,width",
                         [(a, w) for a, w in GRID if w <= min(CONFIG.widths)],
                         ids=_ids([(a, w) for a, w in GRID
                                   if w <= min(CONFIG.widths)]))
def test_table1_bdd_cec(benchmark, architecture, width):
    """Decision-diagram baseline (the blow-up cited in the introduction)."""
    row = benchmark.pedantic(run_bdd_cec, args=(architecture, width, CONFIG),
                             rounds=1, iterations=1)
    record_row("Table I (BDD CEC)", {
        "benchmark": architecture, "bits": f"{width}/{2 * width}",
        "time": row["time"], "nodes": row.get("bdd_nodes", "-")})
    assert row["status"] in ("ok", "TO")
