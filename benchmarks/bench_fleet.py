#!/usr/bin/env python
"""Fleet scaling benchmark: 1-worker vs 2-worker loopback dispatch.

ISSUE 9 gate — boots real ``repro-verify serve`` worker *processes*
(separate interpreters, so loopback workers genuinely run on separate
cores) and scatters an 8-bit Table I slice through
:class:`repro.fleet.FleetDispatcher`, once over one worker and once over
two.  Emits ``BENCH_fleet.json`` with both wall-clocks and the speedup.

Loopback workers still share one machine, so the interesting numbers are
the dispatch overhead (fleet wall-clock vs the in-process service on the
same rows) and the 1→2 scaling trend, not the absolute factor — real
fleets put workers on separate hosts.  Reported, not hard-gated: CI
runner core counts vary.

Run manually (not part of the tier-1 suite)::

    PYTHONPATH=src python benchmarks/bench_fleet.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import time
from pathlib import Path

from repro.api.request import VerificationRequest
from repro.api.service import VerificationService
from repro.fleet import FleetDispatcher, FleetTopology

REPO_ROOT = Path(__file__).resolve().parent.parent

WIDTH = 8
#: mt-fo (no logic reduction) is the slow-but-bounded backend at 8 bits —
#: 0.2–5 s per row on these architectures, so a 2-worker split is visible
#: over the dispatch overhead (mt-lr rows finish in ~20 ms and would not
#: be).
METHOD = "mt-fo"
ARCHITECTURES = ("SP-AR-RC", "SP-AR-CL", "SP-AR-BK", "SP-AR-KS",
                 "BP-AR-RC", "BP-AR-CL", "BP-AR-BK", "BP-WT-CL")


def spawn_worker() -> tuple[subprocess.Popen, int]:
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        cwd=REPO_ROOT, env=environment, text=True)
    announce = process.stderr.readline()
    match = re.search(r"http://[\d.]+:(\d+)", announce)
    if match is None:
        process.kill()
        raise RuntimeError(f"worker did not announce a port: {announce!r}")
    return process, int(match.group(1))


def grid_requests() -> list[VerificationRequest]:
    return [VerificationRequest.from_architecture(
        architecture, WIDTH, METHOD, find_counterexample=False)
        for architecture in ARCHITECTURES]


def run_fleet(worker_count: int) -> float:
    """Wall-clock of the grid over ``worker_count`` fresh worker processes."""
    workers = [spawn_worker() for _ in range(worker_count)]
    try:
        topology = FleetTopology.from_document({"workers": [
            {"name": f"w{index}", "port": port}
            for index, (_, port) in enumerate(workers)]})
        dispatcher = FleetDispatcher(topology)
        start = time.perf_counter()
        reports = dispatcher.run_batch(grid_requests())
        elapsed = time.perf_counter() - start
        assert all(report.verdict == "verified" for report in reports)
        assert dispatcher.last_executed == len(ARCHITECTURES)
        return elapsed
    finally:
        for process, _ in workers:
            process.terminate()
        for process, _ in workers:
            process.wait(timeout=30)


def run_local() -> float:
    """In-process baseline on the same rows (no HTTP, no fleet)."""
    service = VerificationService()
    start = time.perf_counter()
    reports = service.run_batch(grid_requests())
    elapsed = time.perf_counter() - start
    assert all(report.verdict == "verified" for report in reports)
    return elapsed


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", "-o", default="BENCH_fleet.json")
    args = parser.parse_args(argv)

    local_s = run_local()
    print(f"local in-process      {len(ARCHITECTURES)} rows  "
          f"{local_s:6.2f}s")
    one_s = run_fleet(1)
    print(f"fleet, 1 worker       {len(ARCHITECTURES)} rows  {one_s:6.2f}s  "
          f"(dispatch overhead {one_s - local_s:+.2f}s)")
    two_s = run_fleet(2)
    speedup = one_s / two_s
    cores = (len(os.sched_getaffinity(0))
             if hasattr(os, "sched_getaffinity") else os.cpu_count())
    print(f"fleet, 2 workers      {len(ARCHITECTURES)} rows  {two_s:6.2f}s  "
          f"(speedup x{speedup:.2f} over 1 worker, {cores} core(s) "
          f"available)")

    result = {
        "benchmark": "fleet",
        "width": WIDTH,
        "method": METHOD,
        "architectures": list(ARCHITECTURES),
        "local_s": round(local_s, 4),
        "fleet_1_worker_s": round(one_s, 4),
        "fleet_2_workers_s": round(two_s, 4),
        "speedup_2_over_1": round(speedup, 4),
        # Loopback workers share this machine: speedup is bounded by the
        # cores actually available, so record them alongside the factor.
        "cpu_count": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity") else os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    Path(args.output).write_text(json.dumps(result, indent=2) + "\n",
                                 encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
