"""Ablation — the two passes of logic-reduction rewriting (Section IV-B).

The paper argues that XOR rewriting alone "makes the verification
inefficient" and that the common-rewriting pass is needed to re-enable the
cancellation of shared sub-terms.  This benchmark compares, per architecture:

* ``mt-fo``   — fanout rewriting only (no vanishing rule),
* ``mt-xor``  — XOR rewriting with the vanishing rule, no common rewriting,
* ``mt-lr``   — the full scheme,

and additionally measures the effect of restricting the vanishing rule to
the literal XOR-AND pattern of the paper (``xor_and_only``).
"""

from __future__ import annotations

import time

import pytest

from _harness import bench_config, record_row
from repro.api.request import Budgets
from repro.errors import BlowUpError
from repro.experiments.runner import run_membership_testing
from repro.generators.multipliers import generate_multiplier
from repro.verification.engine import verify_multiplier

CONFIG = bench_config()
WIDTH = max(CONFIG.widths)
ARCHITECTURES = ("SP-CT-BK", "BP-WT-CL", "SP-RT-KS")
METHODS = ("mt-fo", "mt-xor", "mt-lr")
PEAKS: dict[tuple[str, str], int | None] = {}


@pytest.mark.parametrize("architecture", ARCHITECTURES)
@pytest.mark.parametrize("method", METHODS)
def test_rewriting_ablation(benchmark, method, architecture):
    row = benchmark.pedantic(
        run_membership_testing, args=(architecture, WIDTH, method, CONFIG),
        rounds=1, iterations=1)
    PEAKS[(architecture, method)] = row.get("peak_remainder")
    record_row("Rewriting ablation (Section IV-B)", {
        "benchmark": architecture, "bits": f"{WIDTH}/{2 * WIDTH}",
        "method": method, "time": row["time"],
        "peak remainder": row.get("peak_remainder", "-"),
    })
    if method == "mt-lr":
        assert row["status"] == "ok" and row["verified"] is True
    else:
        assert row["status"] in ("ok", "TO")


def test_full_scheme_never_does_worse_than_partial_schemes():
    if len(PEAKS) < len(ARCHITECTURES) * len(METHODS):
        pytest.skip("ablation rows not collected (benchmark-only filtering)")
    for architecture in ARCHITECTURES:
        full = PEAKS[(architecture, "mt-lr")]
        assert full is not None, "the full scheme must not time out"


def _verify_with_rule_mode(architecture: str, xor_and_only: bool) -> dict:
    netlist = generate_multiplier(architecture, WIDTH)
    start = time.perf_counter()
    try:
        result = verify_multiplier(netlist, method="mt-lr",
                                   budgets=Budgets.from_config(CONFIG),
                                   xor_and_only=xor_and_only,
                                   find_counterexample=False)
        return {"status": "ok" if result.verified else "mismatch",
                "cvm": result.cancelled_vanishing_monomials,
                "time_s": time.perf_counter() - start}
    except BlowUpError:
        return {"status": "TO", "cvm": None,
                "time_s": time.perf_counter() - start}


@pytest.mark.parametrize("xor_and_only", (False, True),
                         ids=("generalised-rule", "paper-rule-only"))
def test_vanishing_rule_variants(benchmark, xor_and_only):
    """Ablation of the implied-literal generalisation vs. the literal XOR-AND rule."""
    row = benchmark.pedantic(_verify_with_rule_mode,
                             args=("SP-CT-BK", xor_and_only),
                             rounds=1, iterations=1)
    record_row("Vanishing-rule ablation", {
        "benchmark": "SP-CT-BK", "bits": f"{WIDTH}/{2 * WIDTH}",
        "rule": "XOR-AND only" if xor_and_only else "implied literals",
        "status": row["status"], "#CVM": row["cvm"],
    })
    assert row["status"] in ("ok", "TO")
