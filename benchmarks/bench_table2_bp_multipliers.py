"""Table II — verification of Booth-partial-product multipliers.

Paper shape: only MT-LR verifies the Booth designs once they reach relevant
sizes; the CPP approach is not applicable to Booth recoding at all (reported
as "-"), and MT-FO times out everywhere.
"""

from __future__ import annotations

import pytest

from _harness import bench_config, record_row
from repro.experiments.runner import run_membership_testing, run_sat_cec
from repro.generators.catalog import TABLE2_ARCHITECTURES

CONFIG = bench_config()
GRID = [(arch, width) for width in CONFIG.widths for arch in TABLE2_ARCHITECTURES]


def _ids(grid):
    return [f"{arch}-{width}x{width}" for arch, width in grid]


@pytest.mark.parametrize("architecture,width", GRID, ids=_ids(GRID))
def test_table2_mt_lr(benchmark, architecture, width):
    """MT-LR column of Table II (must verify every Booth architecture)."""
    row = benchmark.pedantic(
        run_membership_testing, args=(architecture, width, "mt-lr", CONFIG),
        rounds=1, iterations=1)
    record_row("Table II (MT-LR)", {
        "benchmark": architecture, "bits": f"{width}/{2 * width}",
        "time": row["time"], "#CVM": row.get("cancelled_vanishing_monomials", "-")})
    assert row["status"] == "ok" and row["verified"] is True


@pytest.mark.parametrize("architecture,width", GRID, ids=_ids(GRID))
def test_table2_mt_fo(benchmark, architecture, width):
    """MT-FO column of Table II (the paper reports TO on every Booth design)."""
    row = benchmark.pedantic(
        run_membership_testing, args=(architecture, width, "mt-fo", CONFIG),
        rounds=1, iterations=1)
    record_row("Table II (MT-FO)", {
        "benchmark": architecture, "bits": f"{width}/{2 * width}",
        "time": row["time"]})
    assert row["status"] in ("ok", "TO")


@pytest.mark.parametrize("architecture,width",
                         [(a, w) for a, w in GRID if w <= min(CONFIG.widths)],
                         ids=_ids([(a, w) for a, w in GRID
                                   if w <= min(CONFIG.widths)]))
def test_table2_cpp_standin_not_applicable(benchmark, architecture, width):
    """CPP column: not applicable to Booth partial products (reported '-')."""
    row = benchmark.pedantic(
        run_sat_cec, args=(architecture, width, CONFIG),
        kwargs={"booth_supported": False}, rounds=1, iterations=1)
    record_row("Table II (CPP stand-in)", {
        "benchmark": architecture, "bits": f"{width}/{2 * width}",
        "time": row["time"]})
    assert row["status"] == "n/a"


@pytest.mark.parametrize("architecture,width",
                         [(a, w) for a, w in GRID if w <= min(CONFIG.widths)],
                         ids=_ids([(a, w) for a, w in GRID
                                   if w <= min(CONFIG.widths)]))
def test_table2_sat_cec(benchmark, architecture, width):
    """Conventional-CEC stand-in column for the Booth designs."""
    row = benchmark.pedantic(run_sat_cec, args=(architecture, width, CONFIG),
                             rounds=1, iterations=1)
    record_row("Table II (SAT CEC)", {
        "benchmark": architecture, "bits": f"{width}/{2 * width}",
        "time": row["time"], "conflicts": row.get("conflicts", "-")})
    assert row["status"] in ("ok", "TO")
