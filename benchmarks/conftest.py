"""Pytest configuration of the benchmark harness.

The benchmarks regenerate the paper's evaluation tables at Python-feasible
operand widths.  Defaults keep the full ``pytest benchmarks/ --benchmark-only``
run in the ten-minute range; widen the sweep with::

    REPRO_BENCH_BITS="8,16,32" REPRO_BENCH_TIMEOUT=300 pytest benchmarks/ --benchmark-only

Each benchmark prints the paper-style row it measured, and the collected
rows are printed again as complete tables at the end of the session.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import COLLECTED  # noqa: E402  (path set up above)

from repro.experiments.tables import format_table  # noqa: E402


@pytest.fixture(scope="session", autouse=True)
def print_collected_tables():
    """Print and save every collected table when the benchmark session finishes.

    The paper-style tables are also written to ``bench_tables.txt`` next to
    this directory so they survive pytest's output capturing.
    """
    yield
    if not COLLECTED:
        return
    blocks = []
    for table in sorted(COLLECTED):
        blocks.append(format_table(COLLECTED[table], title=table))
        print()
        print(blocks[-1])
    output = Path(__file__).resolve().parent.parent / "bench_tables.txt"
    output.write_text("\n".join(blocks), encoding="utf-8")
