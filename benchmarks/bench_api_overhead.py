#!/usr/bin/env python
"""Façade-overhead check: service vs bare engine, plus loopback HTTP.

ISSUE 4 hygiene gate — the service layer (request resolution, registry
lookup, report construction) must add no measurable per-verify overhead.
Interleaved best-of-N on the 8-bit MT-LR smoke rows, asserting the service
path stays within ``--tolerance`` (default 2%) of the direct
``verify_multiplier`` call.

ISSUE 5 extension — a loopback-HTTP row per architecture: the same
architecture-sourced request through ``POST /v1/verify`` on an in-thread
server vs the in-process ``VerificationService.submit()``.  HTTP dispatch
cost (connection setup, JSON round trip, thread-pool hop) is constant per
request, so it is gated by the absolute ``--http-overhead-budget``
(default 50 ms) rather than a ratio.

ISSUE 8 extension — a resilience row per architecture: the service with
retry and fallback policies armed (but no faults firing) vs the plain
service, gated by the same relative ``--tolerance`` — fault tolerance
must be free on the happy path.

Run manually (not part of the tier-1 suite — wall-clock assertions are
machine-dependent)::

    PYTHONPATH=src python benchmarks/bench_api_overhead.py
"""

from __future__ import annotations

import argparse
import time

from repro.api import Budgets, VerificationRequest, VerificationService
from repro.generators.catalog import TABLE1_ARCHITECTURES
from repro.generators.multipliers import generate_multiplier
from repro.server import ServerThread, VerificationClient, VerificationServerApp
from repro.verification.engine import verify_multiplier

WIDTH = 8
METHOD = "mt-lr"


def bench_http_dispatch(repeats: int, budget_s: float) -> list[str]:
    """Loopback-HTTP dispatch cost per verify; returns failing rows."""
    failures = []
    with ServerThread(VerificationServerApp()) as server:
        client = VerificationClient(port=server.port)
        service = VerificationService()
        for architecture in TABLE1_ARCHITECTURES:
            document = {"architecture": architecture, "width": WIDTH,
                        "method": METHOD, "find_counterexample": False}
            request = VerificationRequest.from_architecture(
                architecture, WIDTH, method=METHOD,
                find_counterexample=False)
            best_local = best_http = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                report = service.submit(request)
                best_local = min(best_local, time.perf_counter() - start)
                assert report.verdict == "verified"

                start = time.perf_counter()
                report = client.verify(document)
                best_http = min(best_http, time.perf_counter() - start)
                assert report.verdict == "verified"
            dispatch = best_http - best_local
            marker = "" if dispatch <= budget_s else "  <-- FAIL"
            print(f"{architecture:<10} local={best_local * 1000:7.2f}ms "
                  f"http={best_http * 1000:7.2f}ms "
                  f"dispatch={dispatch * 1000:+7.2f}ms{marker}")
            if dispatch > budget_s:
                failures.append(architecture)
    return failures


def bench_keepalive(repeats: int) -> None:
    """Keep-alive vs one-connection-per-request, same loopback server.

    ISSUE 9 before/after number for the pooled-connection client: the
    per-request saving is the TCP setup (connect + first-byte latency)
    that ``keep_alive=False`` pays on every exchange.  Measured on the
    cheapest route (``GET /healthz``) so the transport cost is not
    hidden behind verification work.  Reported, not gated — loopback
    connect cost is too machine-dependent to assert on.
    """
    with ServerThread(VerificationServerApp()) as server:
        pooled = VerificationClient(port=server.port)
        fresh = VerificationClient(port=server.port, keep_alive=False)
        for client in (pooled, fresh):     # warm caches and the pool
            assert client.healthz()["status"] == "ok"
        best_pooled = best_fresh = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fresh.healthz()
            best_fresh = min(best_fresh, time.perf_counter() - start)

            start = time.perf_counter()
            pooled.healthz()
            best_pooled = min(best_pooled, time.perf_counter() - start)
        saving = best_fresh - best_pooled
        print(f"per-healthz  fresh-connection={best_fresh * 1000:7.2f}ms "
              f"keep-alive={best_pooled * 1000:7.2f}ms "
              f"saving={saving * 1000:+7.2f}ms")


def bench_resilience_overhead(repeats: int, tolerance: float) -> list[str]:
    """Happy-path cost of the armed resilience wrapper; failing rows.

    ISSUE 8 gate — with a retry policy and registry-derived fallback
    chains armed but no faults firing, the wrapper (budget-verdict check,
    policy lookups, attempts bookkeeping) must stay within ``tolerance``
    of the plain service on every row.
    """
    from repro.resilience.policy import FallbackPolicy, RetryPolicy
    plain = VerificationService()
    resilient = VerificationService(retry_policy=RetryPolicy(),
                                    fallback_policy=FallbackPolicy())
    failures = []
    for architecture in TABLE1_ARCHITECTURES:
        request = VerificationRequest.from_architecture(
            architecture, WIDTH, method=METHOD, find_counterexample=False)
        best_plain = best_resilient = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            report = plain.submit(request)
            best_plain = min(best_plain, time.perf_counter() - start)
            assert report.verdict == "verified"

            start = time.perf_counter()
            report = resilient.submit(request)
            best_resilient = min(best_resilient, time.perf_counter() - start)
            assert report.verdict == "verified"
            assert report.attempts is None  # no faults -> no history
        overhead = best_resilient / best_plain - 1.0
        marker = "" if overhead <= tolerance else "  <-- FAIL"
        print(f"{architecture:<10} plain={best_plain * 1000:7.2f}ms "
              f"resilient={best_resilient * 1000:7.2f}ms "
              f"overhead={overhead * 100:+.2f}%{marker}")
        if overhead > tolerance:
            failures.append(architecture)
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=60)
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed relative service overhead (default 2%%)")
    parser.add_argument("--http-repeats", type=int, default=20,
                        help="interleaved repeats of the loopback-HTTP row")
    parser.add_argument("--http-overhead-budget", type=float, default=0.050,
                        help="allowed absolute HTTP dispatch cost per "
                             "verify, in seconds (default 0.050)")
    args = parser.parse_args()

    service = VerificationService()
    budgets = Budgets()
    failures = []
    for architecture in TABLE1_ARCHITECTURES:
        netlist = generate_multiplier(architecture, WIDTH)
        request = VerificationRequest.from_netlist(netlist, method=METHOD,
                                                   budgets=budgets)
        best_direct = best_service = float("inf")
        # Interleaved so drift (thermal, scheduler) hits both paths alike.
        for _ in range(args.repeats):
            start = time.perf_counter()
            result = verify_multiplier(netlist, method=METHOD)
            best_direct = min(best_direct, time.perf_counter() - start)
            assert result.verified

            start = time.perf_counter()
            report = service.submit(request)
            best_service = min(best_service, time.perf_counter() - start)
            assert report.verdict == "verified"
        overhead = best_service / best_direct - 1.0
        marker = "" if overhead <= args.tolerance else "  <-- FAIL"
        print(f"{architecture:<10} direct={best_direct * 1000:7.2f}ms "
              f"service={best_service * 1000:7.2f}ms "
              f"overhead={overhead * 100:+.2f}%{marker}")
        if overhead > args.tolerance:
            failures.append(architecture)
    if failures:
        print(f"FAIL: service façade exceeds {args.tolerance:.0%} overhead "
              f"on {failures}")
        return 1
    print(f"ok: façade overhead within {args.tolerance:.0%} on all "
          f"{len(TABLE1_ARCHITECTURES)} rows")

    print("\nloopback HTTP dispatch (POST /v1/verify vs in-process submit):")
    http_failures = bench_http_dispatch(args.http_repeats,
                                        args.http_overhead_budget)
    if http_failures:
        print(f"FAIL: HTTP dispatch exceeds "
              f"{args.http_overhead_budget * 1000:.0f}ms on {http_failures}")
        return 1
    print(f"ok: HTTP dispatch within {args.http_overhead_budget * 1000:.0f}ms "
          f"on all {len(TABLE1_ARCHITECTURES)} rows")

    print("\nHTTP keep-alive (pooled connection vs connection-per-request):")
    bench_keepalive(args.http_repeats)

    print("\nresilience wrapper (retry+fallback armed, no faults) vs plain:")
    resilience_failures = bench_resilience_overhead(args.repeats,
                                                    args.tolerance)
    if resilience_failures:
        print(f"FAIL: resilience wrapper exceeds {args.tolerance:.0%} "
              f"overhead on {resilience_failures}")
        return 1
    print(f"ok: resilience wrapper within {args.tolerance:.0%} on all "
          f"{len(TABLE1_ARCHITECTURES)} rows")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
