#!/usr/bin/env python
"""Façade-overhead check: VerificationService vs the bare engine call.

ISSUE 4 hygiene gate — the service layer (request resolution, registry
lookup, report construction) must add no measurable per-verify overhead.
Interleaved best-of-N on the 8-bit MT-LR smoke rows, asserting the service
path stays within ``--tolerance`` (default 2%) of the direct
``verify_multiplier`` call.

Run manually (not part of the tier-1 suite — wall-clock assertions are
machine-dependent)::

    PYTHONPATH=src python benchmarks/bench_api_overhead.py
"""

from __future__ import annotations

import argparse
import time

from repro.api import Budgets, VerificationRequest, VerificationService
from repro.generators.catalog import TABLE1_ARCHITECTURES
from repro.generators.multipliers import generate_multiplier
from repro.verification.engine import verify_multiplier

WIDTH = 8
METHOD = "mt-lr"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=60)
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed relative service overhead (default 2%%)")
    args = parser.parse_args()

    service = VerificationService()
    budgets = Budgets()
    failures = []
    for architecture in TABLE1_ARCHITECTURES:
        netlist = generate_multiplier(architecture, WIDTH)
        request = VerificationRequest.from_netlist(netlist, method=METHOD,
                                                   budgets=budgets)
        best_direct = best_service = float("inf")
        # Interleaved so drift (thermal, scheduler) hits both paths alike.
        for _ in range(args.repeats):
            start = time.perf_counter()
            result = verify_multiplier(netlist, method=METHOD)
            best_direct = min(best_direct, time.perf_counter() - start)
            assert result.verified

            start = time.perf_counter()
            report = service.submit(request)
            best_service = min(best_service, time.perf_counter() - start)
            assert report.verdict == "verified"
        overhead = best_service / best_direct - 1.0
        marker = "" if overhead <= args.tolerance else "  <-- FAIL"
        print(f"{architecture:<10} direct={best_direct * 1000:7.2f}ms "
              f"service={best_service * 1000:7.2f}ms "
              f"overhead={overhead * 100:+.2f}%{marker}")
        if overhead > args.tolerance:
            failures.append(architecture)
    if failures:
        print(f"FAIL: service façade exceeds {args.tolerance:.0%} overhead "
              f"on {failures}")
        return 1
    print(f"ok: façade overhead within {args.tolerance:.0%} on all "
          f"{len(TABLE1_ARCHITECTURES)} rows")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
