#!/usr/bin/env python3
"""Quickstart: verify a multiplier with MT-LR and inspect the paper's Fig. 1.

Run with::

    python examples/quickstart.py
"""

from repro.api import VerificationRequest, VerificationService
from repro.circuit.netlist import Netlist
from repro.generators import generate_multiplier
from repro.modeling.model import AlgebraicModel


def full_adder_example() -> None:
    """Rebuild the full adder of the paper's Fig. 1 and print its Gröbner basis."""
    netlist = Netlist("full_adder")
    a, b, cin = netlist.add_input("a"), netlist.add_input("b"), netlist.add_input("cin")
    x1 = netlist.xor(a, b, "x1")
    netlist.and_(a, b, "x2")
    netlist.xor(x1, cin, "s")
    x4 = netlist.and_(x1, cin, "x4")
    netlist.or_("x2", x4, "c")
    netlist.add_output("s")
    netlist.add_output("c")

    model = AlgebraicModel.from_netlist(netlist)
    print("Fig. 1 full adder — gate polynomials (a Gröbner basis by construction):")
    print(model.render_polynomials())
    print("is Gröbner basis:", model.check_groebner_by_construction())
    print()


def verify_a_multiplier() -> None:
    """Generate an 8x8 Booth/Wallace/CLA multiplier and verify it with MT-LR."""
    netlist = generate_multiplier("BP-WT-CL", 8)
    print(f"generated {netlist.name}: {netlist.num_gates} gates")

    service = VerificationService()
    report = service.submit(VerificationRequest.from_netlist(netlist,
                                                            method="mt-lr"))
    print(report.summary())
    counters = report.counters
    print(f"rewritten model: #P={counters['num_polynomials']} "
          f"#M={counters['num_monomials']} "
          f"#MP={counters['max_polynomial_terms']} "
          f"#VM={counters['max_monomial_variables']}")
    print(f"vanishing monomials cancelled by the XOR-AND rule: "
          f"{counters['cancelled_vanishing_monomials']}")
    assert report.verdict == "verified"
    print("report JSON:", report.to_json())


if __name__ == "__main__":
    full_adder_example()
    verify_a_multiplier()
