#!/usr/bin/env python3
"""Gate-level Verilog round trip: export, re-import and verify a multiplier.

The paper's flow generates multipliers with the Arithmetic Module Generator
and synthesises them with Yosys before verification.  The equivalent flow
here: generate a gate-level netlist, write it as structural Verilog, read it
back (as one would read an externally synthesised netlist) and verify the
re-imported circuit with MT-LR and with the SAT-miter baseline.

Run with::

    python examples/verilog_flow.py
"""

import tempfile
from pathlib import Path

from repro.baselines import sat_equivalence_check
from repro.circuit.verilog import load_verilog, save_verilog
from repro.generators import generate_multiplier
from repro.verification import verify_multiplier


def main() -> None:
    original = generate_multiplier("SP-CT-BK", 6)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sp_ct_bk_6x6.v"
        save_verilog(original, str(path))
        print(f"wrote {original.num_gates} gates to {path.name} "
              f"({path.stat().st_size} bytes)")

        reloaded = load_verilog(str(path))
        print(f"re-imported netlist: {reloaded.num_gates} gates, "
              f"{len(reloaded.inputs)} inputs, {len(reloaded.outputs)} outputs")

        result = verify_multiplier(reloaded, method="mt-lr")
        print("MT-LR on the re-imported netlist:", result.summary())
        assert result.verified

        golden = generate_multiplier("SP-AR-RC", 6)
        cec = sat_equivalence_check(reloaded, golden, conflict_limit=100_000)
        print(f"SAT miter against the golden array multiplier: {cec.status} "
              f"({cec.conflicts} conflicts, {cec.elapsed_s:.1f}s)")


if __name__ == "__main__":
    main()
