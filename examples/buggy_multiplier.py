#!/usr/bin/env python3
"""Bug hunting: inject gate-level faults into a multiplier and let MT-LR find them.

The membership-testing algorithm is complete: a faulty circuit leaves a
non-zero remainder over the primary inputs, from which a counterexample
input vector can be extracted.  This example injects a series of single-gate
faults (the classical gate-substitution fault model), verifies each mutant,
and cross-checks every counterexample by simulation.

Run with::

    python examples/buggy_multiplier.py
"""

from repro.api.request import Budgets
from repro.circuit.mutate import apply_mutation, list_mutations
from repro.circuit.simulate import simulate_words
from repro.errors import BlowUpError
from repro.generators import generate_multiplier
from repro.verification import verify_multiplier


def main() -> None:
    width = 4
    netlist = generate_multiplier("SP-WT-CL", width)
    print(f"golden circuit: {netlist.name} with {netlist.num_gates} gates")

    mutations = list_mutations(netlist)
    print(f"{len(mutations)} candidate single-gate faults; checking a sample\n")

    detected = 0
    for mutation in mutations[:: max(1, len(mutations) // 12)][:12]:
        buggy = apply_mutation(netlist, mutation)
        try:
            # Faulty circuits lose the arithmetic cancellation structure, so
            # the remainder can grow much larger than for a correct design —
            # budgets keep the demonstration snappy.
            result = verify_multiplier(buggy, method="mt-lr",
                                       budgets=Budgets(monomial_budget=200_000,
                                                       time_budget_s=20.0))
        except BlowUpError:
            print(f"  inconclusive (budget): {mutation.describe()}")
            continue
        if result.verified:
            print(f"  functionally masked : {mutation.describe()}")
            continue
        detected += 1
        print(f"  BUG DETECTED        : {mutation.describe()}")
        if result.counterexample:
            a_val = sum(result.counterexample[f"a{i}"] << i for i in range(width))
            b_val = sum(result.counterexample[f"b{i}"] << i for i in range(width))
            wrong = simulate_words(buggy, {"a": a_val, "b": b_val})
            print(f"    counterexample a={a_val} b={b_val}: "
                  f"circuit returns {wrong}, expected {a_val * b_val}")
            assert wrong != (a_val * b_val) % (1 << (2 * width))
    print(f"\ndetected {detected} faults")


if __name__ == "__main__":
    main()
