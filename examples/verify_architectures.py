#!/usr/bin/env python3
"""Sweep the paper's multiplier architectures and compare verification methods.

For every architecture of the benchmark tables this script runs MT-LR and
MT-FO (and optionally the SAT/BDD baselines) at a configurable width
through the :class:`repro.api.VerificationService` batch façade — the
persistent worker pool, result cache, and longest-expected-first
scheduling come for free — and prints a paper-style results table.

Run with::

    python examples/verify_architectures.py [width] [--baselines] [--jobs N]
"""

import sys

from repro.api import Budgets, VerificationService
from repro.api.registry import COMPARISON_METHODS, TABLE1_BASELINES
from repro.experiments.tables import format_table
from repro.generators.catalog import TABLE1_ARCHITECTURES, TABLE2_ARCHITECTURES


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 and sys.argv[1].isdigit() else 8
    include_baselines = "--baselines" in sys.argv
    jobs = 1
    if "--jobs" in sys.argv:
        position = sys.argv.index("--jobs") + 1
        if position >= len(sys.argv) or not sys.argv[position].isdigit():
            raise SystemExit("usage: verify_architectures.py [width] "
                             "[--baselines] [--jobs N]")
        jobs = int(sys.argv[position])

    service = VerificationService(
        budgets=Budgets(time_budget_s=30.0, sat_conflict_budget=30_000))
    architectures = TABLE1_ARCHITECTURES + TABLE2_ARCHITECTURES
    methods = (list(TABLE1_BASELINES) if include_baselines else [])
    methods += list(COMPARISON_METHODS)
    reports = service.run_grid(architectures, [width], methods, jobs=jobs)
    grid = {(report.circuit, report.method): report for report in reports}

    rows = []
    for architecture in architectures:
        row = {"benchmark": architecture, "bits": f"{width}/{2 * width}"}
        for method in methods:
            row[method] = grid[architecture, method].time
        primary = grid[architecture, COMPARISON_METHODS[-1]]
        row["#CVM"] = primary.counters.get("cancelled_vanishing_monomials", "-")
        row["verified"] = primary.verified
        rows.append(row)
        print(f"  finished {architecture}: " +
              " ".join(f"{m}={row[m]}" for m in COMPARISON_METHODS))

    print()
    print(format_table(rows, title=f"Verification results for {width}-bit multipliers"))


if __name__ == "__main__":
    main()
