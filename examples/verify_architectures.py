#!/usr/bin/env python3
"""Sweep the paper's multiplier architectures and compare verification methods.

For every architecture of the benchmark tables this script runs MT-LR and
MT-FO (and optionally the SAT/BDD baselines) at a configurable width and
prints a paper-style results table.

Run with::

    python examples/verify_architectures.py [width] [--baselines]
"""

import sys

from repro.experiments.runner import (
    ExperimentConfig,
    run_bdd_cec,
    run_membership_testing,
    run_sat_cec,
)
from repro.experiments.tables import format_table
from repro.generators.catalog import TABLE1_ARCHITECTURES, TABLE2_ARCHITECTURES


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 and sys.argv[1].isdigit() else 8
    include_baselines = "--baselines" in sys.argv
    config = ExperimentConfig(widths=(width,), time_budget_s=30.0,
                              sat_conflict_budget=30_000)

    rows = []
    for architecture in TABLE1_ARCHITECTURES + TABLE2_ARCHITECTURES:
        row = {"benchmark": architecture, "bits": f"{width}/{2 * width}"}
        if include_baselines:
            row["sat-cec"] = run_sat_cec(architecture, width, config)["time"]
            row["bdd-cec"] = run_bdd_cec(architecture, width, config)["time"]
        row["mt-fo"] = run_membership_testing(architecture, width, "mt-fo",
                                              config)["time"]
        mt_lr = run_membership_testing(architecture, width, "mt-lr", config)
        row["mt-lr"] = mt_lr["time"]
        row["#CVM"] = mt_lr.get("cancelled_vanishing_monomials", "-")
        row["verified"] = mt_lr["verified"]
        rows.append(row)
        print(f"  finished {architecture}: mt-lr={row['mt-lr']} mt-fo={row['mt-fo']}")

    print()
    print(format_table(rows, title=f"Verification results for {width}-bit multipliers"))


if __name__ == "__main__":
    main()
