#!/usr/bin/env python3
"""Drive the HTTP verification server end to end.

Boots an in-process server (the same code ``repro-verify serve`` runs),
submits an asynchronous batch with heterogeneous per-request budgets,
polls the job to completion, and prints a Table-I-style slice from the
returned reports.  Point ``VerificationClient`` at a host/port instead of
using :class:`~repro.server.http.ServerThread` to drive a remote server.

Run with::

    PYTHONPATH=src python examples/http_client.py
"""

from repro.server import ServerThread, VerificationClient, VerificationServerApp

#: Table I architectures (simple partial products) at 4-bit operands,
#: each method under its own budget group: mt-lr runs with the default
#: budgets, mt-naive under a deliberately tight monomial budget to show
#: a "TO" row, sat-cec under a conflict cap.
ARCHITECTURES = ("SP-AR-RC", "SP-WT-CL", "SP-CT-BK", "SP-DT-HC")
METHOD_BUDGETS = {
    "mt-lr": None,
    "mt-naive": {"monomial_budget": 100},
    "sat-cec": {"sat_conflict_budget": 200_000},
}


def build_requests() -> list[dict]:
    documents = []
    for architecture in ARCHITECTURES:
        for method, budgets in METHOD_BUDGETS.items():
            document = {"architecture": architecture, "width": 4,
                        "method": method, "find_counterexample": False}
            if budgets is not None:
                document["budgets"] = budgets
            documents.append(document)
    return documents


def print_table(reports) -> None:
    methods = list(METHOD_BUDGETS)
    print(f"{'benchmark':<12}" + "".join(f"{m:>12}" for m in methods))
    by_key = {(r.circuit, r.method): r for r in reports}
    for architecture in ARCHITECTURES:
        cells = []
        for method in methods:
            report = by_key[architecture, method]
            cells.append(report.time if report.verdict != "budget" else "TO")
        print(f"{architecture:<12}" + "".join(f"{c:>12}" for c in cells))


def main() -> None:
    with ServerThread(VerificationServerApp(jobs=2)) as server:
        client = VerificationClient(port=server.port)
        health = client.healthz()
        print(f"server up: version {health['version']}, "
              f"{len(client.backends())} backends\n")

        job_id = client.submit_batch(build_requests(), jobs=2)
        print(f"submitted async batch as job {job_id}; polling ...")
        reports = client.wait(job_id, timeout_s=300.0)
        verdicts = {r.verdict for r in reports}
        print(f"job done: {len(reports)} reports, verdicts {sorted(verdicts)}\n")

        print_table(reports)

        metrics = client.metrics()
        print(f"\nserver metrics: {metrics['http']['requests_total']} requests, "
              f"{metrics['reports']['total']} reports, "
              f"cache executed={metrics['cache']['executed_total']} "
              f"hits={metrics['cache']['hits_total']}")


if __name__ == "__main__":
    main()
