#!/usr/bin/env python3
"""Vanishing monomials in parallel-prefix adders (the paper's Section III).

Reproduces the motivating observation: plain Gröbner-basis reduction (and
fanout rewriting) blow up on Kogge-Stone adders because the carry network
accumulates vanishing monomials, while MT-LR removes them during rewriting
and scales easily.

Run with::

    python examples/parallel_adder_vanishing.py
"""

from repro.api.request import Budgets
from repro.errors import BlowUpError
from repro.experiments.tables import format_table
from repro.generators.adders import generate_adder
from repro.modeling.model import AlgebraicModel
from repro.verification import verify_adder
from repro.verification.rewriting import logic_reduction_rewriting
from repro.verification.vanishing import VanishingRules


def show_vanishing_monomials() -> None:
    """Count the vanishing monomials removed while rewriting a 16-bit Kogge-Stone."""
    netlist = generate_adder("KS", 16)
    model = AlgebraicModel.from_netlist(netlist)
    rewritten = logic_reduction_rewriting(model, VanishingRules(model))
    print(f"16-bit Kogge-Stone adder: {netlist.num_gates} gates, "
          f"{rewritten.cancelled_vanishing_monomials} vanishing monomials removed "
          "during XOR rewriting")
    largest = max(tail.max_monomial_degree() for tail in rewritten.tails.values())
    print(f"largest monomial in the rewritten model: {largest} variables\n")


def scaling_table() -> None:
    rows = []
    for width in (4, 8, 16, 24, 32):
        row = {"adder": f"KS-{width}"}
        for method in ("mt-naive", "mt-fo", "mt-lr"):
            try:
                result = verify_adder(generate_adder("KS", width), method=method,
                                      budgets=Budgets(monomial_budget=100_000,
                                                      time_budget_s=15.0),
                                      find_counterexample=False)
                row[method] = f"{result.total_time_s:.2f}s"
            except BlowUpError:
                row[method] = "TO"
        rows.append(row)
    print(format_table(rows, title="Kogge-Stone adder verification (TO = blow-up)"))


if __name__ == "__main__":
    show_vanishing_monomials()
    scaling_table()
