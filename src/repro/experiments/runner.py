"""Experiment runners shared by the benchmark harness and the CLI.

Every runner returns a plain dictionary so the benchmark scripts can both
assert on the outcome and print the paper-style table rows.  A run that
exceeds its monomial/conflict/node/time budget is reported with
``time = "TO"`` exactly like the 100-hour timeouts in the paper's tables.

Two execution modes are provided:

* the single-run functions (:func:`run_membership_testing`,
  :func:`run_sat_cec`, :func:`run_bdd_cec`) and their uniform dispatch
  :func:`run_job`, and
* :class:`ParallelRunner`, which fans a catalog of
  :class:`VerificationJob` entries across worker processes
  (``multiprocessing``), streams result rows back as they complete, and
  isolates crashes and hard timeouts per circuit so one bad job can never
  take down a table reproduction.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.baselines.bdd.equivalence import bdd_equivalence_check
from repro.baselines.sat.miter import sat_equivalence_check
from repro.errors import BlowUpError, ReproError
from repro.generators.multipliers import generate_multiplier
from repro.verification.engine import METHODS, verify_multiplier


@dataclass
class ExperimentConfig:
    """Budgets shared by all experiment runs (environment-overridable).

    Environment variables:

    * ``REPRO_BENCH_BITS`` — comma-separated operand widths (default ``4,8``),
    * ``REPRO_BENCH_TIMEOUT`` — per-run wall-clock budget in seconds,
    * ``REPRO_BENCH_MONOMIAL_BUDGET`` — remainder-size budget of GB reduction,
    * ``REPRO_BENCH_SAT_CONFLICTS`` — CDCL conflict budget,
    * ``REPRO_BENCH_BDD_NODES`` — ROBDD node budget.
    """

    widths: tuple[int, ...] = (4, 8)
    time_budget_s: float = 60.0
    monomial_budget: int = 2_000_000
    sat_conflict_budget: int = 200_000
    bdd_node_budget: int = 1_000_000
    golden_architecture: str = "SP-AR-RC"
    #: Worker processes used by :class:`ParallelRunner` consumers (1 = serial).
    jobs: int = 1

    @classmethod
    def from_environment(cls) -> "ExperimentConfig":
        """Build a configuration from the ``REPRO_BENCH_*`` environment variables."""
        config = cls()
        bits = os.environ.get("REPRO_BENCH_BITS")
        if bits:
            config.widths = tuple(int(b) for b in bits.split(",") if b.strip())
        config.time_budget_s = float(
            os.environ.get("REPRO_BENCH_TIMEOUT", config.time_budget_s))
        config.monomial_budget = int(
            os.environ.get("REPRO_BENCH_MONOMIAL_BUDGET", config.monomial_budget))
        config.sat_conflict_budget = int(
            os.environ.get("REPRO_BENCH_SAT_CONFLICTS", config.sat_conflict_budget))
        config.bdd_node_budget = int(
            os.environ.get("REPRO_BENCH_BDD_NODES", config.bdd_node_budget))
        config.jobs = int(os.environ.get("REPRO_BENCH_JOBS", config.jobs))
        return config


def _format_seconds(seconds: float) -> str:
    hours = int(seconds // 3600)
    minutes = int((seconds % 3600) // 60)
    secs = seconds % 60
    return f"{hours:02d}:{minutes:02d}:{secs:05.2f}"


def run_membership_testing(architecture: str, width: int, method: str,
                           config: ExperimentConfig) -> dict:
    """Run one MT-LR / MT-FO / MT-Naive verification and report a table row."""
    netlist = generate_multiplier(architecture, width)
    start = time.perf_counter()
    try:
        result = verify_multiplier(
            netlist, method=method, monomial_budget=config.monomial_budget,
            time_budget_s=config.time_budget_s, find_counterexample=False)
    except BlowUpError as error:
        elapsed = time.perf_counter() - start
        return {
            "architecture": architecture, "width": width, "method": method,
            "status": "TO", "time": "TO", "time_s": elapsed,
            "verified": None, "reason": str(error),
        }
    return {
        "architecture": architecture, "width": width, "method": method,
        "status": "ok" if result.verified else "mismatch",
        "time": _format_seconds(result.total_time_s),
        "time_s": result.total_time_s,
        "verified": result.verified,
        "cancelled_vanishing_monomials": result.cancelled_vanishing_monomials,
        "reduction_time_s": result.reduction_time_s,
        "rewrite_time_s": result.rewrite_time_s,
        "num_polynomials": result.model_statistics.num_polynomials,
        "num_monomials": result.model_statistics.num_monomials,
        "max_polynomial_terms": result.model_statistics.max_polynomial_terms,
        "max_monomial_variables": result.model_statistics.max_monomial_variables,
        "peak_remainder": result.reduction_trace.peak_monomials,
    }


def run_sat_cec(architecture: str, width: int, config: ExperimentConfig,
                booth_supported: bool = True) -> dict:
    """Run the SAT-miter equivalence check against the golden array multiplier.

    With ``booth_supported=False`` the run is reported as not applicable for
    Booth multipliers — mirroring the "-" entries of the CPP column in
    Table II.
    """
    if not booth_supported and architecture.upper().startswith("BP"):
        return {"architecture": architecture, "width": width,
                "method": "sat-cec", "status": "n/a", "time": "-",
                "time_s": None, "verified": None}
    netlist = generate_multiplier(architecture, width)
    golden = generate_multiplier(config.golden_architecture, width)
    result = sat_equivalence_check(netlist, golden,
                                   conflict_limit=config.sat_conflict_budget,
                                   time_budget_s=config.time_budget_s)
    status = {"equivalent": "ok", "different": "mismatch",
              "unknown": "TO"}[result.status]
    return {
        "architecture": architecture, "width": width, "method": "sat-cec",
        "status": status,
        "time": "TO" if result.timed_out else _format_seconds(result.elapsed_s),
        "time_s": result.elapsed_s,
        "verified": result.equivalent if not result.timed_out else None,
        "conflicts": result.conflicts,
        "clauses": result.num_clauses,
    }


def run_bdd_cec(architecture: str, width: int, config: ExperimentConfig) -> dict:
    """Run the BDD equivalence check against the word-level product."""
    netlist = generate_multiplier(architecture, width)
    result = bdd_equivalence_check(netlist, "multiply",
                                   node_budget=config.bdd_node_budget)
    status = {"equivalent": "ok", "different": "mismatch",
              "unknown": "TO"}[result.status]
    return {
        "architecture": architecture, "width": width, "method": "bdd-cec",
        "status": status,
        "time": "TO" if result.timed_out else _format_seconds(result.elapsed_s),
        "time_s": result.elapsed_s,
        "verified": result.equivalent if not result.timed_out else None,
        "bdd_nodes": result.num_nodes,
    }


# ---------------------------------------------------------------------------
# Batch execution: job catalog, serial runner, parallel runner
# ---------------------------------------------------------------------------

#: Methods understood by :func:`run_job` (membership testing + baselines).
JOB_METHODS: tuple[str, ...] = METHODS + ("sat-cec", "bdd-cec")


@dataclass(frozen=True)
class VerificationJob:
    """One (architecture, width, method) cell of an evaluation table."""

    architecture: str
    width: int
    method: str

    @property
    def key(self) -> tuple[str, int, str]:
        """Deterministic identity used for ordering and result joining."""
        return (self.architecture, self.width, self.method)


def run_job(job: VerificationJob, config: ExperimentConfig) -> dict:
    """Run one verification job and return its table row (uniform dispatch)."""
    if job.method in METHODS:
        return run_membership_testing(job.architecture, job.width, job.method,
                                      config)
    if job.method == "sat-cec":
        return run_sat_cec(job.architecture, job.width, config)
    if job.method == "bdd-cec":
        return run_bdd_cec(job.architecture, job.width, config)
    raise ReproError(f"unknown job method {job.method!r}; "
                     f"expected one of {JOB_METHODS}")


def _guarded_run_job(job: VerificationJob, config: ExperimentConfig) -> dict:
    """Run a job, converting any exception into an ``error`` row.

    This is the per-circuit isolation layer shared by the serial and the
    parallel paths: a generator or verifier bug on one architecture must
    never abort the rest of the batch.
    """
    try:
        return run_job(job, config)
    except Exception as error:  # noqa: BLE001 - isolation boundary
        return {
            "architecture": job.architecture, "width": job.width,
            "method": job.method, "status": "error", "time": "-",
            "time_s": None, "verified": None,
            "reason": f"{type(error).__name__}: {error}",
        }


def _worker_main(job: VerificationJob, config: ExperimentConfig,
                 index: int, queue) -> None:
    """Worker-process entry point: run one job, ship one ``(index, row)``."""
    queue.put((index, _guarded_run_job(job, config)))


class ParallelRunner:
    """Fan verification jobs across worker processes with crash isolation.

    Each job runs in its own ``multiprocessing`` process (at most
    ``workers`` alive at a time), so a hard crash (segfault, OOM kill) or a
    run exceeding the hard ``task_timeout_s`` wall-clock limit is reported
    as a table row (``status="crash"`` / ``"TO"``) instead of killing the
    batch.  Results are streamed to the optional ``on_result`` callback as
    they complete and returned in job order, so the verdicts are
    byte-for-byte identical to the serial path regardless of worker count
    or completion order.

    Parameters
    ----------
    config:
        Budgets applied to every job (the in-process time/monomial budgets
        still produce the paper-style ``TO`` rows).
    workers:
        Number of worker processes; ``None`` uses ``os.cpu_count()``.
        ``workers <= 1`` runs serially in-process (still crash-isolated
        against Python exceptions, not against hard crashes).
    task_timeout_s:
        Hard per-job wall-clock limit enforced by the parent via
        ``Process.terminate``; ``None`` disables the hard limit and relies
        on the in-process budgets.
    """

    def __init__(self, config: ExperimentConfig | None = None,
                 workers: int | None = None,
                 task_timeout_s: float | None = None) -> None:
        self.config = config or ExperimentConfig.from_environment()
        if workers is None:
            workers = self.config.jobs if self.config.jobs > 1 else (
                os.cpu_count() or 1)
        self.workers = max(1, int(workers))
        self.task_timeout_s = task_timeout_s

    # -- job catalog helpers ---------------------------------------------------

    @staticmethod
    def catalog(architectures: Iterable[str], widths: Iterable[int],
                methods: Iterable[str]) -> list[VerificationJob]:
        """The full (architecture, width, method) job grid, widths outermost."""
        return [VerificationJob(arch, width, method)
                for width in widths for arch in architectures
                for method in methods]

    # -- execution -------------------------------------------------------------

    def run_serial(self, jobs: Sequence[VerificationJob],
                   on_result: Callable[[VerificationJob, dict], None] | None = None,
                   ) -> list[dict]:
        """Reference serial execution (same rows, same order, one process)."""
        rows = []
        for job in jobs:
            row = _guarded_run_job(job, self.config)
            if on_result is not None:
                on_result(job, row)
            rows.append(row)
        return rows

    def run(self, jobs: Sequence[VerificationJob],
            on_result: Callable[[VerificationJob, dict], None] | None = None,
            ) -> list[dict]:
        """Run all jobs and return their rows in job order."""
        jobs = list(jobs)
        if not jobs:
            return []
        # The hard wall-clock limit needs a killable worker process, so the
        # in-process shortcut only applies when no such limit was requested.
        if self.task_timeout_s is None and (self.workers <= 1 or len(jobs) <= 1):
            return self.run_serial(jobs, on_result=on_result)

        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        queue = context.Queue()
        results: dict[int, dict] = {}
        running: dict[int, tuple] = {}   # index -> (process, job, deadline)
        next_index = 0

        def launch_ready() -> None:
            nonlocal next_index
            while next_index < len(jobs) and len(running) < self.workers:
                job = jobs[next_index]
                process = context.Process(
                    target=_worker_main,
                    args=(job, self.config, next_index, queue),
                    daemon=True)
                process.start()
                deadline = (time.monotonic() + self.task_timeout_s
                            if self.task_timeout_s is not None else None)
                running[next_index] = (process, job, deadline)
                next_index += 1

        def finish(index: int, row: dict) -> None:
            entry = running.pop(index, None)
            if entry is None:
                # Already reported (e.g. terminated as a hard timeout just as
                # its late result arrived) — drop the stale row.
                return
            process, job, _ = entry
            process.join()
            results[index] = row
            if on_result is not None:
                on_result(job, row)

        launch_ready()
        while running:
            try:
                index, row = queue.get(timeout=0.05)
            except Exception:  # queue.Empty - poll process health instead
                now = time.monotonic()
                for index in list(running):
                    entry = running.get(index)
                    if entry is None:
                        continue  # finished by a drain earlier in this sweep
                    process, job, deadline = entry
                    if deadline is not None and now > deadline:
                        process.terminate()
                        finish(index, {
                            "architecture": job.architecture,
                            "width": job.width, "method": job.method,
                            "status": "TO", "time": "TO",
                            "time_s": self.task_timeout_s, "verified": None,
                            "reason": "hard task timeout",
                        })
                    elif not process.is_alive():
                        # Dead without a result: give the queue one last
                        # drain chance, then report the crash.
                        try:
                            late_index, late_row = queue.get(timeout=0.2)
                            finish(late_index, late_row)
                        except Exception:
                            finish(index, {
                                "architecture": job.architecture,
                                "width": job.width, "method": job.method,
                                "status": "crash", "time": "-",
                                "time_s": None, "verified": None,
                                "reason": f"worker exited with code "
                                          f"{process.exitcode}",
                            })
                launch_ready()
                continue
            finish(index, row)
            launch_ready()
        return [results[i] for i in range(len(jobs))]


def run_catalog(architectures: Iterable[str], widths: Iterable[int],
                methods: Iterable[str], config: ExperimentConfig | None = None,
                jobs: int = 1,
                task_timeout_s: float | None = None,
                on_result: Callable[[VerificationJob, dict], None] | None = None,
                ) -> list[dict]:
    """Convenience wrapper: build the job grid and run it (serial or parallel)."""
    runner = ParallelRunner(config=config, workers=jobs,
                            task_timeout_s=task_timeout_s)
    grid = ParallelRunner.catalog(architectures, widths, methods)
    return runner.run(grid, on_result=on_result)
