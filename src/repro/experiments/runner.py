"""Single-experiment runners shared by the benchmark harness and the CLI.

Every runner returns a plain dictionary so the benchmark scripts can both
assert on the outcome and print the paper-style table rows.  A run that
exceeds its monomial/conflict/node/time budget is reported with
``time = "TO"`` exactly like the 100-hour timeouts in the paper's tables.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.baselines.bdd.equivalence import bdd_equivalence_check
from repro.baselines.sat.miter import sat_equivalence_check
from repro.errors import BlowUpError
from repro.generators.multipliers import generate_multiplier
from repro.verification.engine import verify_multiplier


@dataclass
class ExperimentConfig:
    """Budgets shared by all experiment runs (environment-overridable).

    Environment variables:

    * ``REPRO_BENCH_BITS`` — comma-separated operand widths (default ``4,8``),
    * ``REPRO_BENCH_TIMEOUT`` — per-run wall-clock budget in seconds,
    * ``REPRO_BENCH_MONOMIAL_BUDGET`` — remainder-size budget of GB reduction,
    * ``REPRO_BENCH_SAT_CONFLICTS`` — CDCL conflict budget,
    * ``REPRO_BENCH_BDD_NODES`` — ROBDD node budget.
    """

    widths: tuple[int, ...] = (4, 8)
    time_budget_s: float = 60.0
    monomial_budget: int = 2_000_000
    sat_conflict_budget: int = 200_000
    bdd_node_budget: int = 1_000_000
    golden_architecture: str = "SP-AR-RC"

    @classmethod
    def from_environment(cls) -> "ExperimentConfig":
        """Build a configuration from the ``REPRO_BENCH_*`` environment variables."""
        config = cls()
        bits = os.environ.get("REPRO_BENCH_BITS")
        if bits:
            config.widths = tuple(int(b) for b in bits.split(",") if b.strip())
        config.time_budget_s = float(
            os.environ.get("REPRO_BENCH_TIMEOUT", config.time_budget_s))
        config.monomial_budget = int(
            os.environ.get("REPRO_BENCH_MONOMIAL_BUDGET", config.monomial_budget))
        config.sat_conflict_budget = int(
            os.environ.get("REPRO_BENCH_SAT_CONFLICTS", config.sat_conflict_budget))
        config.bdd_node_budget = int(
            os.environ.get("REPRO_BENCH_BDD_NODES", config.bdd_node_budget))
        return config


def _format_seconds(seconds: float) -> str:
    hours = int(seconds // 3600)
    minutes = int((seconds % 3600) // 60)
    secs = seconds % 60
    return f"{hours:02d}:{minutes:02d}:{secs:05.2f}"


def run_membership_testing(architecture: str, width: int, method: str,
                           config: ExperimentConfig) -> dict:
    """Run one MT-LR / MT-FO / MT-Naive verification and report a table row."""
    netlist = generate_multiplier(architecture, width)
    start = time.perf_counter()
    try:
        result = verify_multiplier(
            netlist, method=method, monomial_budget=config.monomial_budget,
            time_budget_s=config.time_budget_s, find_counterexample=False)
    except BlowUpError as error:
        elapsed = time.perf_counter() - start
        return {
            "architecture": architecture, "width": width, "method": method,
            "status": "TO", "time": "TO", "time_s": elapsed,
            "verified": None, "reason": str(error),
        }
    return {
        "architecture": architecture, "width": width, "method": method,
        "status": "ok" if result.verified else "mismatch",
        "time": _format_seconds(result.total_time_s),
        "time_s": result.total_time_s,
        "verified": result.verified,
        "cancelled_vanishing_monomials": result.cancelled_vanishing_monomials,
        "reduction_time_s": result.reduction_time_s,
        "rewrite_time_s": result.rewrite_time_s,
        "num_polynomials": result.model_statistics.num_polynomials,
        "num_monomials": result.model_statistics.num_monomials,
        "max_polynomial_terms": result.model_statistics.max_polynomial_terms,
        "max_monomial_variables": result.model_statistics.max_monomial_variables,
        "peak_remainder": result.reduction_trace.peak_monomials,
    }


def run_sat_cec(architecture: str, width: int, config: ExperimentConfig,
                booth_supported: bool = True) -> dict:
    """Run the SAT-miter equivalence check against the golden array multiplier.

    With ``booth_supported=False`` the run is reported as not applicable for
    Booth multipliers — mirroring the "-" entries of the CPP column in
    Table II.
    """
    if not booth_supported and architecture.upper().startswith("BP"):
        return {"architecture": architecture, "width": width,
                "method": "sat-cec", "status": "n/a", "time": "-",
                "time_s": None, "verified": None}
    netlist = generate_multiplier(architecture, width)
    golden = generate_multiplier(config.golden_architecture, width)
    result = sat_equivalence_check(netlist, golden,
                                   conflict_limit=config.sat_conflict_budget,
                                   time_budget_s=config.time_budget_s)
    status = {"equivalent": "ok", "different": "mismatch",
              "unknown": "TO"}[result.status]
    return {
        "architecture": architecture, "width": width, "method": "sat-cec",
        "status": status,
        "time": "TO" if result.timed_out else _format_seconds(result.elapsed_s),
        "time_s": result.elapsed_s,
        "verified": result.equivalent if not result.timed_out else None,
        "conflicts": result.conflicts,
        "clauses": result.num_clauses,
    }


def run_bdd_cec(architecture: str, width: int, config: ExperimentConfig) -> dict:
    """Run the BDD equivalence check against the word-level product."""
    netlist = generate_multiplier(architecture, width)
    result = bdd_equivalence_check(netlist, "multiply",
                                   node_budget=config.bdd_node_budget)
    status = {"equivalent": "ok", "different": "mismatch",
              "unknown": "TO"}[result.status]
    return {
        "architecture": architecture, "width": width, "method": "bdd-cec",
        "status": status,
        "time": "TO" if result.timed_out else _format_seconds(result.elapsed_s),
        "time_s": result.elapsed_s,
        "verified": result.equivalent if not result.timed_out else None,
        "bdd_nodes": result.num_nodes,
    }
