"""Experiment runners shared by the benchmark harness and the CLI.

Every runner returns a plain dictionary so the benchmark scripts can both
assert on the outcome and print the paper-style table rows.  A run that
exceeds its monomial/conflict/node/time budget is reported with
``time = "TO"`` exactly like the 100-hour timeouts in the paper's tables.

Two execution modes are provided:

* the single-run functions (:func:`run_membership_testing`,
  :func:`run_sat_cec`, :func:`run_bdd_cec`) and their uniform dispatch
  :func:`run_job`, and
* :class:`ParallelRunner`, which fans a catalog of
  :class:`VerificationJob` entries across a persistent pool of worker
  processes (``multiprocessing``), streams result rows back as they
  complete, and isolates crashes and hard timeouts per circuit so one bad
  job can never take down a table reproduction.  Completed rows can be
  cached on disk (:class:`ResultCache`) keyed by netlist content hash,
  method, width, and budgets, so re-running a table only executes changed
  or uncached jobs.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.api.registry import backend_names, get_backend, scheduling_rank
from repro.api.report import VerificationReport, format_seconds
from repro.baselines.bdd.equivalence import bdd_equivalence_check
from repro.baselines.sat.miter import sat_equivalence_check
from repro.errors import BlowUpError, ReproError
from repro.generators.multipliers import generate_multiplier
from repro.resilience.faults import (
    maybe_corrupt_published_entry,
    maybe_crash,
    maybe_delay,
)
from repro.resilience.policy import attempt_entry, classify_row
from repro.verification.engine import verify_multiplier


@dataclass
class ExperimentConfig:
    """Budgets shared by all experiment runs (environment-overridable).

    Environment variables:

    * ``REPRO_BENCH_BITS`` — comma-separated operand widths (default ``4,8``),
    * ``REPRO_BENCH_TIMEOUT`` — per-run wall-clock budget in seconds,
    * ``REPRO_BENCH_MONOMIAL_BUDGET`` — remainder-size budget of GB reduction,
    * ``REPRO_BENCH_SAT_CONFLICTS`` — CDCL conflict budget,
    * ``REPRO_BENCH_BDD_NODES`` — ROBDD node budget,
    * ``REPRO_BENCH_CACHE`` — directory for the on-disk result cache,
    * ``REPRO_BENCH_CONE_CACHE`` — directory for the incremental cone cache.
    """

    widths: tuple[int, ...] = (4, 8)
    time_budget_s: float = 60.0
    monomial_budget: int = 2_000_000
    sat_conflict_budget: int = 200_000
    bdd_node_budget: int = 1_000_000
    #: Cap on the vanishing-rule verdict cache (``None`` = unlimited).
    vanishing_cache_limit: int | None = None
    golden_architecture: str = "SP-AR-RC"
    #: Worker processes used by :class:`ParallelRunner` consumers (1 = serial).
    jobs: int = 1
    #: Directory of the on-disk result cache (``None`` disables caching).
    cache_dir: str | None = None
    #: Directory of the per-cone proof cache used by incremental runs
    #: (:mod:`repro.incremental`; ``None`` disables cone reuse).
    cone_cache_dir: str | None = None

    @classmethod
    def from_environment(cls) -> "ExperimentConfig":
        """Build a configuration from the ``REPRO_BENCH_*`` environment variables."""
        config = cls()
        bits = os.environ.get("REPRO_BENCH_BITS")
        if bits:
            config.widths = tuple(int(b) for b in bits.split(",") if b.strip())
        config.time_budget_s = float(
            os.environ.get("REPRO_BENCH_TIMEOUT", config.time_budget_s))
        config.monomial_budget = int(
            os.environ.get("REPRO_BENCH_MONOMIAL_BUDGET", config.monomial_budget))
        config.sat_conflict_budget = int(
            os.environ.get("REPRO_BENCH_SAT_CONFLICTS", config.sat_conflict_budget))
        config.bdd_node_budget = int(
            os.environ.get("REPRO_BENCH_BDD_NODES", config.bdd_node_budget))
        config.jobs = int(os.environ.get("REPRO_BENCH_JOBS", config.jobs))
        config.cache_dir = os.environ.get("REPRO_BENCH_CACHE") or None
        config.cone_cache_dir = os.environ.get("REPRO_BENCH_CONE_CACHE") or None
        return config


#: Legacy alias — the canonical formatter lives with the report schema.
_format_seconds = format_seconds


def run_membership_testing(architecture: str, width: int, method: str,
                           config: ExperimentConfig,
                           certificate: bool = False) -> dict:
    """Run one MT-LR / MT-FO / MT-Naive verification and report a table row.

    With ``certificate=True`` the emitted proof certificate rides on the
    row (and therefore through the result cache) under the
    ``"certificate"`` key.
    """
    from repro.api.request import Budgets
    netlist = generate_multiplier(architecture, width)
    start = time.perf_counter()
    try:
        result = verify_multiplier(
            netlist, method=method, budgets=Budgets.from_config(config),
            find_counterexample=False, certificate=certificate)
    except BlowUpError as error:
        report = VerificationReport.from_blowup(
            error, method=method, circuit=architecture, width=width,
            elapsed_s=time.perf_counter() - start)
        return report.to_row()
    report = VerificationReport.from_result(result, circuit=architecture,
                                            width=width)
    if certificate and result.certificate_data is not None:
        from repro.certify import build_certificate
        report.certificate = build_certificate(result)
    return report.to_row()


def run_sat_cec(architecture: str, width: int, config: ExperimentConfig,
                booth_supported: bool = True,
                method: str = "sat-cec") -> dict:
    """Run the SAT-miter equivalence check against the golden array multiplier.

    With ``booth_supported=False`` the run is reported as not applicable for
    Booth multipliers — mirroring the "-" entries of the CPP column in
    Table II.
    """
    if not booth_supported and architecture.upper().startswith("BP"):
        return VerificationReport.not_applicable(
            method, circuit=architecture, width=width).to_row()
    netlist = generate_multiplier(architecture, width)
    golden = generate_multiplier(config.golden_architecture, width)
    result = sat_equivalence_check(netlist, golden,
                                   conflict_limit=config.sat_conflict_budget,
                                   time_budget_s=config.time_budget_s)
    return VerificationReport.from_sat_result(result, circuit=architecture,
                                              width=width,
                                              method=method).to_row()


def run_bdd_cec(architecture: str, width: int, config: ExperimentConfig,
                method: str = "bdd-cec") -> dict:
    """Run the BDD equivalence check against the word-level product."""
    netlist = generate_multiplier(architecture, width)
    result = bdd_equivalence_check(netlist, "multiply",
                                   node_budget=config.bdd_node_budget)
    return VerificationReport.from_bdd_result(result, circuit=architecture,
                                              width=width,
                                              method=method).to_row()


# ---------------------------------------------------------------------------
# Batch execution: job catalog, serial runner, parallel runner
# ---------------------------------------------------------------------------

#: Methods understood by :func:`run_job` — derived from the backend
#: registry (:mod:`repro.api.registry`), the single source of truth.
JOB_METHODS: tuple[str, ...] = backend_names()


@dataclass(frozen=True)
class VerificationJob:
    """One (architecture, width, method) cell of an evaluation table.

    ``config`` optionally overrides the batch-level
    :class:`ExperimentConfig` for this job only — the per-request budget
    groups of :meth:`repro.api.service.VerificationService.run_batch` ride
    on it.  It travels with the job through the worker-pool queues and is
    part of the cache key (via the budgets it carries), but not of the job
    identity.  ``task_timeout_s`` likewise overrides the runner-level hard
    wall-clock limit for this job.
    """

    architecture: str
    width: int
    method: str
    config: ExperimentConfig | None = field(default=None, compare=False)
    task_timeout_s: float | None = field(default=None, compare=False)
    #: Ask the algebraic engine for a proof certificate; the certificate
    #: rides on the row and is part of the cache key (a plain row must
    #: never satisfy a certificate request).
    certificate: bool = False

    @property
    def key(self) -> tuple[str, int, str]:
        """Deterministic identity used for ordering and result joining."""
        return (self.architecture, self.width, self.method)


def run_job(job: VerificationJob, config: ExperimentConfig) -> dict:
    """Run one verification job and return its table row (uniform dispatch).

    Dispatch is driven by the registered backend's ``kind`` — plugging a
    new backend into :mod:`repro.api.registry` with an existing kind makes
    it batchable with no change here.  A job-level ``config`` takes
    precedence over the batch-level one.
    """
    if job.config is not None:
        config = job.config
    try:
        backend = get_backend(job.method)
    except ReproError:
        raise ReproError(f"unknown job method {job.method!r}; "
                         f"expected one of {JOB_METHODS}") from None
    if backend.kind == "algebraic":
        return run_membership_testing(job.architecture, job.width, job.method,
                                      config, certificate=job.certificate)
    if backend.kind == "sat":
        return run_sat_cec(job.architecture, job.width, config,
                           method=job.method)
    return run_bdd_cec(job.architecture, job.width, config,
                       method=job.method)


def expected_cost_key(job: VerificationJob) -> tuple[int, int, int]:
    """Heuristic relative cost of a job, for longest-expected-first order.

    Width dominates (verification cost grows steeply with operand width),
    then the registry's per-backend cost rank, then the architecture
    family: Booth multipliers carry the heaviest rewriting load, tree
    accumulators more than arrays.  The key orders *scheduling only* —
    result rows keep the grid order — so one expensive job (a 16-bit Booth
    run, say) starts first instead of serialising the tail of a batch.
    """
    architecture = job.architecture.upper()
    cost = 0
    if architecture.startswith("BP"):
        cost += 4
    for marker, weight in (("-DT-", 2), ("-WT-", 2), ("-CT-", 2),
                           ("-RT-", 1), ("-OS-", 1)):
        if marker in architecture:
            cost += weight
            break
    return (job.width, scheduling_rank(job.method), cost)


def _guarded_run_job(job: VerificationJob, config: ExperimentConfig) -> dict:
    """Run a job, converting any exception into an ``error`` row.

    This is the per-circuit isolation layer shared by the serial and the
    parallel paths: a generator or verifier bug on one architecture must
    never abort the rest of the batch.
    """
    try:
        return run_job(job, config)
    except Exception as error:  # noqa: BLE001 - isolation boundary
        return {
            "architecture": job.architecture, "width": job.width,
            "method": job.method, "status": "error", "time": "-",
            "time_s": None, "verified": None,
            "reason": f"{type(error).__name__}: {error}",
        }


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------

class NetlistHasher:
    """Memoized content hashes of generated multiplier netlists.

    The hash is over the emitted gate-level Verilog, so two architecture
    names generating the same gates share a hash (and therefore a cache
    entry), while any generator change invalidates it.  Extracted from
    :class:`ResultCache` so cache keys can be computed without a cache
    directory — the fleet dispatcher and the HTTP cache routes key
    content the same way the runner does.
    """

    def __init__(self) -> None:
        self._hashes: dict[tuple[str, int], str | None] = {}

    def hash(self, architecture: str, width: int) -> str | None:
        """Content hash of a generated netlist (``None`` = not hashable)."""
        key = (architecture, width)
        if key not in self._hashes:
            try:
                from repro.circuit.verilog import write_verilog
                netlist = generate_multiplier(architecture, width)
                digest = hashlib.sha256(
                    write_verilog(netlist).encode("utf-8")).hexdigest()
            except Exception:  # noqa: BLE001 - unknown arch etc: uncacheable
                digest = None
            self._hashes[key] = digest
        return self._hashes[key]


def result_cache_key(job: VerificationJob, config: ExperimentConfig,
                     task_timeout_s: float | None = None,
                     hasher: NetlistHasher | None = None) -> str | None:
    """Content-addressed cache key of a job (``None`` = uncacheable).

    The single source of truth for result-cache keying, shared by
    :class:`ResultCache`, the verification service, and the fleet layer:
    netlist content hash + method + width + every outcome-relevant budget
    + the package version.  Job-level overrides (``job.config``,
    ``job.task_timeout_s``) take precedence over the batch-level
    arguments, so two jobs of one batch running under different budget
    groups never share an entry.
    """
    if job.config is not None:
        config = job.config
    if job.task_timeout_s is not None:
        task_timeout_s = job.task_timeout_s
    if hasher is None:
        hasher = NetlistHasher()
    netlist_hash = hasher.hash(job.architecture, job.width)
    if netlist_hash is None:
        return None
    from repro import __version__
    document = {
        "schema": ResultCache.SCHEMA,
        "version": __version__,
        "netlist": netlist_hash,
        "method": job.method,
        "width": job.width,
        "certificate": job.certificate,
        "budgets": {
            "monomial_budget": config.monomial_budget,
            "time_budget_s": config.time_budget_s,
            "sat_conflict_budget": config.sat_conflict_budget,
            "bdd_node_budget": config.bdd_node_budget,
            "vanishing_cache_limit": config.vanishing_cache_limit,
            "task_timeout_s": task_timeout_s,
        },
    }
    if job.method == "sat-cec":
        document["golden"] = hasher.hash(config.golden_architecture,
                                         job.width)
    serial = json.dumps(document, sort_keys=True)
    return hashlib.sha256(serial.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk JSON cache of completed verification rows.

    Rows are keyed by the *content* of the problem, not its name: the
    gate-level Verilog of the generated netlist is hashed together with the
    method, the operand width, every budget that can change the outcome
    (including the golden reference netlist for SAT CEC and the hard task
    timeout), and the package version.  Re-running a table therefore only
    executes jobs whose circuit, method, budgets, or code version actually
    changed; renaming an architecture that generates the same gates still
    hits, while upgrading the package invalidates every entry so an
    algorithm fix is never masked by stale rows.

    Rows that report infrastructure failures (``status`` of ``error`` or
    ``crash``) are never cached — those describe the run, not the problem.
    ``TO`` rows *are* cached: the budgets that produced them are part of the
    key, and a re-run that reproduces the table (the cache's contract) must
    reproduce its timeouts too.  They are still wall-clock-dependent, so to
    re-measure timeouts on a faster machine, point ``--cache`` at a fresh
    directory (or delete the entry).

    On-disk entries store the unified
    :class:`~repro.api.report.VerificationReport` schema (see
    ``repro/api/__init__.py``); table rows are reconstructed from it on
    every hit, byte-identical to freshly executed rows.
    """

    #: Bump when the stored schema or its semantics change within a version.
    #: 5 = report schema 5 (the ``incremental`` cone-counter block of the
    #: per-cone proof-reuse path).  4 added the ``attempts``
    #: retry/fallback history plus an entry-level ``sha256`` integrity
    #: checksum.  Entries of earlier generations are not re-read (their
    #: keys differ) but still *parse* via the report layer's legacy-schema
    #: support, so a directory can hold several generations.
    SCHEMA = 5

    #: Row statuses that are deterministic outcomes of (circuit, budgets).
    CACHEABLE_STATUSES = ("ok", "mismatch", "TO", "n/a")

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._hasher = NetlistHasher()

    # -- keying ----------------------------------------------------------------

    def _netlist_hash(self, architecture: str, width: int) -> str | None:
        """Content hash of a generated netlist (``None`` = not hashable)."""
        return self._hasher.hash(architecture, width)

    def key(self, job: VerificationJob, config: ExperimentConfig,
            task_timeout_s: float | None = None) -> str | None:
        """Cache key of a job under the given budgets (``None`` = uncacheable).

        Delegates to :func:`result_cache_key` with this cache's memoized
        netlist hasher — job-level overrides (``job.config``,
        ``job.task_timeout_s``) take precedence over the batch-level
        arguments, so two jobs of one batch running under different budget
        groups never share an entry.
        """
        return result_cache_key(job, config, task_timeout_s=task_timeout_s,
                                hasher=self._hasher)

    # -- storage ---------------------------------------------------------------

    def get(self, key: str | None) -> dict | None:
        """Return the cached row for ``key``, or ``None`` on a miss."""
        report = self.get_report(key)
        return report.to_row() if report is not None else None

    def get_report(self, key: str | None) -> "VerificationReport | None":
        """Return the cached report for ``key``, or ``None`` on a miss.

        A corrupt entry — unparseable JSON, a malformed report document, or
        an integrity-checksum mismatch — is *quarantined* (renamed to
        ``<key>.json.quarantined``) and reported as a miss, so one torn or
        bit-rotted file costs a re-execution instead of poisoning every
        re-run.  A file that vanishes or is unreadable is simply a miss.
        """
        if key is None:
            return None
        path = self.directory / f"{key}.json"
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            document = json.loads(raw.decode("utf-8"))
            report = VerificationReport.from_dict(document["report"])
            stored = document.get("sha256")
            if stored is not None and stored != self._checksum(report):
                raise ValueError("cache entry checksum mismatch")
            return report
        except (ValueError, KeyError, TypeError, ReproError):
            self._quarantine(path)
            return None

    @staticmethod
    def _checksum(report: "VerificationReport") -> str:
        """Integrity checksum over the canonical report serialization."""
        return hashlib.sha256(report.to_json().encode("utf-8")).hexdigest()

    @staticmethod
    def _quarantine(path: Path) -> None:
        target = path.with_name(path.name + ".quarantined")
        try:
            path.replace(target)
        except OSError:
            pass  # a concurrent reader already moved (or removed) it

    def put(self, key: str | None, job: VerificationJob, row: dict) -> None:
        """Store a completed row unless it reports an infrastructure failure."""
        if key is None or row.get("status") not in self.CACHEABLE_STATUSES:
            return
        self.put_report(key, VerificationReport.from_row(row), job=job)

    def put_report(self, key: str | None, report: "VerificationReport",
                   job: VerificationJob | None = None) -> bool:
        """Store a canonical report under an explicit key.

        The entry point of the shared-cache protocol (``PUT
        /v1/cache/{key}`` and the fleet dispatcher): the caller computed
        the key (:func:`result_cache_key`), the cache only enforces the
        cacheability contract.  Returns ``True`` iff the entry was
        published — infrastructure-failure reports and unwritable
        directories are a quiet ``False``, never an exception.
        """
        if key is None or report.status not in self.CACHEABLE_STATUSES:
            return False
        document: dict = {}
        if job is not None:
            document["job"] = {"architecture": job.architecture,
                               "width": job.width, "method": job.method}
        document["report"] = report.to_dict()
        document["sha256"] = self._checksum(report)
        path = self.directory / f"{key}.json"
        # Atomic publish so concurrent table runs never read half a row.
        # The temporary is per-writer (pid AND thread), not just per
        # process — service batches publish from pool threads.
        temporary = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            temporary.write_text(json.dumps(document, indent=2) + "\n",
                                 encoding="utf-8")
            temporary.replace(path)
        except OSError:
            temporary.unlink(missing_ok=True)
            return False
        maybe_corrupt_published_entry(path)
        return True


# ---------------------------------------------------------------------------
# Persistent worker pool
# ---------------------------------------------------------------------------

def _pool_worker_main(task_queue, result_queue, config: ExperimentConfig) -> None:
    """Worker-process loop: run jobs until the ``None`` sentinel arrives.

    Reusing one process for many jobs amortises the fork + import cost that
    dominates small (4-bit) verification jobs; crash isolation is preserved
    because a dying worker only takes its current job down and the parent
    respawns a replacement.

    The chaos hooks (``repro.resilience.faults``) live here and only here:
    an injected ``worker-crash`` (``os._exit``) or ``worker-latency`` fires
    inside a disposable worker process, never in the importing parent, and
    both are inert without a ``REPRO_FAULT_PLAN`` in the environment.
    """
    # ``token`` is opaque to the worker (the parent uses ``(index, epoch)``
    # so a result from a superseded dispatch of a retried job is
    # distinguishable from the live attempt's result).
    for token, job in iter(task_queue.get, None):
        fault_key = f"{job.architecture}/{job.width}/{job.method}"
        maybe_delay(fault_key)
        maybe_crash(fault_key)
        result_queue.put((token, _guarded_run_job(job, config)))


class _PoolWorker:
    """Parent-side handle of one persistent worker process."""

    __slots__ = ("task_queue", "process", "index", "job", "deadline",
                 "started")

    def __init__(self, context, config: ExperimentConfig,
                 result_queue) -> None:
        self.task_queue = context.Queue()
        self.process = context.Process(
            target=_pool_worker_main,
            args=(self.task_queue, result_queue, config), daemon=True)
        self.process.start()
        self.index: int | None = None
        self.job: VerificationJob | None = None
        self.deadline: float | None = None
        self.started: float | None = None

    @property
    def busy(self) -> bool:
        return self.index is not None

    def assign(self, token, job: VerificationJob,
               task_timeout_s: float | None) -> None:
        # ``token`` is the parent's dispatch identity (``(index, epoch)``
        # in the pool runner); the worker echoes it with the result.
        self.index = token
        self.job = job
        self.started = time.monotonic()
        self.deadline = (self.started + task_timeout_s
                         if task_timeout_s is not None else None)
        self.task_queue.put((token, job))

    def release(self) -> None:
        self.index = None
        self.job = None
        self.deadline = None
        self.started = None

    def stop(self) -> None:
        """Ask the worker to exit; escalate to terminate if it lingers."""
        if self.process.is_alive():
            try:
                self.task_queue.put(None)
            except (OSError, ValueError):
                pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join()

    def kill(self) -> None:
        self.process.terminate()
        self.process.join()


class ParallelRunner:
    """Fan verification jobs across a persistent worker pool with crash isolation.

    A pool of at most ``workers`` long-lived ``multiprocessing`` processes
    executes the jobs, so the fork + import cost is paid once per worker
    instead of once per job (which dominates small 4-bit runs).  Crash
    isolation and the hard per-job wall-clock limit are preserved: a hard
    crash (segfault, OOM kill) or a job exceeding ``task_timeout_s`` kills
    only the worker it ran on — the parent reports the job as a table row
    (``status="crash"`` / ``"TO"``) and respawns a replacement worker.
    Results are streamed to the optional ``on_result`` callback as they
    complete and returned in job order, so the verdicts are byte-for-byte
    identical to the serial path regardless of worker count or completion
    order.

    With a cache directory (``cache_dir``, ``config.cache_dir``, or the
    ``REPRO_BENCH_CACHE`` environment variable) completed rows are stored
    on disk keyed by (netlist content hash, method, width, budgets);
    re-running a table then only executes changed or uncached jobs and
    reproduces the cached rows verbatim.

    Parameters
    ----------
    config:
        Budgets applied to every job (the in-process time/monomial budgets
        still produce the paper-style ``TO`` rows).
    workers:
        Number of worker processes; ``None`` uses ``os.cpu_count()``.
        ``workers <= 1`` runs serially in-process (still crash-isolated
        against Python exceptions, not against hard crashes).
    task_timeout_s:
        Hard per-job wall-clock limit enforced by the parent via
        ``Process.terminate``; ``None`` disables the hard limit and relies
        on the in-process budgets.
    cache_dir:
        Directory of the on-disk result cache; overrides
        ``config.cache_dir``.  ``None`` with no configured directory
        disables caching.
    retry_policy:
        A :class:`repro.resilience.RetryPolicy` giving crashed and
        hard-timed-out jobs further attempts on a fresh worker (with
        deterministic backoff); ``None`` (the default) reports the first
        failure exactly as before.  Jobs that needed more than one attempt
        carry the history in their row's ``attempts`` key.
    straggler_grace_s:
        With a retry policy, a busy worker whose job has run longer than
        this grace is killed and the job re-dispatched (counted as a
        retry attempt, classified ``hard_timeout``); ``None`` disables
        straggler re-dispatch.  Only jobs with retry budget left are ever
        killed, so a genuinely long job still finishes on its last attempt.
    """

    def __init__(self, config: ExperimentConfig | None = None,
                 workers: int | None = None,
                 task_timeout_s: float | None = None,
                 cache_dir: str | os.PathLike | None = None,
                 retry_policy=None,
                 straggler_grace_s: float | None = None) -> None:
        self.config = config or ExperimentConfig.from_environment()
        if workers is None:
            workers = self.config.jobs if self.config.jobs > 1 else (
                os.cpu_count() or 1)
        self.workers = max(1, int(workers))
        self.task_timeout_s = task_timeout_s
        directory = cache_dir if cache_dir is not None else self.config.cache_dir
        self.cache = ResultCache(directory) if directory else None
        self.retry_policy = retry_policy
        self.straggler_grace_s = straggler_grace_s
        #: Rows served from the cache / executed fresh by the last run.
        self.last_cache_hits = 0
        self.last_executed = 0
        #: Extra attempts (beyond each job's first) spent by the last run.
        self.last_retries = 0

    # -- job catalog helpers ---------------------------------------------------

    @staticmethod
    def catalog(architectures: Iterable[str], widths: Iterable[int],
                methods: Iterable[str]) -> list[VerificationJob]:
        """The full (architecture, width, method) job grid, widths outermost."""
        return [VerificationJob(arch, width, method)
                for width in widths for arch in architectures
                for method in methods]

    # -- cache plumbing --------------------------------------------------------

    def _cache_key(self, job: VerificationJob) -> str | None:
        if self.cache is None:
            return None
        return self.cache.key(job, self.config, self.task_timeout_s)

    def _job_timeout(self, job: VerificationJob) -> float | None:
        """Effective hard wall-clock limit of one job (job overrides runner)."""
        return (job.task_timeout_s if job.task_timeout_s is not None
                else self.task_timeout_s)

    def _finish_row(self, job: VerificationJob, row: dict,
                    cache_key: str | None,
                    on_result: Callable[[VerificationJob, dict], None] | None,
                    ) -> dict:
        if self.cache is not None and cache_key is not None:
            self.cache.put(cache_key, job, row)
        if on_result is not None:
            on_result(job, row)
        return row

    # -- execution -------------------------------------------------------------

    def run_serial(self, jobs: Sequence[VerificationJob],
                   on_result: Callable[[VerificationJob, dict], None] | None = None,
                   ) -> list[dict]:
        """Reference serial execution (same rows, same order, one process)."""
        rows = []
        self.last_cache_hits = 0
        self.last_executed = 0
        self.last_retries = 0
        for job in jobs:
            key = self._cache_key(job)
            row = self.cache.get(key) if self.cache is not None else None
            if row is None:
                self.last_executed += 1
                row = _guarded_run_job(job, self.config)
                self._finish_row(job, row, key, on_result)
            else:
                self.last_cache_hits += 1
                if on_result is not None:
                    on_result(job, row)
            rows.append(row)
        return rows

    def run(self, jobs: Sequence[VerificationJob],
            on_result: Callable[[VerificationJob, dict], None] | None = None,
            ) -> list[dict]:
        """Run all jobs and return their rows in job order."""
        jobs = list(jobs)
        self.last_retries = 0
        if not jobs:
            self.last_cache_hits = 0
            self.last_executed = 0
            return []

        results: dict[int, dict] = {}
        keys: dict[int, str | None] = {}
        pending: list[int] = []
        if self.cache is not None:
            for index, job in enumerate(jobs):
                keys[index] = key = self._cache_key(job)
                row = self.cache.get(key)
                if row is None:
                    pending.append(index)
                else:
                    results[index] = row
                    if on_result is not None:
                        on_result(job, row)
        else:
            keys = dict.fromkeys(range(len(jobs)))
            pending = list(range(len(jobs)))
        self.last_cache_hits = len(jobs) - len(pending)
        self.last_executed = len(pending)

        if not pending:
            return [results[i] for i in range(len(jobs))]
        # The hard wall-clock limit needs a killable worker process, so the
        # in-process shortcut only applies when no such limit was requested.
        if (all(self._job_timeout(jobs[index]) is None for index in pending)
                and (self.workers <= 1 or len(pending) <= 1)):
            for index in pending:
                job = jobs[index]
                row = _guarded_run_job(job, self.config)
                results[index] = self._finish_row(job, row, keys[index],
                                                  on_result)
            return [results[i] for i in range(len(jobs))]

        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        result_queue = context.Queue()
        # Longest-expected-first assignment: without it a heavy job picked
        # up late (one 16-bit Booth run, say) serialises the tail of the
        # batch.  The sort is stable, so equal-cost jobs keep grid order,
        # and the result rows are joined by index — byte-identical to the
        # serial path regardless of the schedule.
        queue_order = sorted(pending, key=lambda index:
                             expected_cost_key(jobs[index]), reverse=True)
        next_slot = 0
        outstanding = len(pending)
        pool: list[_PoolWorker] = [
            _PoolWorker(context, self.config, result_queue)
            for _ in range(min(self.workers, len(pending)))]
        busy: dict[int, _PoolWorker] = {}
        policy = self.retry_policy
        # Per-job retry state: 1-based attempt counts, accumulated attempt
        # histories, re-dispatches waiting out their backoff delay, and a
        # per-index dispatch epoch.  The epoch rides through the worker as
        # an opaque token so a late result from a killed earlier attempt
        # (the worker enqueued it just before the kill landed) can never
        # be confused with the live attempt's result.
        attempt_counts: dict[int, int] = {}
        histories: dict[int, list[dict]] = {}
        retry_queue: list[tuple[float, int]] = []
        epochs: dict[int, int] = {}

        def pop_ready_index() -> int | None:
            nonlocal next_slot
            now = time.monotonic()
            for position, (ready_at, index) in enumerate(retry_queue):
                if ready_at <= now:
                    retry_queue.pop(position)
                    return index
            if next_slot < len(queue_order):
                index = queue_order[next_slot]
                next_slot += 1
                return index
            return None

        def assign_idle() -> None:
            for slot, worker in enumerate(pool):
                if worker.busy:
                    continue
                index = pop_ready_index()
                if index is None:
                    break
                if not worker.process.is_alive():
                    # An idle worker that died between jobs (e.g. an OOM
                    # kill after delivering its result) must not receive
                    # work — the job would be misreported as a crash.
                    worker.kill()
                    pool[slot] = worker = _PoolWorker(context, self.config,
                                                      result_queue)
                epochs[index] = epochs.get(index, 0) + 1
                worker.assign((index, epochs[index]), jobs[index],
                              self._job_timeout(jobs[index]))
                busy[index] = worker

        def finish(token: tuple[int, int], row: dict) -> None:
            nonlocal outstanding
            index, epoch = token
            if epochs.get(index) != epoch:
                # Result of a superseded dispatch (a retried attempt was
                # already killed and re-dispatched) — drop it.
                return
            worker = busy.pop(index, None)
            if worker is None:
                # Already reported (e.g. terminated as a hard timeout just as
                # its late result arrived) — drop the stale row.
                return
            worker.release()
            job = jobs[index]
            attempt = attempt_counts.get(index, 1)
            if policy is not None:
                failure = classify_row(row)
                if (policy.is_retryable(failure)
                        and attempt < policy.max_attempts):
                    # Retryable environment failure with budget left: log
                    # the attempt, wait out the (deterministic) backoff,
                    # and re-dispatch on whichever worker frees up — the
                    # crashed worker is already being replaced.
                    delay = policy.delay_s(attempt, key=job.key)
                    histories.setdefault(index, []).append(attempt_entry(
                        attempt, job.method,
                        "initial" if attempt == 1 else "retry",
                        failure, reason=row.get("reason"),
                        next_delay_s=round(delay, 6)))
                    attempt_counts[index] = attempt + 1
                    self.last_retries += 1
                    retry_queue.append((time.monotonic() + delay, index))
                    return
                if index in histories:
                    # The job needed more than one attempt: close the
                    # history with the final outcome and let it ride on
                    # the row (and therefore through cache and report).
                    history = histories.pop(index)
                    report = VerificationReport.from_row(row)
                    history.append(attempt_entry(
                        attempt, job.method,
                        "initial" if attempt == 1 else "retry",
                        failure if failure != "none" else report.verdict,
                        reason=row.get("reason")))
                    report.attempts = history
                    row = report.to_row()
            results[index] = self._finish_row(job, row, keys[index],
                                              on_result)
            outstanding -= 1

        try:
            assign_idle()
            while outstanding:
                try:
                    token, row = result_queue.get(timeout=0.05)
                except Exception:  # queue.Empty - poll worker health instead
                    now = time.monotonic()
                    for slot, worker in enumerate(pool):
                        if not worker.busy:
                            continue
                        token, job = worker.index, worker.job
                        if (worker.deadline is not None
                                and now > worker.deadline):
                            # Hard timeout: the worker is wedged inside the
                            # job, so it is killed and replaced.
                            worker.kill()
                            pool[slot] = _PoolWorker(context, self.config,
                                                     result_queue)
                            finish(token, {
                                "architecture": job.architecture,
                                "width": job.width, "method": job.method,
                                "status": "TO", "time": "TO",
                                "time_s": self._job_timeout(job),
                                "verified": None,
                                "reason": "hard task timeout",
                            })
                        elif (self.straggler_grace_s is not None
                              and policy is not None
                              and worker.started is not None
                              and now - worker.started > self.straggler_grace_s
                              and attempt_counts.get(token[0], 1)
                              < policy.max_attempts):
                            # Straggler re-dispatch: the job has retry
                            # budget, so killing the slow worker and
                            # re-running beats waiting for the hard
                            # deadline.  Guarded on remaining attempts —
                            # the last attempt always runs to completion.
                            worker.kill()
                            pool[slot] = _PoolWorker(context, self.config,
                                                     result_queue)
                            finish(token, {
                                "architecture": job.architecture,
                                "width": job.width, "method": job.method,
                                "status": "TO", "time": "TO",
                                "time_s": self.straggler_grace_s,
                                "verified": None,
                                "reason": "straggler re-dispatch after "
                                          f"{self.straggler_grace_s}s grace",
                            })
                        elif not worker.process.is_alive():
                            # Dead without a result: give the queue one last
                            # drain chance, then report the crash.  The
                            # drained row may belong to another worker, in
                            # which case this worker's job still crashed.
                            try:
                                late_token, late_row = result_queue.get(
                                    timeout=0.2)
                            except Exception:
                                late_token, late_row = None, None
                            if late_token is not None:
                                finish(late_token, late_row)
                            if late_token != token:
                                exitcode = worker.process.exitcode
                                finish(token, {
                                    "architecture": job.architecture,
                                    "width": job.width, "method": job.method,
                                    "status": "crash", "time": "-",
                                    "time_s": None, "verified": None,
                                    "reason": f"worker exited with code "
                                              f"{exitcode}",
                                })
                            worker.kill()
                            pool[slot] = _PoolWorker(context, self.config,
                                                     result_queue)
                    assign_idle()
                    continue
                finish(token, row)
                assign_idle()
        finally:
            for worker in pool:
                worker.stop()
        return [results[i] for i in range(len(jobs))]


def run_catalog(architectures: Iterable[str], widths: Iterable[int],
                methods: Iterable[str], config: ExperimentConfig | None = None,
                jobs: int = 1,
                task_timeout_s: float | None = None,
                on_result: Callable[[VerificationJob, dict], None] | None = None,
                ) -> list[dict]:
    """Convenience wrapper: build the job grid and run it (serial or parallel)."""
    runner = ParallelRunner(config=config, workers=jobs,
                            task_timeout_s=task_timeout_s)
    grid = ParallelRunner.catalog(architectures, widths, methods)
    return runner.run(grid, on_result=on_result)
