"""Regeneration of the paper's evaluation tables.

* :func:`table1_rows` — Table I: simple-partial-product multipliers, columns
  for the conventional CEC baselines (stand-ins for the commercial tool and
  the CPP approach), MT-FO and MT-LR.
* :func:`table2_rows` — Table II: Booth multipliers (CPP stand-in reported
  as not applicable, as in the paper).
* :func:`table3_rows` — Table III: MT-LR statistics (#CVM, GB-reduction
  time, #P, #M, #MP, #VM).
* :func:`adder_blowup_rows` — the Section III observation that plain GB
  reduction blows up on parallel-prefix adders.
* :func:`ablation_rows` — XOR rewriting without common rewriting
  (Section IV-B remark).

Each function returns a list of dictionaries; :func:`format_table` renders
them in a paper-like fixed-width layout.  The operand widths default to
Python-feasible sizes (4/8 bit) and can be extended through
``REPRO_BENCH_BITS``, as documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.api.registry import (
    ABLATION_METHODS,
    ADDER_BLOWUP_METHODS,
    COMPARISON_METHODS,
    TABLE1_BASELINES,
    TABLE2_BASELINES,
)
from repro.api.request import Budgets
from repro.errors import BlowUpError
from repro.experiments.runner import (
    ExperimentConfig,
    run_catalog,
    run_membership_testing,
    run_sat_cec,
)
from repro.generators.adders import generate_adder
from repro.generators.catalog import TABLE1_ARCHITECTURES, TABLE2_ARCHITECTURES, \
    TABLE3_ARCHITECTURES
from repro.verification.engine import verify_adder


def _merge_method_columns(architecture: str, width: int, columns: dict) -> dict:
    row = {"benchmark": architecture, "bits": f"{width}/{2 * width}"}
    row.update(columns)
    return row


def _method_grid(architectures: Sequence[str], methods: Sequence[str],
                 config: ExperimentConfig) -> dict[tuple[str, int, str], dict]:
    """All (architecture, width, method) cells, keyed for column assembly.

    Runs through :func:`repro.experiments.runner.run_catalog`, so with
    ``config.jobs > 1`` the whole grid is fanned across worker processes.
    """
    rows = run_catalog(architectures, config.widths, methods,
                       config=config, jobs=config.jobs)
    return {(row["architecture"], row["width"], row["method"]): row
            for row in rows}


def table1_rows(config: ExperimentConfig | None = None,
                architectures: Sequence[str] = TABLE1_ARCHITECTURES,
                include_baselines: bool = True) -> list[dict]:
    """Verification results for simple-partial-product multipliers (Table I)."""
    config = config or ExperimentConfig.from_environment()
    methods = (list(TABLE1_BASELINES) if include_baselines else [])
    methods += list(COMPARISON_METHODS)
    grid = _method_grid(architectures, methods, config)
    rows = []
    for width in config.widths:
        for architecture in architectures:
            columns = {}
            if include_baselines:
                for baseline in TABLE1_BASELINES:
                    columns[baseline] = grid[architecture, width, baseline]["time"]
            for method in COMPARISON_METHODS:
                columns[method] = grid[architecture, width, method]["time"]
            primary = grid[architecture, width, COMPARISON_METHODS[-1]]
            columns["verified"] = primary["verified"]
            rows.append(_merge_method_columns(architecture, width, columns))
    return rows


def table2_rows(config: ExperimentConfig | None = None,
                architectures: Sequence[str] = TABLE2_ARCHITECTURES,
                include_baselines: bool = True) -> list[dict]:
    """Verification results for Booth multipliers (Table II).

    The CPP stand-in column is reported as ``-`` because the approach does
    not support Booth partial products (see the paper's Table II).
    """
    config = config or ExperimentConfig.from_environment()
    methods = (list(TABLE2_BASELINES) if include_baselines else [])
    methods += list(COMPARISON_METHODS)
    grid = _method_grid(architectures, methods, config)
    rows = []
    for width in config.widths:
        for architecture in architectures:
            columns = {}
            if include_baselines:
                for baseline in TABLE2_BASELINES:
                    columns[baseline] = grid[architecture, width, baseline]["time"]
                # The CPP stand-in does not support Booth partial products.
                columns["cpp"] = run_sat_cec(architecture, width, config,
                                             booth_supported=False)["time"]
            for method in COMPARISON_METHODS:
                columns[method] = grid[architecture, width, method]["time"]
            primary = grid[architecture, width, COMPARISON_METHODS[-1]]
            columns["verified"] = primary["verified"]
            rows.append(_merge_method_columns(architecture, width, columns))
    return rows


def table3_rows(config: ExperimentConfig | None = None,
                architectures: Sequence[str] = TABLE3_ARCHITECTURES) -> list[dict]:
    """MT-LR statistics (Table III): #CVM, GB-reduction time, #P, #M, #MP, #VM."""
    config = config or ExperimentConfig.from_environment()
    rows = []
    width = max(config.widths)
    # Table III reports the paper's primary method (the last comparison
    # column, MT-LR).
    runs = {row["architecture"]: row
            for row in run_catalog(architectures, [width],
                                   [COMPARISON_METHODS[-1]],
                                   config=config, jobs=config.jobs)}
    for architecture in architectures:
        run = runs[architecture]
        if run["status"] in ("TO", "error", "crash"):
            rows.append({"benchmark": architecture, "bits": f"{width}/{2 * width}",
                         "#CVM": "TO", "GB reduction": "TO", "#P": "-",
                         "#M": "-", "#MP": "-", "#VM": "-"})
            continue
        rows.append({
            "benchmark": architecture,
            "bits": f"{width}/{2 * width}",
            "#CVM": run["cancelled_vanishing_monomials"],
            "GB reduction": f"{run['reduction_time_s']:.2f}s",
            "#P": run["num_polynomials"],
            "#M": run["num_monomials"],
            "#MP": run["max_polynomial_terms"],
            "#VM": run["max_monomial_variables"],
        })
    return rows


def adder_blowup_rows(widths: Iterable[int] = (4, 8, 12, 16, 24, 32),
                      adder_kind: str = "KS",
                      monomial_budget: int = 100_000,
                      time_budget_s: float = 20.0) -> list[dict]:
    """Section III observation: parallel-prefix adders under the three methods.

    Reference [8] of the paper reports that plain symbolic computer algebra
    cannot verify Kogge-Stone adders beyond 6 bits; MT-LR handles them
    easily because the vanishing monomials are removed during rewriting.
    """
    rows = []
    for width in widths:
        row = {"adder": f"{adder_kind}-{width}"}
        for method in ADDER_BLOWUP_METHODS:
            netlist = generate_adder(adder_kind, width)
            try:
                result = verify_adder(netlist, method=method,
                                      budgets=Budgets(
                                          monomial_budget=monomial_budget,
                                          time_budget_s=time_budget_s),
                                      find_counterexample=False)
                row[method] = f"{result.total_time_s:.2f}s"
                row[f"{method}-peak"] = result.reduction_trace.peak_monomials
            except BlowUpError:
                row[method] = "TO"
                row[f"{method}-peak"] = f">{monomial_budget}"
        rows.append(row)
    return rows


def ablation_rows(config: ExperimentConfig | None = None,
                  architectures: Sequence[str] = ("SP-CT-BK", "BP-WT-CL"),
                  ) -> list[dict]:
    """Ablation of the two rewriting passes (Section IV-B).

    Compares full MT-LR against XOR rewriting without the common-rewriting
    pass (``mt-xor``) and against fanout rewriting (``mt-fo``).
    """
    config = config or ExperimentConfig.from_environment()
    rows = []
    width = max(config.widths)
    for architecture in architectures:
        row = {"benchmark": architecture, "bits": f"{width}/{2 * width}"}
        for method in ABLATION_METHODS:
            run = run_membership_testing(architecture, width, method, config)
            row[method] = run["time"]
            row[f"{method}-peak"] = run.get("peak_remainder", "-")
        rows.append(row)
    return rows


def format_table(rows: Sequence[dict], title: str = "") -> str:
    """Render rows as a fixed-width text table (paper-style)."""
    if not rows:
        return f"{title}\n(no rows)\n"
    columns = list(rows[0].keys())
    widths = {col: max(len(str(col)),
                       max(len(str(row.get(col, ""))) for row in rows))
              for col in columns}
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(" | ".join(str(row.get(col, "")).ljust(widths[col])
                                for col in columns))
    return "\n".join(lines) + "\n"


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.experiments.tables table1|table2|table3|adders|ablation``.

    ``--jobs N`` fans the underlying verification runs across ``N`` worker
    processes (see :class:`repro.experiments.runner.ParallelRunner`).
    """
    import sys

    argv = list(sys.argv[1:] if argv is None else argv)
    jobs = None
    if "--jobs" in argv:
        position = argv.index("--jobs")
        try:
            jobs = int(argv[position + 1])
        except (IndexError, ValueError):
            print("--jobs requires an integer argument", file=sys.stderr)
            return 1
        del argv[position:position + 2]
    target = argv[0] if argv else "table1"
    config = ExperimentConfig.from_environment()
    if jobs is not None:
        config.jobs = jobs
    if target == "table1":
        print(format_table(table1_rows(config), "Table I (simple partial products)"))
    elif target == "table2":
        print(format_table(table2_rows(config), "Table II (Booth partial products)"))
    elif target == "table3":
        print(format_table(table3_rows(config), "Table III (MT-LR statistics)"))
    elif target == "adders":
        print(format_table(adder_blowup_rows(), "Parallel adder blow-up (Section III)"))
    elif target == "ablation":
        print(format_table(ablation_rows(config), "Rewriting ablation (Section IV-B)"))
    else:
        print(f"unknown table {target!r}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
