"""Experiment harness regenerating the paper's evaluation tables.

Single runs go through :func:`run_membership_testing` / :func:`run_sat_cec`
/ :func:`run_bdd_cec` (or their uniform dispatch :func:`run_job`); whole
table grids can be fanned across worker processes with
:class:`ParallelRunner` / :func:`run_catalog`, which isolate crashes and
hard timeouts per circuit and return rows in deterministic job order.  The
CLI exposes the parallel path as ``repro-verify batch --jobs N`` and
``repro-verify table <name> --jobs N``; the benchmark harness picks the
worker count up from the ``REPRO_BENCH_JOBS`` environment variable.
"""

from repro.experiments.runner import (
    ExperimentConfig,
    ParallelRunner,
    VerificationJob,
    run_bdd_cec,
    run_catalog,
    run_job,
    run_membership_testing,
    run_sat_cec,
)
from repro.experiments.tables import (
    format_table,
    table1_rows,
    table2_rows,
    table3_rows,
    adder_blowup_rows,
    ablation_rows,
)

__all__ = [
    "ExperimentConfig",
    "ParallelRunner",
    "VerificationJob",
    "ablation_rows",
    "adder_blowup_rows",
    "format_table",
    "run_bdd_cec",
    "run_catalog",
    "run_job",
    "run_membership_testing",
    "run_sat_cec",
    "table1_rows",
    "table2_rows",
    "table3_rows",
]
