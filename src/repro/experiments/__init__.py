"""Experiment harness regenerating the paper's evaluation tables."""

from repro.experiments.runner import (
    ExperimentConfig,
    run_bdd_cec,
    run_membership_testing,
    run_sat_cec,
)
from repro.experiments.tables import (
    format_table,
    table1_rows,
    table2_rows,
    table3_rows,
    adder_blowup_rows,
    ablation_rows,
)

__all__ = [
    "ExperimentConfig",
    "ablation_rows",
    "adder_blowup_rows",
    "format_table",
    "run_bdd_cec",
    "run_membership_testing",
    "run_sat_cec",
    "table1_rows",
    "table2_rows",
    "table3_rows",
]
