"""repro.server — the HTTP/async front end over the verification service.

The network face of the "heavy traffic" north star: a pure-stdlib asyncio
HTTP/1.1 server exposing :class:`~repro.api.service.VerificationService`
— and through it the worker pool, on-disk result cache, and
longest-expected-first scheduling of
:class:`~repro.experiments.runner.ParallelRunner`.  Worker processes are
pooled per batch (the fork cost is amortised across that batch's jobs,
as everywhere else in the repo); what persists *across* requests is the
result cache, so repeated traffic executes only uncached work.  The
endpoints:
``POST /v1/verify`` (one request, the canonical
:class:`~repro.api.report.VerificationReport` JSON), ``POST /v1/batch``
(grids with per-request budget groups — synchronous, ``"async": true``
job submission, or ``"stream": true`` chunked NDJSON), ``GET
/v1/jobs/{id}`` (bounded in-memory job store), ``GET /v1/backends``
(registry introspection), ``GET /v1/version`` (package/schema versions,
checked by the fleet dispatcher before mixing workers),
``GET``/``PUT /v1/cache/{key}`` (the shared content-addressed result
cache that fleet workers read through and publish back to), and
``GET /healthz`` / ``GET /metrics``.  Connections are HTTP/1.1
keep-alive by default; :class:`~repro.server.client.VerificationClient`
pools one connection per thread.  The wire protocol is documented in
``docs/http-api.md``; the CLI spelling is ``repro-verify serve`` (add
``--fleet CONFIG`` to make the server a coordinator that scatters
batches across a :class:`~repro.fleet.FleetTopology`, and
``--shared-cache URL`` to make a worker check/populate a coordinator's
cache).

Layering: :mod:`~repro.server.app` is the transport-free application
(routes, wire schemas, metrics), :mod:`~repro.server.http` the asyncio
byte mover, :mod:`~repro.server.jobs` the bounded job store, and
:mod:`~repro.server.client` a thin ``http.client`` consumer used by the
tests, benchmarks, and examples.

Quickstart::

    from repro.server import ServerThread, VerificationClient

    with ServerThread() as server:
        client = VerificationClient(port=server.port)
        report = client.verify({"architecture": "SP-AR-RC", "width": 4})
        assert report.verdict == "verified"
"""

from repro.server.app import (
    ApiError,
    HttpResponse,
    VerificationServerApp,
    parse_request_document,
)
from repro.server.client import ServerError, VerificationClient
from repro.server.http import ServerThread, VerificationHttpServer, serve
from repro.server.jobs import Job, JobStore, JobStoreFull

__all__ = [
    "ApiError",
    "HttpResponse",
    "Job",
    "JobStore",
    "JobStoreFull",
    "ServerError",
    "ServerThread",
    "VerificationClient",
    "VerificationHttpServer",
    "VerificationServerApp",
    "parse_request_document",
    "serve",
]
