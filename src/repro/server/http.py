"""Minimal asyncio HTTP/1.1 front end for the verification server.

Pure standard library: one :func:`asyncio.start_server` acceptor parses
requests (request line, headers, ``Content-Length`` body), hands each one
to :meth:`VerificationServerApp.handle` on a thread-pool executor — the
verification work is blocking CPU-bound Python, so the event loop only
ever moves bytes — and writes the response back.  Connections are
HTTP/1.1 persistent: the server answers ``Connection: keep-alive`` and
loops for the next request until the client asks to close, goes quiet
past :data:`KEEPALIVE_IDLE_S`, or shutdown starts.  Streaming responses
(:attr:`HttpResponse.stream`, the NDJSON batch path) are written chunk
by chunk and always close the connection when the stream ends.  No
routing, TLS, or chunked *request* bodies: the server is the network
face of the service API, not a general web framework.

Three entry points:

* :class:`VerificationHttpServer` — the asyncio server object
  (``await start()`` / ``await stop()``), for embedding in a loop you own,
* :func:`serve` — the blocking CLI entry point
  (``repro-verify serve``), runs until interrupted,
* :class:`ServerThread` — a context manager running the server on a
  background thread, used by the tests, the benchmark harness, and
  ``examples/http_client.py``.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.resilience.faults import active_plan
from repro.server.app import HttpResponse, VerificationServerApp, error_response

#: Hard parsing limits — requests beyond them are answered 431/413.
MAX_HEADER_LINE = 16_384
MAX_HEADER_COUNT = 100
MAX_BODY_BYTES = 16 * 1024 * 1024

#: A kept-alive connection idle longer than this is closed.  Above any
#: sane client think-time, below typical NAT/middlebox idle cutoffs.
KEEPALIVE_IDLE_S = 75.0

#: Reason phrases for the statuses the app emits.
_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests",
            431: "Request Header Fields Too Large", 500: "Internal Server Error",
            503: "Service Unavailable"}


class _BadRequest(Exception):
    """Connection-level protocol violation (answered without the app)."""

    def __init__(self, response: HttpResponse) -> None:
        super().__init__(response.status)
        self.response = response


class VerificationHttpServer:
    """Serve a :class:`VerificationServerApp` over asyncio HTTP/1.1.

    ``port=0`` binds an ephemeral port; the bound port is available as
    :attr:`port` after :meth:`start`.  ``max_workers`` bounds the thread
    pool the blocking app calls run on (batches additionally fan out to
    the service's worker *processes*, so this is request concurrency, not
    verification parallelism).  ``drain_s`` is the graceful-shutdown
    budget: :meth:`stop` first stops accepting, then waits up to this
    long for in-flight requests to finish answering before tearing the
    executor down — a SIGTERM mid-batch means the batch's response still
    goes out.
    """

    def __init__(self, app: VerificationServerApp, host: str = "127.0.0.1",
                 port: int = 8585, max_workers: int = 8,
                 drain_s: float = 30.0) -> None:
        self.app = app
        self.host = host
        self.port = port
        self.max_workers = max_workers
        self.drain_s = drain_s
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._stopping: asyncio.Event | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-http")

    async def start(self) -> None:
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_HEADER_LINE)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, drain_s: float | None = None) -> None:
        """Stop accepting, drain in-flight requests, then tear down.

        ``drain_s`` overrides the server-level drain budget for this stop
        (``0`` = no drain).  Draining waits on the open connection tasks —
        each one is answering exactly one request — so a response being
        computed when shutdown starts is still written back.
        """
        if self._stopping is not None:
            # Wake idle kept-alive connections so the drain below isn't
            # held hostage by clients that are merely between requests.
            self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        budget = self.drain_s if drain_s is None else drain_s
        current = asyncio.current_task()
        pending = {task for task in self._connections
                   if task is not current and not task.done()}
        if pending and budget:
            await asyncio.wait(pending, timeout=budget)
        self._executor.shutdown(wait=False, cancel_futures=True)
        self.app.close()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_one(reader, writer)
        finally:
            if task is not None:
                self._connections.discard(task)

    async def _serve_one(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        """Keep-alive loop: serve requests until the connection retires."""
        try:
            while await self._serve_request(reader, writer):
                pass
        finally:
            writer.close()

    async def _next_request(self, reader: asyncio.StreamReader,
                            ) -> "str | None":
        """The next request line, or ``None`` to retire the connection.

        Races the read against server shutdown and the keep-alive idle
        timeout; EOF (the client closed between requests) is a clean
        retirement, not a protocol error.  Over-long lines still raise
        :class:`_BadRequest` (431) like any other header line.
        """
        line_task = asyncio.ensure_future(self._read_line(reader))
        waiters = {line_task}
        stop_task = None
        if self._stopping is not None:
            stop_task = asyncio.ensure_future(self._stopping.wait())
            waiters.add(stop_task)
        try:
            done, _ = await asyncio.wait(waiters, timeout=KEEPALIVE_IDLE_S,
                                         return_when=asyncio.FIRST_COMPLETED)
        finally:
            if stop_task is not None:
                stop_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await stop_task
        if line_task not in done:
            line_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await line_task
            return None
        line = line_task.result()  # may raise _BadRequest (431)
        if not line.strip():
            return None  # EOF, or a blank line where a request should be
        return line.decode("latin-1").strip()

    async def _serve_request(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> bool:
        """Serve one request; ``True`` keeps the connection open."""
        fault_key = None
        close_requested = True
        try:
            request_line = await self._next_request(reader)
            if request_line is None:
                return False
            method, path, body, close_requested = \
                await self._read_request(reader, request_line)
            fault_key = f"{method} {path}"
        except _BadRequest as bad:
            response = bad.response
            close_requested = True
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.LimitOverrunError):
            return False
        else:
            loop = asyncio.get_running_loop()
            response = await loop.run_in_executor(
                self._executor, self.app.handle, method, path, body)
        if response.stream is not None:
            # Streaming responses have no Content-Length; the connection
            # close delimits the body.
            await self._write_streaming(writer, response)
            return False
        keep_open = (not close_requested
                     and not (self._stopping is not None
                              and self._stopping.is_set()))
        payload = self._render(response, keep_open)
        plan = active_plan()
        if plan is not None and fault_key is not None:
            fault = plan.should("disconnect", fault_key)
            if fault is not None:
                # Chaos: drop the connection after roughly half the
                # response — the client must see a short read, not a
                # parseable body.
                with contextlib.suppress(ConnectionError):
                    writer.write(payload[:max(1, len(payload) // 2)])
                    await writer.drain()
                return False
        try:
            writer.write(payload)
            await writer.drain()
        except ConnectionError:
            return False
        return keep_open

    async def _write_streaming(self, writer: asyncio.StreamWriter,
                               response: HttpResponse) -> None:
        """Write head + chunks as the (blocking) iterator produces them.

        The iterator runs on the executor so a slow batch never blocks
        the event loop; a client that disconnects mid-stream closes the
        generator (its cleanup tears the batch down) and stops paying
        for the rest of the grid.
        """
        reason = _REASONS.get(response.status, "Unknown")
        extra = "".join(f"{name}: {value}\r\n"
                        for name, value in response.headers.items())
        head = (f"HTTP/1.1 {response.status} {reason}\r\n"
                f"Content-Type: {response.content_type}\r\n"
                f"{extra}"
                f"Connection: close\r\n\r\n")
        loop = asyncio.get_running_loop()
        iterator = iter(response.stream)
        sentinel = object()
        try:
            writer.write(head.encode("latin-1"))
            await writer.drain()
            while True:
                chunk = await loop.run_in_executor(
                    self._executor, next, iterator, sentinel)
                if chunk is sentinel:
                    break
                writer.write(chunk)
                await writer.drain()
        except Exception:  # noqa: BLE001 - transport boundary
            pass
        finally:
            close = getattr(response.stream, "close", None)
            if close is not None:
                with contextlib.suppress(Exception):
                    await loop.run_in_executor(self._executor, close)

    @staticmethod
    async def _read_line(reader: asyncio.StreamReader) -> bytes:
        """One header line; over-limit lines answer 431 instead of dying.

        ``StreamReader.readline`` raises ``ValueError`` when a line exceeds
        the stream limit (``MAX_HEADER_LINE``) — surface that as a response,
        not an unhandled connection error.
        """
        try:
            return await reader.readline()
        except ValueError:
            raise _BadRequest(error_response(
                431, "header_too_large",
                "request header line too long")) from None

    async def _read_request(self, reader: asyncio.StreamReader,
                            request_line: str,
                            ) -> tuple[str, str, bytes, bool]:
        """Parse headers + body; returns ``(method, path, body, close)``.

        ``close`` is whether the *client* asked to retire the connection
        after this response: an explicit ``Connection: close``, or an
        HTTP/1.0 request without ``Connection: keep-alive``.
        """
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(error_response(
                400, "bad_request", f"malformed request line {request_line!r}"))
        method, target, version = parts
        path = target.split("?", 1)[0]
        content_length = 0
        connection = None
        # One extra iteration so exactly MAX_HEADER_COUNT headers followed
        # by the terminating blank line are accepted, not rejected.
        for _ in range(MAX_HEADER_COUNT + 1):
            line = await self._read_line(reader)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _BadRequest(error_response(
                        400, "bad_request",
                        "malformed Content-Length header")) from None
            elif name == "connection":
                connection = value.strip().lower()
        else:
            raise _BadRequest(error_response(
                431, "too_many_headers",
                f"more than {MAX_HEADER_COUNT} request headers"))
        if content_length < 0 or content_length > MAX_BODY_BYTES:
            raise _BadRequest(error_response(
                413, "body_too_large",
                f"request body exceeds {MAX_BODY_BYTES} bytes"))
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        if version == "HTTP/1.0":
            close = connection != "keep-alive"
        else:
            close = connection == "close"
        return method, path, body, close

    @staticmethod
    def _render(response: HttpResponse, keep_alive: bool = False) -> bytes:
        reason = _REASONS.get(response.status, "Unknown")
        extra = "".join(f"{name}: {value}\r\n"
                        for name, value in response.headers.items())
        connection = "keep-alive" if keep_alive else "close"
        head = (f"HTTP/1.1 {response.status} {reason}\r\n"
                f"Content-Type: {response.content_type}\r\n"
                f"Content-Length: {len(response.body)}\r\n"
                f"{extra}"
                f"Connection: {connection}\r\n\r\n")
        return head.encode("latin-1") + response.body


def serve(host: str = "127.0.0.1", port: int = 8585,
          app: VerificationServerApp | None = None,
          announce=None, **app_kwargs) -> None:
    """Blocking entry point: serve until interrupted (the CLI's ``serve``).

    ``app_kwargs`` are forwarded to :class:`VerificationServerApp` when no
    ready ``app`` is passed; ``announce`` (if given) is called with the
    started server — the CLI prints the bound address from it.
    """
    if app is None:
        app = VerificationServerApp(**app_kwargs)

    async def _main() -> None:
        server = VerificationHttpServer(app, host=host, port=port)
        await server.start()
        if announce is not None:
            announce(server)
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        # SIGTERM/SIGINT start a graceful drain: stop accepting, let
        # in-flight requests answer (up to drain_s), then exit 0 — a
        # supervisor restart mid-batch doesn't eat the batch's response.
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError,
                                     ValueError):
                loop.add_signal_handler(signum, stop_event.set)
        serve_task = asyncio.ensure_future(server.serve_forever())
        stop_task = asyncio.ensure_future(stop_event.wait())
        try:
            await asyncio.wait({serve_task, stop_task},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            serve_task.cancel()
            stop_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await serve_task
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


class ServerThread:
    """Context manager: the HTTP server on a daemon thread, port 0 by default.

    >>> with ServerThread(VerificationServerApp()) as server:
    ...     client = VerificationClient(port=server.port)
    """

    def __init__(self, app: VerificationServerApp | None = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.app = app if app is not None else VerificationServerApp()
        self.host = host
        self.port = port
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-http-server")
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("HTTP server failed to start within 10s")
        if self._startup_error is not None:
            raise RuntimeError("HTTP server failed to start") \
                from self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = VerificationHttpServer(self.app, host=self.host,
                                        port=self.port)
        try:
            await server.start()
        except BaseException as error:  # noqa: BLE001 - surfaced to __enter__
            self._startup_error = error
            self._ready.set()
            return
        self.port = server.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.stop()
