"""Bounded in-memory job store for asynchronous batch verification.

``POST /v1/batch`` with ``"async": true`` returns immediately with a job
id; the batch then runs on the server's background executor and clients
poll ``GET /v1/jobs/{id}`` until the job reaches a terminal state.  The
store is deliberately bounded: finished jobs are evicted oldest-first once
the capacity is reached (a poll for an evicted id is a 404), and when every
stored job is still pending or running at capacity, new submissions are
refused (the HTTP layer answers 503) instead of growing without bound.
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ReproError

#: Lifecycle of a job: ``pending`` (queued), ``running``, then exactly one
#: of the terminal states ``done`` (reports available) or ``failed``.
JOB_STATES = ("pending", "running", "done", "failed")


class JobStoreFull(ReproError):
    """Raised when every stored job is unfinished and the store is full."""


@dataclass
class Job:
    """One asynchronous batch submission and its lifecycle."""

    id: str
    state: str = "pending"
    created_s: float = field(default_factory=time.time)
    finished_s: float | None = None
    #: Reports of the completed batch, in request order (``done`` only).
    reports: list | None = None
    #: Failure reason (``failed`` only).
    error: str | None = None
    #: Result-cache counters of the completed batch.
    cache_hits: int = 0
    executed: int = 0

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    def to_document(self) -> dict:
        """The job as a ``GET /v1/jobs/{id}`` JSON document."""
        document = {
            "job": self.id,
            "state": self.state,
            "created_s": self.created_s,
            "finished_s": self.finished_s,
        }
        if self.state == "done":
            document["reports"] = [report.to_dict() for report in self.reports]
            document["cache_hits"] = self.cache_hits
            document["executed"] = self.executed
        if self.state == "failed":
            document["error"] = self.error
        return document


class JobStore:
    """Thread-safe bounded store of :class:`Job` entries.

    Capacity control happens at :meth:`create`: finished jobs are evicted
    oldest-first to make room, and :class:`JobStoreFull` is raised when the
    store holds ``limit`` unfinished jobs.  All transitions go through
    :meth:`start` / :meth:`finish` / :meth:`fail` under one lock, so the
    HTTP worker threads and the background batch executor never observe a
    half-updated job.
    """

    def __init__(self, limit: int = 256) -> None:
        if limit < 1:
            raise ValueError("job store limit must be >= 1")
        self.limit = limit
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._lock = threading.Lock()
        self._prefix = secrets.token_hex(4)
        self._sequence = 0
        self.evicted = 0

    def create(self) -> Job:
        """Register a new pending job, evicting finished jobs as needed."""
        with self._lock:
            while len(self._jobs) >= self.limit:
                oldest = next((job_id for job_id, job in self._jobs.items()
                               if job.finished), None)
                if oldest is None:
                    raise JobStoreFull(
                        f"job store holds {self.limit} unfinished jobs; "
                        "retry once one completes")
                del self._jobs[oldest]
                self.evicted += 1
            self._sequence += 1
            job = Job(id=f"{self._prefix}-{self._sequence:06d}")
            self._jobs[job.id] = job
            return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def start(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                job.state = "running"

    def finish(self, job_id: str, reports: list, cache_hits: int = 0,
               executed: int = 0) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                # Payload first, state flip last: readers poll state without
                # the lock, so "done" must never be visible before reports.
                job.reports = list(reports)
                job.cache_hits = cache_hits
                job.executed = executed
                job.finished_s = time.time()
                job.state = "done"

    def fail(self, job_id: str, error: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                job.error = error
                job.finished_s = time.time()
                job.state = "failed"

    def stats(self) -> dict:
        """Gauges for ``/healthz`` and ``/metrics``."""
        with self._lock:
            counts = dict.fromkeys(JOB_STATES, 0)
            for job in self._jobs.values():
                counts[job.state] += 1
            return {"stored": len(self._jobs), "limit": self.limit,
                    "evicted": self.evicted, **counts}
