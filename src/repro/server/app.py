"""The verification server application: routes, wire schemas, metrics.

This module is transport-free — :meth:`VerificationServerApp.handle` maps
``(HTTP method, path, body bytes)`` to an :class:`HttpResponse`, and the
asyncio front end (:mod:`repro.server.http`) only moves bytes.  That keeps
every endpoint unit-testable without sockets.

Endpoints
---------

* ``POST /v1/verify`` — one wire request document, answered with the
  canonical :class:`~repro.api.report.VerificationReport` JSON (the exact
  ``to_json()`` bytes of the in-process :meth:`VerificationService.submit`
  report).
* ``POST /v1/batch`` — ``{"requests": [...], "jobs": N?, "async": bool?,
  "stream": bool?}``; per-request ``budgets`` form budget groups honoured
  job-by-job by :meth:`VerificationService.run_batch`.  Synchronous
  batches answer with a ``{"reports": [...]}`` envelope; ``"async": true``
  answers 202 with a job id for ``GET /v1/jobs/{id}`` polling;
  ``"stream": true`` answers chunked NDJSON — one canonical report per
  line as it resolves, then a counter trailer.  A server started with a
  fleet topology scatters batches over its workers instead of the local
  pool.
* ``GET /v1/jobs/{id}`` — poll an asynchronous batch (bounded store,
  evicted ids are 404).
* ``GET /v1/certificates/{hash}`` — fetch a proof certificate emitted by
  a ``"certificate": true`` verify/batch request, by content hash
  (bounded store, evicted hashes are 404).
* ``GET /v1/backends`` — the :mod:`repro.api.registry` specs, including
  the full capability set (``supports_counterexample``,
  ``supports_stats``, ``certifiable``).
* ``GET /v1/version`` — package version plus wire-schema numbers (report
  schema, certificate version, cache schema); the fleet coordinator's
  mixed-schema handshake.
* ``GET/PUT /v1/cache/{key}`` — the shared content-addressed result
  cache (``repro-verify serve --cache``): fleet workers check before
  executing and publish after, so a row verified anywhere is verified
  everywhere.
* ``GET /healthz`` / ``GET /metrics`` — liveness and counters.

Every error is a structured JSON body
``{"error": {"code": ..., "message": ...}}`` with a 4xx/5xx status;
verification *outcomes* (refuted, budget trips) are 200 responses whose
report carries the verdict — the HTTP status describes the transport, the
verdict describes the circuit (see ``docs/http-api.md``).
"""

from __future__ import annotations

import dataclasses
import json
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import __version__
from repro.api.registry import backends
from repro.api.report import VERDICTS, VerificationReport
from repro.api.request import Budgets, VerificationRequest
from repro.api.service import VerificationService
from repro.errors import ReproError
from repro.server.jobs import JobStore, JobStoreFull

#: Wire-document keys accepted by ``POST /v1/verify`` and batch entries.
#: ``netlist`` and ``verilog_path`` are deliberately absent: in-memory
#: objects cannot travel over HTTP, and server-local file paths would let
#: clients read arbitrary files — external circuits come in as
#: ``verilog_text``.
REQUEST_KEYS = ("method", "architecture", "width", "circuit_kind",
                "verilog_text", "specification", "budgets",
                "find_counterexample", "xor_and_only", "certificate",
                "incremental", "seed")

#: Budget keys accepted in a wire document — the ``Budgets`` field names.
BUDGET_KEYS = tuple(field.name for field in dataclasses.fields(Budgets))

#: Shared-cache keys are sha256 hex digests, nothing else.
_CACHE_KEY_RE = re.compile(r"^[0-9a-f]{64}$")


class ApiError(Exception):
    """A structured HTTP error: status + machine-readable code + message."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


@dataclass
class HttpResponse:
    """Transport-free response: status, body bytes, content type.

    ``headers`` carries extra response headers (e.g. ``Retry-After`` on a
    429) rendered verbatim by the transport after the standard set.
    ``stream``, when set, is a byte-chunk iterator the transport writes
    incrementally after the head (``body`` is ignored, the connection
    closes when the iterator ends) — the streaming ``/v1/batch`` NDJSON
    path.
    """

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: dict = field(default_factory=dict)
    stream: object | None = None


def _json_response(document: dict, status: int = 200) -> HttpResponse:
    """Canonical envelope serialization: compact separators, UTF-8.

    The separators match :meth:`VerificationReport.to_json`, so a report
    dict embedded in an envelope re-serializes byte-identically to the
    standalone report JSON.
    """
    body = json.dumps(document, ensure_ascii=False,
                      separators=(",", ":")).encode("utf-8")
    return HttpResponse(status=status, body=body)


def error_response(status: int, code: str, message: str) -> HttpResponse:
    return _json_response({"error": {"code": code, "message": message}},
                          status=status)


def _require_types(kwargs: dict, keys: tuple[str, ...], kind: type,
                   label: str) -> None:
    """400 unless every present key holds ``kind`` or ``None``.

    ``bool`` is a subclass of ``int``, so integer fields explicitly reject
    booleans rather than silently coercing ``true`` to 1.
    """
    for key in keys:
        value = kwargs.get(key)
        if value is None:
            continue
        if not isinstance(value, kind) or (kind is not bool
                                           and isinstance(value, bool)):
            raise ApiError(400, "bad_request",
                           f"{key!r} must be {label}, "
                           f"got {type(value).__name__}")


def parse_request_document(document: object) -> VerificationRequest:
    """Build a :class:`VerificationRequest` from one wire JSON document."""
    if not isinstance(document, dict):
        raise ApiError(400, "bad_request",
                       "request document must be a JSON object")
    for key in ("netlist", "verilog_path"):
        if key in document:
            raise ApiError(400, "unsupported_field",
                           f"{key!r} is not accepted over HTTP; send the "
                           "circuit as 'verilog_text' or name a generated "
                           "'architecture'")
    unknown = sorted(set(document) - set(REQUEST_KEYS))
    if unknown:
        raise ApiError(400, "unknown_field",
                       f"unknown request field(s) {unknown}; expected a "
                       f"subset of {list(REQUEST_KEYS)}")
    kwargs = dict(document)
    budgets = kwargs.pop("budgets", None)
    if budgets is not None:
        if not isinstance(budgets, dict):
            raise ApiError(400, "bad_request",
                           "'budgets' must be a JSON object")
        unknown = sorted(set(budgets) - set(BUDGET_KEYS))
        if unknown:
            raise ApiError(400, "unknown_field",
                           f"unknown budget field(s) {unknown}; expected a "
                           f"subset of {list(BUDGET_KEYS)}")
        for key, value in budgets.items():
            # A malformed budget is the client's fault: reject it here as
            # a 400 instead of letting a string reach the engine as a 500.
            if value is not None and (isinstance(value, bool)
                                      or not isinstance(value, (int, float))):
                raise ApiError(400, "bad_request",
                               f"budget {key!r} must be a number or null, "
                               f"got {type(value).__name__}")
        kwargs["budgets"] = Budgets(**budgets)
    specification = kwargs.get("specification")
    if specification is not None and not isinstance(specification, str):
        raise ApiError(400, "bad_request",
                       "'specification' must be a string over HTTP "
                       "('multiplier' or 'adder')")
    # Field-type validation: malformed client input is a 400, never a 500
    # from deep inside the generator or engine.
    _require_types(kwargs, ("method", "architecture", "circuit_kind",
                            "verilog_text"), str, "a string")
    _require_types(kwargs, ("width", "seed"), int, "an integer")
    _require_types(kwargs, ("find_counterexample", "xor_and_only",
                            "certificate", "incremental"), bool, "a boolean")
    try:
        return VerificationRequest(**kwargs)
    except TypeError as error:
        raise ApiError(400, "bad_request", str(error)) from None


class VerificationServerApp:
    """The HTTP application over :class:`VerificationService`.

    One app owns the job store, the background batch executor, and the
    metrics counters; a fresh :class:`VerificationService` is built per
    request (construction is free) so no mutable service state is shared
    between the transport's worker threads.

    Parameters mirror :class:`VerificationService`: ``budgets`` are the
    service-level defaults (per-request budget groups still apply),
    ``jobs``/``task_timeout_s``/``cache_dir`` configure the batch pool,
    ``job_store_limit`` bounds the async job store and ``job_workers``
    the background batch executor.

    Resilience (``docs/robustness.md``): ``max_inflight`` bounds the
    verification POSTs executing at once — the excess is answered ``429``
    with a ``Retry-After: retry_after_s`` header instead of queueing
    without bound.  ``request_deadline_s`` clamps every request's
    ``time_budget_s`` (and pooled hard task timeout), so an oversized
    request answers ``verdict="budget"`` within the deadline instead of
    holding a socket open indefinitely.  ``retry_policy`` and
    ``fallback_policy`` are handed to each per-request
    :class:`VerificationService`.
    """

    def __init__(self, budgets: Budgets | None = None,
                 golden_architecture: str = "SP-AR-RC",
                 jobs: int = 1,
                 task_timeout_s: float | None = None,
                 cache_dir=None,
                 job_store_limit: int = 256,
                 job_workers: int = 2,
                 certificate_store_limit: int = 256,
                 max_inflight: int | None = None,
                 retry_after_s: int = 1,
                 request_deadline_s: float | None = None,
                 retry_policy=None,
                 fallback_policy=None,
                 shared_cache_url: str | None = None,
                 fleet_topology=None,
                 cone_cache_dir=None) -> None:
        self.budgets = budgets if budgets is not None else Budgets()
        self.golden_architecture = golden_architecture
        self.jobs = jobs
        self.task_timeout_s = task_timeout_s
        self.cache_dir = cache_dir
        #: Cone-cache directory of the incremental path (``--cone-cache``);
        #: ``None`` still allows ``"incremental": true`` requests, they
        #: just reduce every cone.
        self.cone_cache_dir = cone_cache_dir
        self.max_inflight = max_inflight
        self.retry_after_s = retry_after_s
        self.request_deadline_s = request_deadline_s
        self.retry_policy = retry_policy
        self.fallback_policy = fallback_policy
        #: Coordinator URL whose ``/v1/cache/{key}`` this worker checks
        #: before executing and populates after (``None`` = standalone).
        self.shared_cache_url = shared_cache_url
        #: When set, ``/v1/batch`` scatters over this
        #: :class:`~repro.fleet.FleetTopology` instead of the local pool.
        self.fleet_topology = fleet_topology
        self._shared_cache_client_instance = None
        self._result_cache = None
        self._request_hasher = None
        self.job_store = JobStore(limit=job_store_limit)
        self._job_executor = ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-batch")
        self._metrics_lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._requests_total = 0
        self._errors_total = 0
        self._batches_total = 0
        self._async_batches_total = 0
        self._reports_total = 0
        self._verdicts = dict.fromkeys(VERDICTS, 0)
        self._cache_hits_total = 0
        self._executed_total = 0
        self._inflight = 0
        self._rejected_total = 0
        self._retries_total = 0
        self._fallbacks_total = 0
        self._steals_total = 0
        self._incremental_reports_total = 0
        self._incremental_cones_total = 0
        self._incremental_replayed_total = 0
        self._incremental_reduced_total = 0
        self._shared_cache_hits_total = 0
        self._shared_cache_puts_total = 0
        self._cache_gets_served_total = 0
        self._cache_puts_served_total = 0
        #: Bounded content-addressed store behind ``GET /v1/certificates/``;
        #: insertion order doubles as FIFO eviction order.
        self.certificate_store_limit = certificate_store_limit
        self._certificates: dict[str, dict] = {}
        self._certificates_lock = threading.Lock()

    # -- plumbing --------------------------------------------------------------

    def service(self) -> VerificationService:
        """A fresh service with the app-level defaults (thread-safe by construction)."""
        return VerificationService(
            budgets=self.budgets,
            golden_architecture=self.golden_architecture,
            jobs=self.jobs,
            task_timeout_s=self.task_timeout_s,
            cache_dir=self.cache_dir,
            retry_policy=self.retry_policy,
            fallback_policy=self.fallback_policy,
            cone_cache_dir=self.cone_cache_dir)

    def _batch_runner(self):
        """The batch execution engine: fleet dispatcher or local service.

        Both expose the same surface (``run_batch``/``iter_batch`` plus
        the ``last_*`` counters), so every batch path — synchronous,
        asynchronous, streaming — is fleet-transparent.
        """
        if self.fleet_topology is not None:
            from repro.fleet import FleetDispatcher

            return FleetDispatcher(
                self.fleet_topology,
                golden_architecture=self.golden_architecture,
                local_service=self.service())
        return self.service()

    @property
    def result_cache(self):
        """The on-disk result cache behind ``/v1/cache/`` (lazy; may be None)."""
        if self._result_cache is None and self.cache_dir is not None:
            from repro.experiments.runner import ResultCache

            self._result_cache = ResultCache(self.cache_dir)
        return self._result_cache

    def close(self) -> None:
        """Stop the background batch executor (pending jobs are abandoned)."""
        self._job_executor.shutdown(wait=False, cancel_futures=True)

    def _count_reports(self, reports, cache_hits: int = 0,
                       executed: int = 0, retries: int = 0,
                       fallbacks: int = 0, steals: int = 0) -> None:
        with self._metrics_lock:
            self._reports_total += len(reports)
            for report in reports:
                self._verdicts[report.verdict] += 1
                counters = report.incremental
                if counters is not None:
                    self._incremental_reports_total += 1
                    self._incremental_cones_total += counters.get("cones", 0)
                    self._incremental_replayed_total += counters.get(
                        "replayed_cones", 0)
                    self._incremental_reduced_total += counters.get(
                        "reduced_cones", 0)
            self._cache_hits_total += cache_hits
            self._executed_total += executed
            self._retries_total += retries
            self._fallbacks_total += fallbacks
            self._steals_total += steals
        self._store_certificates(reports)

    # -- shared cache (worker side) --------------------------------------------

    def _shared_cache_client(self):
        if self._shared_cache_client_instance is None:
            from urllib.parse import urlparse

            from repro.resilience.policy import RetryPolicy
            from repro.server.client import VerificationClient

            parsed = urlparse(self.shared_cache_url)
            self._shared_cache_client_instance = VerificationClient(
                host=parsed.hostname or "127.0.0.1",
                port=parsed.port or 80,
                timeout_s=10.0,
                retry_policy=RetryPolicy(max_attempts=1))
        return self._shared_cache_client_instance

    def _shared_cache_key(self, request: VerificationRequest) -> str | None:
        """This request's shared-cache key, or ``None`` (not participating)."""
        if self.shared_cache_url is None:
            return None
        from repro.api.service import request_cache_key

        if self._request_hasher is None:
            from repro.experiments.runner import NetlistHasher

            self._request_hasher = NetlistHasher()
        return request_cache_key(request, self.golden_architecture,
                                 hasher=self._request_hasher)

    def _shared_cache_get(self, key: str):
        """Best-effort coordinator lookup; any failure is just a miss."""
        try:
            report = self._shared_cache_client().cache_get(key)
        except Exception:  # noqa: BLE001 - degrade to local execution
            return None
        if report is not None:
            with self._metrics_lock:
                self._shared_cache_hits_total += 1
        return report

    def _shared_cache_put(self, key: str, report) -> None:
        """Best-effort coordinator publish; failures are silent."""
        try:
            if self._shared_cache_client().cache_put(key, report):
                with self._metrics_lock:
                    self._shared_cache_puts_total += 1
        except Exception:  # noqa: BLE001 - cache is an optimization
            pass

    def _run_batch(self, runner, requests, jobs):
        """``run_batch`` plus the worker-side shared-cache protocol.

        With ``--shared-cache`` set, each request is first looked up in
        the coordinator's cache (``GET /v1/cache/{key}``); only the
        misses execute, and their reports are published back (``PUT``).
        Cached reports are canonical, so the reassembled list is
        byte-identical to a full local run.  Without a shared cache this
        is exactly ``runner.run_batch``.
        """
        if self.shared_cache_url is None:
            return runner.run_batch(requests, jobs=jobs)
        keys = [self._shared_cache_key(request) for request in requests]
        reports: dict[int, object] = {}
        for index, key in enumerate(keys):
            if key is not None:
                hit = self._shared_cache_get(key)
                if hit is not None:
                    reports[index] = hit
        misses = [index for index in range(len(requests))
                  if index not in reports]
        if misses:
            executed = runner.run_batch([requests[index] for index in misses],
                                        jobs=jobs)
            for index, report in zip(misses, executed):
                reports[index] = report
                if keys[index] is not None:
                    self._shared_cache_put(keys[index], report)
        return [reports[index] for index in range(len(requests))]

    def _store_certificates(self, reports) -> None:
        """Index emitted certificates by content hash (bounded, FIFO)."""
        with self._certificates_lock:
            for report in reports:
                certificate = report.certificate
                if (isinstance(certificate, dict)
                        and isinstance(certificate.get("sha256"), str)):
                    self._certificates.pop(certificate["sha256"], None)
                    self._certificates[certificate["sha256"]] = certificate
            while len(self._certificates) > self.certificate_store_limit:
                self._certificates.pop(next(iter(self._certificates)))

    @staticmethod
    def _parse_body(body: bytes) -> object:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ApiError(400, "invalid_json",
                           "request body is not valid JSON") from None

    # -- dispatch --------------------------------------------------------------

    #: Routes with a fixed path (method, path) -> handler attribute name.
    ROUTES = {
        ("GET", "/healthz"): "handle_healthz",
        ("GET", "/metrics"): "handle_metrics",
        ("GET", "/v1/version"): "handle_version",
        ("GET", "/v1/backends"): "handle_backends",
        ("POST", "/v1/verify"): "handle_verify",
        ("POST", "/v1/batch"): "handle_batch",
    }

    #: Verification POSTs counted against the in-flight gauge; everything
    #: else (health, metrics, polls) stays cheap and never sheds load.
    _INFLIGHT_ROUTES = frozenset((("POST", "/v1/verify"),
                                  ("POST", "/v1/batch")))

    def handle(self, method: str, path: str, body: bytes = b"") -> HttpResponse:
        """Route one request; every failure becomes a structured error body."""
        with self._metrics_lock:
            self._requests_total += 1
        gated = (self.max_inflight is not None
                 and (method, path) in self._INFLIGHT_ROUTES)
        if gated:
            with self._metrics_lock:
                if self._inflight >= self.max_inflight:
                    # Backpressure: answering 429 + Retry-After now beats
                    # queueing without bound and timing the client out later.
                    self._rejected_total += 1
                    self._errors_total += 1
                    response = error_response(
                        429, "too_many_requests",
                        f"server is at its in-flight verification limit "
                        f"({self.max_inflight}); retry after "
                        f"{self.retry_after_s}s")
                    response.headers["Retry-After"] = str(self.retry_after_s)
                    return response
                self._inflight += 1
        try:
            response = self._dispatch(method, path, body)
            if gated and response.stream is not None:
                # A streaming batch does its verification work while the
                # transport iterates the body, long after this handler
                # returns — hand the in-flight slot to the stream (the
                # transport always exhausts or closes it) so
                # ``--max-inflight`` gates streaming load too.
                response.stream = self._gated_stream(response.stream)
                gated = False
        except ApiError as error:
            response = error_response(error.status, error.code, str(error))
        except JobStoreFull as error:
            response = error_response(503, "job_store_full", str(error))
        except ReproError as error:
            # Unknown architecture, unparsable Verilog, inapplicable spec,
            # unknown method, ... — the request itself is at fault.
            response = error_response(
                400, "verification_error",
                f"{type(error).__name__}: {error}")
        except Exception as error:  # noqa: BLE001 - transport boundary
            response = error_response(
                500, "internal_error", f"{type(error).__name__}: {error}")
        finally:
            if gated:
                with self._metrics_lock:
                    self._inflight -= 1
        if response.status >= 400:
            with self._metrics_lock:
                self._errors_total += 1
        return response

    def _clamp_deadline(self, request: VerificationRequest,
                        ) -> VerificationRequest:
        """Clamp a request's budgets to the server's per-request deadline.

        The in-process engines trip their wall-clock budget into a
        ``verdict="budget"`` report, and pooled jobs are hard-killed at the
        same bound — so the client gets a well-formed answer within the
        deadline rather than a connection that hangs until it gives up.
        """
        limit = self.request_deadline_s
        if limit is None:
            return request
        budgets = request.budgets
        changes = {}
        if budgets.time_budget_s is None or budgets.time_budget_s > limit:
            changes["time_budget_s"] = limit
        if (budgets.task_timeout_s is None
                or budgets.task_timeout_s > 2 * limit):
            # The hard kill is the backstop behind the soft budget: leave
            # slack so the engine's own budget trip reports first.
            changes["task_timeout_s"] = 2 * limit
        if not changes:
            return request
        return dataclasses.replace(request, budgets=budgets.replace(**changes))

    def _dispatch(self, method: str, path: str, body: bytes) -> HttpResponse:
        handler = self.ROUTES.get((method, path))
        if handler is not None:
            return getattr(self, handler)(body)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                raise ApiError(405, "method_not_allowed",
                               f"{method} not allowed on {path}; use GET")
            return self.handle_job(path[len("/v1/jobs/"):])
        if path.startswith("/v1/certificates/"):
            if method != "GET":
                raise ApiError(405, "method_not_allowed",
                               f"{method} not allowed on {path}; use GET")
            return self.handle_certificate(path[len("/v1/certificates/"):])
        if path.startswith("/v1/cache/"):
            return self.handle_cache(method, path[len("/v1/cache/"):], body)
        if any(route_path == path for _, route_path in self.ROUTES):
            allowed = sorted(m for m, p in self.ROUTES if p == path)
            raise ApiError(405, "method_not_allowed",
                           f"{method} not allowed on {path}; "
                           f"use {' or '.join(allowed)}")
        raise ApiError(404, "not_found", f"no route for {path}")

    # -- endpoints -------------------------------------------------------------

    def handle_healthz(self, body: bytes = b"") -> HttpResponse:
        return _json_response({
            "status": "ok",
            "version": __version__,
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "jobs": self.job_store.stats(),
        })

    def handle_metrics(self, body: bytes = b"") -> HttpResponse:
        with self._metrics_lock:
            document = {
                "uptime_s": round(
                    time.monotonic() - self._started_monotonic, 3),
                "http": {"requests_total": self._requests_total,
                         "errors_total": self._errors_total},
                "reports": {"total": self._reports_total,
                            "verdicts": dict(self._verdicts)},
                "batches": {"total": self._batches_total,
                            "async_total": self._async_batches_total},
                "cache": {"hits_total": self._cache_hits_total,
                          "executed_total": self._executed_total},
                "incremental": {
                    "reports_total": self._incremental_reports_total,
                    "cones_total": self._incremental_cones_total,
                    "replayed_cones_total": self._incremental_replayed_total,
                    "reduced_cones_total": self._incremental_reduced_total,
                    "cone_cache_dir": str(self.cone_cache_dir)
                    if self.cone_cache_dir is not None else None},
                "pool": {"jobs": self.jobs,
                         "cache_dir": str(self.cache_dir)
                         if self.cache_dir is not None else None},
                "resilience": {"inflight": self._inflight,
                               "max_inflight": self.max_inflight,
                               "rejected_total": self._rejected_total,
                               "request_deadline_s": self.request_deadline_s,
                               "retries_total": self._retries_total,
                               "fallbacks_total": self._fallbacks_total},
                "fleet": {"workers": (len(self.fleet_topology.workers)
                                      if self.fleet_topology is not None
                                      else 0),
                          "steals_total": self._steals_total},
                "shared_cache": {
                    "url": self.shared_cache_url,
                    "remote_hits_total": self._shared_cache_hits_total,
                    "remote_puts_total": self._shared_cache_puts_total,
                    "gets_served_total": self._cache_gets_served_total,
                    "puts_served_total": self._cache_puts_served_total},
            }
        document["jobs"] = self.job_store.stats()
        return _json_response(document)

    def handle_version(self, body: bytes = b"") -> HttpResponse:
        """Package version + wire-schema numbers (the fleet handshake).

        A fleet coordinator calls this on every worker and refuses to
        dispatch to one whose ``report_schema`` or
        ``certificate_version`` differs from its own — mixed-schema
        fleets would silently break byte-parity.
        """
        from repro.api.report import LEGACY_REPORT_SCHEMAS, REPORT_SCHEMA
        from repro.certify.certificate import CERTIFICATE_VERSION
        from repro.experiments.runner import ResultCache

        return _json_response({
            "version": __version__,
            "report_schema": REPORT_SCHEMA,
            "legacy_report_schemas": list(LEGACY_REPORT_SCHEMAS),
            "certificate_version": CERTIFICATE_VERSION,
            "cache_schema": ResultCache.SCHEMA,
        })

    def handle_cache(self, method: str, key: str, body: bytes) -> HttpResponse:
        """``GET/PUT /v1/cache/{key}`` — the shared result-cache protocol.

        Keys are the content-addressed sha256 hex digests of
        :func:`repro.experiments.runner.result_cache_key`; the caller
        computes them, this endpoint only serves/stores entries.  PUT
        enforces the cacheability contract (infrastructure failures are
        refused with ``"stored": false``, never an error) so a confused
        worker cannot poison the fleet.
        """
        if method not in ("GET", "PUT"):
            raise ApiError(405, "method_not_allowed",
                           f"{method} not allowed on /v1/cache/; "
                           "use GET or PUT")
        if not _CACHE_KEY_RE.match(key):
            raise ApiError(400, "invalid_cache_key",
                           "cache keys are 64 lowercase hex characters "
                           "(a sha256 digest)")
        cache = self.result_cache
        if method == "GET":
            if cache is None:
                raise ApiError(404, "cache_disabled",
                               "this server was started without a result "
                               "cache (--cache)")
            report = cache.get_report(key)
            if report is None:
                raise ApiError(404, "cache_miss", f"no entry for {key}")
            with self._metrics_lock:
                self._cache_gets_served_total += 1
            return _json_response({"key": key, "report": report.to_dict()})
        document = self._parse_body(body)
        if not isinstance(document, dict) \
                or not isinstance(document.get("report"), dict):
            raise ApiError(400, "bad_request",
                           "PUT body must be {\"report\": {...}} with a "
                           "canonical report document")
        report = VerificationReport.from_dict(document["report"])
        stored = cache is not None and cache.put_report(key, report)
        if stored:
            with self._metrics_lock:
                self._cache_puts_served_total += 1
        return _json_response({"stored": bool(stored)})

    def handle_backends(self, body: bytes = b"") -> HttpResponse:
        # The full BackendSpec capability set, field for field — a flag
        # added to the spec must show up here (pinned by tests/test_docs.py).
        return _json_response({"backends": [
            {"name": spec.name, "kind": spec.kind,
             "description": spec.description,
             "supports_counterexample": spec.supports_counterexample,
             "supports_stats": spec.supports_stats,
             "certifiable": spec.certifiable,
             "cost_rank": spec.cost_rank,
             "budget_keys": list(spec.budget_keys),
             "degrades_to": list(spec.degrades_to)}
            for spec in backends()]})

    def handle_certificate(self, digest: str) -> HttpResponse:
        with self._certificates_lock:
            certificate = self._certificates.get(digest)
        if certificate is None:
            raise ApiError(404, "certificate_not_found",
                           f"no certificate {digest!r} (never emitted, or "
                           "evicted from the bounded store)")
        return _json_response(certificate)

    def handle_verify(self, body: bytes) -> HttpResponse:
        request = self._clamp_deadline(
            parse_request_document(self._parse_body(body)))
        key = self._shared_cache_key(request)
        if key is not None:
            cached = self._shared_cache_get(key)
            if cached is not None:
                self._count_reports([cached], cache_hits=1)
                return HttpResponse(status=200,
                                    body=cached.to_json().encode("utf-8"))
        service = self.service()
        report = service.submit(request)
        if key is not None:
            self._shared_cache_put(key, report)
        self._count_reports([report], fallbacks=service.last_fallbacks)
        # The exact to_json() bytes — byte-identical to the in-process
        # VerificationService.submit() serialization.
        return HttpResponse(status=200, body=report.to_json().encode("utf-8"))

    def handle_batch(self, body: bytes) -> HttpResponse:
        document = self._parse_body(body)
        if not isinstance(document, dict):
            raise ApiError(400, "bad_request",
                           "batch body must be a JSON object")
        unknown = sorted(set(document) - {"requests", "jobs", "async",
                                          "stream"})
        if unknown:
            raise ApiError(400, "unknown_field",
                           f"unknown batch field(s) {unknown}; expected "
                           "'requests', 'jobs', 'async', 'stream'")
        entries = document.get("requests")
        if not isinstance(entries, list) or not entries:
            raise ApiError(400, "bad_request",
                           "'requests' must be a non-empty JSON array")
        jobs = document.get("jobs")
        if jobs is not None and (not isinstance(jobs, int)
                                 or isinstance(jobs, bool) or jobs < 1):
            raise ApiError(400, "bad_request",
                           "'jobs' must be a positive integer")
        stream = document.get("stream")
        if stream is not None and not isinstance(stream, bool):
            raise ApiError(400, "bad_request", "'stream' must be a boolean")
        if stream and document.get("async"):
            raise ApiError(400, "bad_request",
                           "'stream' and 'async' are mutually exclusive")
        requests = [self._clamp_deadline(parse_request_document(entry))
                    for entry in entries]
        if document.get("async"):
            job = self.job_store.create()
            with self._metrics_lock:
                self._batches_total += 1
                self._async_batches_total += 1
            self._job_executor.submit(self._run_async_batch, job.id,
                                      requests, jobs)
            return _json_response({"job": job.id, "state": job.state,
                                   "poll": f"/v1/jobs/{job.id}"}, status=202)
        runner = self._batch_runner()
        if stream:
            with self._metrics_lock:
                self._batches_total += 1
            return HttpResponse(status=200, body=b"",
                                content_type="application/x-ndjson",
                                stream=self._stream_batch(runner, requests,
                                                          jobs))
        reports = self._run_batch(runner, requests, jobs)
        with self._metrics_lock:
            self._batches_total += 1
        self._count_reports(reports, runner.last_cache_hits,
                            runner.last_executed, runner.last_retries,
                            runner.last_fallbacks,
                            getattr(runner, "last_steals", 0))
        return _json_response({
            "reports": [report.to_dict() for report in reports],
            "cache_hits": runner.last_cache_hits,
            "executed": runner.last_executed,
        })

    def _gated_stream(self, chunks) -> "_GatedStream":
        """Hold the ``max_inflight`` slot until a streaming body finishes."""
        return _GatedStream(self, chunks)

    def _stream_batch(self, runner, requests, jobs):
        """NDJSON generator: one canonical report per line, counter trailer.

        Reports stream as the batch resolves them (request order), so a
        huge grid starts answering before it finishes.  A mid-batch
        failure becomes a final ``{"error": ...}`` line — the client has
        already consumed every report produced before it.  Counters are
        only booked once the batch ran to completion.
        """
        reports = []
        try:
            for report in runner.iter_batch(requests, jobs=jobs):
                reports.append(report)
                yield report.to_json().encode("utf-8") + b"\n"
        except Exception as error:  # noqa: BLE001 - stream boundary
            document = {"error": {"code": "batch_failed",
                                  "message": f"{type(error).__name__}: "
                                             f"{error}"}}
            yield json.dumps(document, ensure_ascii=False,
                             separators=(",", ":")).encode("utf-8") + b"\n"
            return
        self._count_reports(reports, runner.last_cache_hits,
                            runner.last_executed, runner.last_retries,
                            runner.last_fallbacks,
                            getattr(runner, "last_steals", 0))
        trailer = {"trailer": {
            "reports": len(reports),
            "cache_hits": runner.last_cache_hits,
            "executed": runner.last_executed,
            "retries": runner.last_retries,
            "fallbacks": runner.last_fallbacks,
            "steals": getattr(runner, "last_steals", 0),
        }}
        yield json.dumps(trailer, ensure_ascii=False,
                         separators=(",", ":")).encode("utf-8") + b"\n"

    def _run_async_batch(self, job_id: str, requests, jobs) -> None:
        """Background executor target for ``"async": true`` batches."""
        self.job_store.start(job_id)
        try:
            runner = self._batch_runner()
            reports = self._run_batch(runner, requests, jobs)
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            self.job_store.fail(job_id, f"{type(error).__name__}: {error}")
            return
        self._count_reports(reports, runner.last_cache_hits,
                            runner.last_executed, runner.last_retries,
                            runner.last_fallbacks,
                            getattr(runner, "last_steals", 0))
        self.job_store.finish(job_id, reports, runner.last_cache_hits,
                              runner.last_executed)

    def handle_job(self, job_id: str) -> HttpResponse:
        job = self.job_store.get(job_id)
        if job is None:
            raise ApiError(404, "job_not_found",
                           f"unknown job {job_id!r} (never submitted, or "
                           "evicted from the bounded store)")
        return _json_response(job.to_document())


class _GatedStream:
    """A streaming body that occupies one ``max_inflight`` slot.

    The slot is released exactly once — on exhaustion, on a mid-stream
    error, or on ``close()``.  An explicit object rather than a wrapping
    generator because the transport may ``close()`` the stream before
    pulling the first chunk (head write failed), and a never-started
    generator's ``finally`` would not run — leaking the slot forever.
    """

    def __init__(self, app: VerificationServerApp, chunks) -> None:
        self._app = app
        self._iterator = iter(chunks)
        self._released = False

    def __iter__(self) -> "_GatedStream":
        return self

    def __next__(self) -> bytes:
        try:
            return next(self._iterator)
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        if not self._released:
            self._released = True
            with self._app._metrics_lock:
                self._app._inflight -= 1
        close = getattr(self._iterator, "close", None)
        if close is not None:
            close()
