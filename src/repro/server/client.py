"""Thin stdlib HTTP client for the verification server.

:class:`VerificationClient` speaks the wire schema of
:mod:`repro.server.app` over ``http.client`` — JSON in, JSON out,
reports rebuilt as :class:`~repro.api.report.VerificationReport`
objects.  Connections are kept alive and pooled per thread (the server
speaks HTTP/1.1 persistent connections); a connection the server has
idled out is transparently replaced and the request replayed once.  It
is what the server tests, the fleet dispatcher, the benchmark harness,
and ``examples/http_client.py`` drive; it is *not* a required
dependency of the server side.

Request documents are plain dicts mirroring
:class:`~repro.api.request.VerificationRequest` — e.g.
``{"architecture": "SP-AR-RC", "width": 4, "method": "mt-lr",
"budgets": {"monomial_budget": 100000}}`` — see
:data:`repro.server.app.REQUEST_KEYS`.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Iterator

from repro.api.report import VerificationReport
from repro.errors import ReproError
from repro.resilience.policy import RetryPolicy


class ServerError(ReproError):
    """A structured error answer from the server (4xx/5xx).

    ``status=0`` marks transport-level failures the client gave up on
    after exhausting its retries: code ``"connection_error"`` (could not
    connect / connection reset), ``"request_timeout"`` (no answer within
    ``timeout_s`` — the server may still be healthy, just slow on this
    request), or ``"truncated_response"`` (the server closed the
    connection mid-body).
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code


#: Responses worth retrying: backpressure rejection and transient 5xx.
_RETRYABLE_STATUSES = frozenset((429, 500, 502, 503, 504))

#: Exceptions that mark a pooled connection as *stale* — the server (or
#: a middlebox) closed it while it sat idle in the pool.  A request that
#: hits one of these on a previously-used connection is replayed once on
#: a fresh connection before any failure surfaces.
#: (``RemoteDisconnected`` subclasses both ``BadStatusLine`` and
#: ``ConnectionResetError``, so it is covered twice over.)
_STALE_ERRORS = (http.client.BadStatusLine, ConnectionResetError,
                 BrokenPipeError)


class VerificationClient:
    """Talk to a running ``repro-verify serve`` instance.

    Every verification endpoint is idempotent (reports are deterministic
    and cache-backed server-side), so the client transparently retries
    transport failures — connect errors, resets, truncated bodies — and
    retryable statuses (429 backpressure honouring ``Retry-After``,
    transient 5xx) under ``retry_policy``.  Pass
    ``RetryPolicy(max_attempts=1)`` to disable retries (one attempt,
    failures surface immediately as :class:`ServerError`).

    With ``keep_alive`` (the default) the client pools one persistent
    connection per thread and reuses it across requests, recycling it
    whenever the server closes it or an error leaves it in an unknown
    state; ``keep_alive=False`` restores the one-connection-per-request
    behaviour.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8585,
                 timeout_s: float = 300.0,
                 retry_policy: RetryPolicy | None = None,
                 keep_alive: bool = True) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry_policy = (RetryPolicy(max_attempts=3, base_delay_s=0.1)
                             if retry_policy is None else retry_policy)
        self.keep_alive = keep_alive
        #: Trailer counters of the last exhausted :meth:`batch_stream`.
        self.last_trailer: dict | None = None
        self._local = threading.local()

    # -- transport -------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)

    def _pooled(self) -> tuple[http.client.HTTPConnection, bool]:
        """This thread's pooled connection and whether it has served before."""
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = self._connect()
            self._local.connection = connection
            self._local.served = 0
        return connection, self._local.served > 0

    def _discard(self) -> None:
        """Drop this thread's pooled connection (state unknown or closed)."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            try:
                connection.close()
            except Exception:
                pass
        self._local.connection = None
        self._local.served = 0

    def close(self) -> None:
        """Close the calling thread's pooled connection, if any."""
        self._discard()

    @staticmethod
    def _roundtrip(connection: http.client.HTTPConnection, method: str,
                   path: str, body: bytes | None, headers: dict,
                   ) -> tuple[int, bytes, float | None, bool]:
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        payload = response.read()
        retry_after = None
        header = response.getheader("Retry-After")
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                pass
        return response.status, payload, retry_after, response.will_close

    def _exchange(self, method: str, path: str, document: dict | None,
                  ) -> tuple[int, bytes, float | None]:
        """One wire exchange: ``(status, body, Retry-After seconds)``."""
        body = None
        headers = {}
        if document is not None:
            body = json.dumps(document, ensure_ascii=False,
                              separators=(",", ":")).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if not self.keep_alive:
            connection = self._connect()
            try:
                status, payload, retry_after, _ = self._roundtrip(
                    connection, method, path, body, headers)
                return status, payload, retry_after
            finally:
                connection.close()
        for replay in (False, True):
            connection, reused = self._pooled()
            try:
                status, payload, retry_after, will_close = self._roundtrip(
                    connection, method, path, body, headers)
            except _STALE_ERRORS:
                # The server idled out the cached connection between
                # requests; replay exactly once on a fresh one.  A fresh
                # connection failing the same way is a real error.
                self._discard()
                if reused and not replay:
                    continue
                raise
            except Exception:
                self._discard()
                raise
            if will_close:
                self._discard()
            else:
                self._local.served += 1
            return status, payload, retry_after
        raise AssertionError("unreachable")  # pragma: no cover

    def request_raw(self, method: str, path: str,
                    document: dict | None = None) -> tuple[int, bytes]:
        """An HTTP exchange with retries; returns ``(status, body)`` verbatim.

        Retries (bounded by ``retry_policy``) on connect errors, dropped
        or truncated responses, and :data:`_RETRYABLE_STATUSES`; a 429's
        ``Retry-After`` stretches the backoff when it is longer.  The
        final failure is raised as :class:`ServerError`; the final
        retryable *status* is returned as-is so callers see the server's
        structured error body.
        """
        policy = self.retry_policy
        key = f"{method} {path}"
        attempt = 0
        while True:
            attempt += 1
            retry_after = None
            try:
                status, body, retry_after = self._exchange(
                    method, path, document)
            except http.client.IncompleteRead as short:
                if attempt >= policy.max_attempts:
                    raise ServerError(
                        0, "truncated_response",
                        f"{key}: server closed the connection mid-body "
                        f"({len(short.partial)} bytes received)") from None
            except (http.client.HTTPException, ConnectionError,
                    TimeoutError, OSError) as error:
                if attempt >= policy.max_attempts:
                    # A timed-out request is not a dead server: callers
                    # (the fleet dispatcher) treat the two differently.
                    code = ("request_timeout"
                            if isinstance(error, TimeoutError)
                            else "connection_error")
                    raise ServerError(
                        0, code,
                        f"{key}: {type(error).__name__}: {error}") from error
            else:
                if (status not in _RETRYABLE_STATUSES
                        or attempt >= policy.max_attempts):
                    return status, body
            delay = policy.delay_s(attempt, key)
            if retry_after is not None:
                delay = max(delay, retry_after)
            time.sleep(delay)

    @staticmethod
    def _parse(status: int, body: bytes) -> dict:
        """Parse a response body; raises :class:`ServerError` on error bodies."""
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ServerError(status, "invalid_response",
                              f"non-JSON response body {body[:200]!r}") \
                from None
        if status >= 400:
            error = parsed.get("error", {}) if isinstance(parsed, dict) else {}
            raise ServerError(status, error.get("code", "unknown"),
                              error.get("message", body.decode("utf-8",
                                                               "replace")))
        return parsed

    def request(self, method: str, path: str,
                document: dict | None = None) -> dict:
        """One JSON exchange; raises :class:`ServerError` on error bodies."""
        return self._parse(*self.request_raw(method, path, document))

    # -- introspection ---------------------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def version(self) -> dict:
        """``GET /v1/version`` — package version and wire-schema numbers."""
        return self.request("GET", "/v1/version")

    def backends(self) -> list[dict]:
        return self.request("GET", "/v1/backends")["backends"]

    def certificate(self, digest: str) -> dict:
        """``GET /v1/certificates/{hash}`` — a stored proof certificate."""
        return self.request("GET", f"/v1/certificates/{digest}")

    # -- shared result cache ---------------------------------------------------

    def cache_get(self, key: str) -> VerificationReport | None:
        """``GET /v1/cache/{key}`` — a shared-cache report, or ``None``."""
        status, body = self.request_raw("GET", f"/v1/cache/{key}")
        if status == 404:
            return None
        parsed = self._parse(status, body)
        return VerificationReport.from_dict(parsed["report"])

    def cache_put(self, key: str, report: VerificationReport) -> bool:
        """``PUT /v1/cache/{key}`` — publish a report; ``True`` iff stored."""
        document = {"report": report.to_dict()}
        answer = self.request("PUT", f"/v1/cache/{key}", document)
        return bool(answer.get("stored"))

    # -- verification ----------------------------------------------------------

    def verify_raw(self, document: dict) -> bytes:
        """``POST /v1/verify`` returning the exact report JSON bytes."""
        status, body = self.request_raw("POST", "/v1/verify", document)
        if status != 200:
            # Raise from the bytes already received — never re-submit the
            # (possibly expensive) verification just to build the exception.
            self._parse(status, body)
            raise ServerError(status, "unknown",
                              body.decode("utf-8", "replace"))
        return body

    def verify(self, document: dict) -> VerificationReport:
        """``POST /v1/verify`` returning the rebuilt report."""
        return VerificationReport.from_json(
            self.verify_raw(document).decode("utf-8"))

    def batch_envelope(self, documents: list[dict],
                       jobs: int | None = None) -> dict:
        """Synchronous ``POST /v1/batch``; the raw response envelope."""
        body: dict = {"requests": list(documents)}
        if jobs is not None:
            body["jobs"] = jobs
        return self.request("POST", "/v1/batch", body)

    def batch(self, documents: list[dict],
              jobs: int | None = None) -> list[VerificationReport]:
        """Synchronous batch returning reports in request order."""
        return [VerificationReport.from_dict(entry) for entry in
                self.batch_envelope(documents, jobs=jobs)["reports"]]

    def batch_stream(self, documents: list[dict],
                     jobs: int | None = None
                     ) -> Iterator[VerificationReport]:
        """Streaming ``POST /v1/batch`` (``"stream": true``).

        Yields one report per NDJSON line as the server resolves them,
        in request order.  The stream's trailing counter line is stored
        in :attr:`last_trailer` once the stream is exhausted (``None``
        until then, and ``None`` again at the start of every call).  A
        mid-stream ``error`` line raises :class:`ServerError`.  Uses a
        dedicated connection (streams monopolize one), no retries — a
        partially-consumed grid must not silently restart.
        """
        self.last_trailer = None
        body = {"requests": list(documents), "stream": True}
        if jobs is not None:
            body["jobs"] = jobs
        payload = json.dumps(body, ensure_ascii=False,
                             separators=(",", ":")).encode("utf-8")
        connection = self._connect()
        try:
            connection.request("POST", "/v1/batch", body=payload,
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            if response.status != 200:
                self._parse(response.status, response.read())
                raise ServerError(response.status, "unknown",
                                  "streaming batch refused")
            for line in response:
                line = line.strip()
                if not line:
                    continue
                document = json.loads(line.decode("utf-8"))
                if "trailer" in document:
                    self.last_trailer = document["trailer"]
                    continue
                if "error" in document:
                    error = document["error"]
                    raise ServerError(200, error.get("code", "batch_failed"),
                                      error.get("message", "batch failed"))
                yield VerificationReport.from_dict(document)
        finally:
            connection.close()

    # -- asynchronous jobs -----------------------------------------------------

    def submit_batch(self, documents: list[dict],
                     jobs: int | None = None) -> str:
        """``POST /v1/batch`` with ``"async": true``; returns the job id."""
        body: dict = {"requests": list(documents), "async": True}
        if jobs is not None:
            body["jobs"] = jobs
        return self.request("POST", "/v1/batch", body)["job"]

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/{id}`` — the raw job document."""
        return self.request("GET", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, timeout_s: float = 300.0,
             poll_s: float = 0.05) -> list[VerificationReport]:
        """Poll a job to completion and return its reports.

        Raises :class:`ServerError` if the job failed server-side or did
        not finish within ``timeout_s``.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            document = self.job(job_id)
            if document["state"] == "done":
                return [VerificationReport.from_dict(entry)
                        for entry in document["reports"]]
            if document["state"] == "failed":
                raise ServerError(200, "job_failed", document["error"])
            if time.monotonic() > deadline:
                raise ServerError(200, "job_timeout",
                                  f"job {job_id} still {document['state']} "
                                  f"after {timeout_s}s")
            time.sleep(poll_s)
