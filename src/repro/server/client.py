"""Thin stdlib HTTP client for the verification server.

:class:`VerificationClient` speaks the wire schema of
:mod:`repro.server.app` over ``http.client`` — one connection per request
(the server closes connections after every response), JSON in, JSON out,
reports rebuilt as :class:`~repro.api.report.VerificationReport` objects.
It is what the server tests, the benchmark harness, and
``examples/http_client.py`` drive; it is *not* a required dependency of
the server side.

Request documents are plain dicts mirroring
:class:`~repro.api.request.VerificationRequest` — e.g.
``{"architecture": "SP-AR-RC", "width": 4, "method": "mt-lr",
"budgets": {"monomial_budget": 100000}}`` — see
:data:`repro.server.app.REQUEST_KEYS`.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.api.report import VerificationReport
from repro.errors import ReproError
from repro.resilience.policy import RetryPolicy


class ServerError(ReproError):
    """A structured error answer from the server (4xx/5xx).

    ``status=0`` marks transport-level failures the client gave up on
    after exhausting its retries: code ``"connection_error"`` (could not
    connect / connection reset) or ``"truncated_response"`` (the server
    closed the connection mid-body).
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code


#: Responses worth retrying: backpressure rejection and transient 5xx.
_RETRYABLE_STATUSES = frozenset((429, 500, 502, 503, 504))


class VerificationClient:
    """Talk to a running ``repro-verify serve`` instance.

    Every verification endpoint is idempotent (reports are deterministic
    and cache-backed server-side), so the client transparently retries
    transport failures — connect errors, resets, truncated bodies — and
    retryable statuses (429 backpressure honouring ``Retry-After``,
    transient 5xx) under ``retry_policy``.  Pass
    ``RetryPolicy(max_attempts=1)`` to disable retries (one attempt,
    failures surface immediately as :class:`ServerError`).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8585,
                 timeout_s: float = 300.0,
                 retry_policy: RetryPolicy | None = None) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry_policy = (RetryPolicy(max_attempts=3, base_delay_s=0.1)
                             if retry_policy is None else retry_policy)

    # -- transport -------------------------------------------------------------

    def _exchange(self, method: str, path: str, document: dict | None,
                  ) -> tuple[int, bytes, float | None]:
        """One wire exchange: ``(status, body, Retry-After seconds)``."""
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout_s)
        try:
            body = None
            headers = {}
            if document is not None:
                body = json.dumps(document, ensure_ascii=False,
                                  separators=(",", ":")).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
            retry_after = None
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass
            return response.status, payload, retry_after
        finally:
            connection.close()

    def request_raw(self, method: str, path: str,
                    document: dict | None = None) -> tuple[int, bytes]:
        """An HTTP exchange with retries; returns ``(status, body)`` verbatim.

        Retries (bounded by ``retry_policy``) on connect errors, dropped
        or truncated responses, and :data:`_RETRYABLE_STATUSES`; a 429's
        ``Retry-After`` stretches the backoff when it is longer.  The
        final failure is raised as :class:`ServerError`; the final
        retryable *status* is returned as-is so callers see the server's
        structured error body.
        """
        policy = self.retry_policy
        key = f"{method} {path}"
        attempt = 0
        while True:
            attempt += 1
            retry_after = None
            try:
                status, body, retry_after = self._exchange(
                    method, path, document)
            except http.client.IncompleteRead as short:
                if attempt >= policy.max_attempts:
                    raise ServerError(
                        0, "truncated_response",
                        f"{key}: server closed the connection mid-body "
                        f"({len(short.partial)} bytes received)") from None
            except (http.client.HTTPException, ConnectionError,
                    TimeoutError, OSError) as error:
                if attempt >= policy.max_attempts:
                    raise ServerError(
                        0, "connection_error",
                        f"{key}: {type(error).__name__}: {error}") from error
            else:
                if (status not in _RETRYABLE_STATUSES
                        or attempt >= policy.max_attempts):
                    return status, body
            delay = policy.delay_s(attempt, key)
            if retry_after is not None:
                delay = max(delay, retry_after)
            time.sleep(delay)

    @staticmethod
    def _parse(status: int, body: bytes) -> dict:
        """Parse a response body; raises :class:`ServerError` on error bodies."""
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ServerError(status, "invalid_response",
                              f"non-JSON response body {body[:200]!r}") \
                from None
        if status >= 400:
            error = parsed.get("error", {}) if isinstance(parsed, dict) else {}
            raise ServerError(status, error.get("code", "unknown"),
                              error.get("message", body.decode("utf-8",
                                                               "replace")))
        return parsed

    def request(self, method: str, path: str,
                document: dict | None = None) -> dict:
        """One JSON exchange; raises :class:`ServerError` on error bodies."""
        return self._parse(*self.request_raw(method, path, document))

    # -- introspection ---------------------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def backends(self) -> list[dict]:
        return self.request("GET", "/v1/backends")["backends"]

    def certificate(self, digest: str) -> dict:
        """``GET /v1/certificates/{hash}`` — a stored proof certificate."""
        return self.request("GET", f"/v1/certificates/{digest}")

    # -- verification ----------------------------------------------------------

    def verify_raw(self, document: dict) -> bytes:
        """``POST /v1/verify`` returning the exact report JSON bytes."""
        status, body = self.request_raw("POST", "/v1/verify", document)
        if status != 200:
            # Raise from the bytes already received — never re-submit the
            # (possibly expensive) verification just to build the exception.
            self._parse(status, body)
            raise ServerError(status, "unknown",
                              body.decode("utf-8", "replace"))
        return body

    def verify(self, document: dict) -> VerificationReport:
        """``POST /v1/verify`` returning the rebuilt report."""
        return VerificationReport.from_json(
            self.verify_raw(document).decode("utf-8"))

    def batch_envelope(self, documents: list[dict],
                       jobs: int | None = None) -> dict:
        """Synchronous ``POST /v1/batch``; the raw response envelope."""
        body: dict = {"requests": list(documents)}
        if jobs is not None:
            body["jobs"] = jobs
        return self.request("POST", "/v1/batch", body)

    def batch(self, documents: list[dict],
              jobs: int | None = None) -> list[VerificationReport]:
        """Synchronous batch returning reports in request order."""
        return [VerificationReport.from_dict(entry) for entry in
                self.batch_envelope(documents, jobs=jobs)["reports"]]

    # -- asynchronous jobs -----------------------------------------------------

    def submit_batch(self, documents: list[dict],
                     jobs: int | None = None) -> str:
        """``POST /v1/batch`` with ``"async": true``; returns the job id."""
        body: dict = {"requests": list(documents), "async": True}
        if jobs is not None:
            body["jobs"] = jobs
        return self.request("POST", "/v1/batch", body)["job"]

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/{id}`` — the raw job document."""
        return self.request("GET", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, timeout_s: float = 300.0,
             poll_s: float = 0.05) -> list[VerificationReport]:
        """Poll a job to completion and return its reports.

        Raises :class:`ServerError` if the job failed server-side or did
        not finish within ``timeout_s``.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            document = self.job(job_id)
            if document["state"] == "done":
                return [VerificationReport.from_dict(entry)
                        for entry in document["reports"]]
            if document["state"] == "failed":
                raise ServerError(200, "job_failed", document["error"])
            if time.monotonic() > deadline:
                raise ServerError(200, "job_timeout",
                                  f"job {job_id} still {document['state']} "
                                  f"after {timeout_s}s")
            time.sleep(poll_s)
