"""Thin stdlib HTTP client for the verification server.

:class:`VerificationClient` speaks the wire schema of
:mod:`repro.server.app` over ``http.client`` — one connection per request
(the server closes connections after every response), JSON in, JSON out,
reports rebuilt as :class:`~repro.api.report.VerificationReport` objects.
It is what the server tests, the benchmark harness, and
``examples/http_client.py`` drive; it is *not* a required dependency of
the server side.

Request documents are plain dicts mirroring
:class:`~repro.api.request.VerificationRequest` — e.g.
``{"architecture": "SP-AR-RC", "width": 4, "method": "mt-lr",
"budgets": {"monomial_budget": 100000}}`` — see
:data:`repro.server.app.REQUEST_KEYS`.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.api.report import VerificationReport
from repro.errors import ReproError


class ServerError(ReproError):
    """A structured error answer from the server (4xx/5xx)."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code


class VerificationClient:
    """Talk to a running ``repro-verify serve`` instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8585,
                 timeout_s: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- transport -------------------------------------------------------------

    def request_raw(self, method: str, path: str,
                    document: dict | None = None) -> tuple[int, bytes]:
        """One HTTP exchange; returns ``(status, body bytes)`` verbatim."""
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout_s)
        try:
            body = None
            headers = {}
            if document is not None:
                body = json.dumps(document, ensure_ascii=False,
                                  separators=(",", ":")).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    @staticmethod
    def _parse(status: int, body: bytes) -> dict:
        """Parse a response body; raises :class:`ServerError` on error bodies."""
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ServerError(status, "invalid_response",
                              f"non-JSON response body {body[:200]!r}") \
                from None
        if status >= 400:
            error = parsed.get("error", {}) if isinstance(parsed, dict) else {}
            raise ServerError(status, error.get("code", "unknown"),
                              error.get("message", body.decode("utf-8",
                                                               "replace")))
        return parsed

    def request(self, method: str, path: str,
                document: dict | None = None) -> dict:
        """One JSON exchange; raises :class:`ServerError` on error bodies."""
        return self._parse(*self.request_raw(method, path, document))

    # -- introspection ---------------------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def backends(self) -> list[dict]:
        return self.request("GET", "/v1/backends")["backends"]

    def certificate(self, digest: str) -> dict:
        """``GET /v1/certificates/{hash}`` — a stored proof certificate."""
        return self.request("GET", f"/v1/certificates/{digest}")

    # -- verification ----------------------------------------------------------

    def verify_raw(self, document: dict) -> bytes:
        """``POST /v1/verify`` returning the exact report JSON bytes."""
        status, body = self.request_raw("POST", "/v1/verify", document)
        if status != 200:
            # Raise from the bytes already received — never re-submit the
            # (possibly expensive) verification just to build the exception.
            self._parse(status, body)
            raise ServerError(status, "unknown",
                              body.decode("utf-8", "replace"))
        return body

    def verify(self, document: dict) -> VerificationReport:
        """``POST /v1/verify`` returning the rebuilt report."""
        return VerificationReport.from_json(
            self.verify_raw(document).decode("utf-8"))

    def batch_envelope(self, documents: list[dict],
                       jobs: int | None = None) -> dict:
        """Synchronous ``POST /v1/batch``; the raw response envelope."""
        body: dict = {"requests": list(documents)}
        if jobs is not None:
            body["jobs"] = jobs
        return self.request("POST", "/v1/batch", body)

    def batch(self, documents: list[dict],
              jobs: int | None = None) -> list[VerificationReport]:
        """Synchronous batch returning reports in request order."""
        return [VerificationReport.from_dict(entry) for entry in
                self.batch_envelope(documents, jobs=jobs)["reports"]]

    # -- asynchronous jobs -----------------------------------------------------

    def submit_batch(self, documents: list[dict],
                     jobs: int | None = None) -> str:
        """``POST /v1/batch`` with ``"async": true``; returns the job id."""
        body: dict = {"requests": list(documents), "async": True}
        if jobs is not None:
            body["jobs"] = jobs
        return self.request("POST", "/v1/batch", body)["job"]

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/{id}`` — the raw job document."""
        return self.request("GET", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, timeout_s: float = 300.0,
             poll_s: float = 0.05) -> list[VerificationReport]:
        """Poll a job to completion and return its reports.

        Raises :class:`ServerError` if the job failed server-side or did
        not finish within ``timeout_s``.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            document = self.job(job_id)
            if document["state"] == "done":
                return [VerificationReport.from_dict(entry)
                        for entry in document["reports"]]
            if document["state"] == "failed":
                raise ServerError(200, "job_failed", document["error"])
            if time.monotonic() > deadline:
                raise ServerError(200, "job_timeout",
                                  f"job {job_id} still {document['state']} "
                                  f"after {timeout_s}s")
            time.sleep(poll_s)
