"""Declarative fleet topology: workers, capacities, backend allowlists.

A :class:`FleetTopology` names the remote workers a
:class:`~repro.fleet.dispatcher.FleetDispatcher` scatters over — each
worker is simply a running ``repro-verify serve`` on some host/port —
plus the dispatch knobs: per-worker in-flight capacity, optional
per-worker backend allowlists (validated against the registry), the
work-stealing straggler grace, the retry budget, and the coordinator's
shared result cache.  Topologies load from a JSON document, a file, or
the ``REPRO_FLEET`` environment variable; the wire format is documented
in ``docs/fleet.md``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.api.registry import backend_names
from repro.errors import VerificationError

#: Document keys accepted by :meth:`FleetTopology.from_document`.
TOPOLOGY_KEYS = ("workers", "straggler_grace_s", "max_attempts",
                 "cache_dir", "shared_cache")

#: Worker-entry keys accepted inside ``"workers"``.
WORKER_KEYS = ("name", "host", "port", "capacity", "backends")


@dataclass(frozen=True)
class WorkerSpec:
    """One remote worker: address, in-flight capacity, backend allowlist.

    ``capacity`` bounds the requests the dispatcher keeps in flight on
    this worker at once (a worker serving with ``--jobs 4`` can take
    ``capacity: 4``).  An empty ``backends`` tuple means the worker runs
    every registered backend; a non-empty one restricts dispatch to the
    named methods.
    """

    name: str
    host: str = "127.0.0.1"
    port: int = 8585
    capacity: int = 1
    backends: tuple[str, ...] = ()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def supports(self, method: str) -> bool:
        """True iff this worker may run ``method`` (empty allowlist = all)."""
        return not self.backends or method in self.backends


@dataclass(frozen=True)
class FleetTopology:
    """The full fleet configuration a dispatcher runs under."""

    workers: tuple[WorkerSpec, ...]
    #: A job in flight longer than this is re-dispatched to an idle
    #: worker (first finisher wins); ``None`` disables work-stealing.
    straggler_grace_s: float | None = None
    #: Total dispatch attempts per job (initial + re-dispatches).
    max_attempts: int = 3
    #: Coordinator-side on-disk result cache directory (``None`` = none).
    cache_dir: str | None = None
    #: URL of a coordinator exposing ``/v1/cache/{key}`` that workers
    #: check/populate (handed to ``repro-verify serve --shared-cache``).
    shared_cache: str | None = None

    def __post_init__(self) -> None:
        if not self.workers:
            raise VerificationError("fleet topology needs at least one worker")
        names = [worker.name for worker in self.workers]
        if len(set(names)) != len(names):
            raise VerificationError(
                f"fleet worker names must be unique, got {names}")
        if self.max_attempts < 1:
            raise VerificationError("fleet max_attempts must be >= 1")
        if (self.straggler_grace_s is not None
                and self.straggler_grace_s <= 0):
            raise VerificationError("fleet straggler_grace_s must be > 0")

    def workers_for(self, method: str) -> tuple[WorkerSpec, ...]:
        """The workers whose allowlist admits ``method``."""
        return tuple(worker for worker in self.workers
                     if worker.supports(method))

    # -- loading ---------------------------------------------------------------

    @classmethod
    def from_document(cls, document: object) -> "FleetTopology":
        """Build and validate a topology from a parsed JSON document."""
        if not isinstance(document, dict):
            raise VerificationError(
                "fleet topology must be a JSON object")
        unknown = sorted(set(document) - set(TOPOLOGY_KEYS))
        if unknown:
            raise VerificationError(
                f"unknown fleet topology field(s) {unknown}; expected a "
                f"subset of {list(TOPOLOGY_KEYS)}")
        entries = document.get("workers")
        if not isinstance(entries, list) or not entries:
            raise VerificationError(
                "fleet topology needs a non-empty 'workers' array")
        workers = tuple(cls._parse_worker(entry, position)
                        for position, entry in enumerate(entries))
        grace = document.get("straggler_grace_s")
        if grace is not None and (isinstance(grace, bool)
                                  or not isinstance(grace, (int, float))):
            raise VerificationError(
                "fleet 'straggler_grace_s' must be a number or null")
        attempts = document.get("max_attempts", 3)
        if isinstance(attempts, bool) or not isinstance(attempts, int):
            raise VerificationError("fleet 'max_attempts' must be an integer")
        cache_dir = document.get("cache_dir")
        if cache_dir is not None and not isinstance(cache_dir, str):
            raise VerificationError("fleet 'cache_dir' must be a string")
        shared = document.get("shared_cache")
        if shared is not None and not isinstance(shared, str):
            raise VerificationError("fleet 'shared_cache' must be a URL string")
        return cls(workers=workers, straggler_grace_s=grace,
                   max_attempts=attempts, cache_dir=cache_dir,
                   shared_cache=shared)

    @staticmethod
    def _parse_worker(entry: object, position: int) -> WorkerSpec:
        if not isinstance(entry, dict):
            raise VerificationError(
                f"fleet worker #{position} must be a JSON object")
        unknown = sorted(set(entry) - set(WORKER_KEYS))
        if unknown:
            raise VerificationError(
                f"unknown fleet worker field(s) {unknown}; expected a "
                f"subset of {list(WORKER_KEYS)}")
        name = entry.get("name", f"worker-{position}")
        host = entry.get("host", "127.0.0.1")
        if not isinstance(name, str) or not isinstance(host, str):
            raise VerificationError(
                f"fleet worker #{position}: 'name' and 'host' must be strings")
        port = entry.get("port", 8585)
        if isinstance(port, bool) or not isinstance(port, int) \
                or not 0 < port < 65536:
            raise VerificationError(
                f"fleet worker {name!r}: 'port' must be a TCP port number")
        capacity = entry.get("capacity", 1)
        if isinstance(capacity, bool) or not isinstance(capacity, int) \
                or capacity < 1:
            raise VerificationError(
                f"fleet worker {name!r}: 'capacity' must be a positive "
                "integer")
        backends = entry.get("backends", [])
        if not isinstance(backends, list) \
                or not all(isinstance(b, str) for b in backends):
            raise VerificationError(
                f"fleet worker {name!r}: 'backends' must be an array of "
                "backend names")
        unknown_backends = sorted(set(backends) - set(backend_names()))
        if unknown_backends:
            raise VerificationError(
                f"fleet worker {name!r} allowlists unknown backend(s) "
                f"{unknown_backends}; registered: {list(backend_names())}")
        return WorkerSpec(name=name, host=host, port=port, capacity=capacity,
                          backends=tuple(backends))

    @classmethod
    def from_json(cls, text: str) -> "FleetTopology":
        try:
            document = json.loads(text)
        except ValueError as error:
            raise VerificationError(
                f"fleet topology is not valid JSON: {error}") from None
        return cls.from_document(document)

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "FleetTopology":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise VerificationError(
                f"cannot read fleet topology {path!r}: {error}") from None
        return cls.from_json(text)

    @classmethod
    def from_environment(cls) -> "FleetTopology | None":
        """Topology named by ``REPRO_FLEET``: inline JSON or a file path."""
        value = os.environ.get("REPRO_FLEET")
        if not value:
            return None
        if value.lstrip().startswith("{"):
            return cls.from_json(value)
        return cls.from_file(value)
