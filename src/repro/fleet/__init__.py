"""Distributed verification fleet: coordinator, workers, shared cache.

The fleet layer scales the paper's Table I/II grids past one machine.
Each *worker* is simply the existing HTTP server (``repro-verify
serve``) on some host/port; the *coordinator* is a
:class:`FleetDispatcher` driving a :class:`FleetTopology` — scattering
requests longest-expected-first with bounded in-flight per worker,
stealing stragglers onto idle workers (first finisher wins), routing
worker failures through the :mod:`repro.resilience` taxonomy, and
sharing one content-addressed :class:`~repro.experiments.runner.ResultCache`
so a row verified anywhere is verified everywhere.  See ``docs/fleet.md``.
"""

from .dispatcher import (FleetDispatcher, RETRYABLE_WORKER_STATUSES,
                         dispatch_cost, wire_document)
from .topology import FleetTopology, TOPOLOGY_KEYS, WORKER_KEYS, WorkerSpec

__all__ = [
    "FleetDispatcher",
    "FleetTopology",
    "RETRYABLE_WORKER_STATUSES",
    "TOPOLOGY_KEYS",
    "WORKER_KEYS",
    "WorkerSpec",
    "dispatch_cost",
    "wire_document",
]
