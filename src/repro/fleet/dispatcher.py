"""Fleet dispatcher: scatter verification requests over remote workers.

The :class:`FleetDispatcher` is the coordinator of a verification fleet.
Each worker is simply a running ``repro-verify serve`` (the PR 5 HTTP
server) on some host/port; the dispatcher speaks the same wire protocol
as :class:`~repro.server.client.VerificationClient` and therefore needs
no worker-side changes beyond the ``/v1/version`` handshake.

Scheduling mirrors :class:`~repro.experiments.runner.ParallelRunner`:

* **Longest-expected-first placement** — queued requests are sorted by
  :func:`~repro.experiments.runner.expected_cost_key` (descending) so
  the heavy Booth/tree rows go out first and the grid's wall-clock is
  not dominated by a straggling tail.
* **Bounded in-flight per worker** — each :class:`WorkerSpec` carries a
  ``capacity``; the dispatcher never keeps more than that many requests
  outstanding on one worker.
* **Work-stealing** — once the queue drains, a job in flight longer
  than ``straggler_grace_s`` is re-dispatched to an idle worker.  Both
  attempts race and the first finisher wins; a dispatch-epoch guard
  (the same pattern as ``ParallelRunner``) drops the loser's result.
  The report's ``attempts`` history records the steal only when the
  stolen attempt is the one that won — when the original outruns its
  re-dispatch, nothing was actually superseded.
* **Failure taxonomy** — worker failures route through the PR 7
  resilience layer: connect errors and 429/5xx answers are retryable
  (on another worker when one is available, with the deterministic
  :class:`~repro.resilience.policy.RetryPolicy` backoff); verdicts are
  final.  A worker that drops the TCP connection is marked down for the
  rest of the batch; a client-side *request timeout* is not — the
  worker may be healthy and merely slow on one job, so timeouts retry
  like any other transient failure.  Exhausted retries produce an
  honest ``error`` report, never a silent gap.

Results are byte-identical to local runs: workers return canonical
:class:`~repro.api.report.VerificationReport` JSON, and the dispatcher
only annotates ``attempts`` (excluded from parity by definition) when a
job needed more than one dispatch.  When the topology names a
``cache_dir`` the dispatcher consults the content-addressed
:class:`~repro.experiments.runner.ResultCache` before dispatching and
publishes every worker verdict back into it — a row verified anywhere
is verified everywhere.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, Sequence

from repro.api.report import REPORT_SCHEMA, VerificationReport
from repro.api.request import Budgets, VerificationRequest
from repro.api.registry import scheduling_rank
from repro.errors import VerificationError
from repro.resilience.policy import RetryPolicy, attempt_entry
from repro.server.client import ServerError, VerificationClient

from .topology import FleetTopology, WorkerSpec

#: Worker answers that warrant re-dispatch (same set the client retries
#: on); anything else 4xx-shaped is a final, non-retryable error.
RETRYABLE_WORKER_STATUSES = frozenset((429, 500, 502, 503, 504))


def wire_document(request: VerificationRequest) -> "dict | None":
    """The ``POST /v1/verify`` document for ``request``, or ``None``.

    ``None`` means the request cannot travel: it carries an in-memory
    netlist, a coordinator-local Verilog path, or a non-string
    specification — those run on the coordinator's local service
    instead.  Budgets are spelled out field-for-field so the worker
    reconstructs *exactly* the coordinator's budget bundle; the shared
    result cache keys entries by those budgets.
    """
    if request.netlist is not None or request.verilog_path is not None:
        return None
    if request.specification is not None \
            and not isinstance(request.specification, str):
        return None
    document: dict = {"method": request.method}
    if request.architecture is not None:
        document["architecture"] = request.architecture
        document["width"] = request.width
    if request.verilog_text is not None:
        document["verilog_text"] = request.verilog_text
        if request.width is not None:
            document["width"] = request.width
    if request.circuit_kind != "multiplier":
        document["circuit_kind"] = request.circuit_kind
    if isinstance(request.specification, str):
        document["specification"] = request.specification
    document["budgets"] = {
        field.name: getattr(request.budgets, field.name)
        for field in dataclasses.fields(Budgets)
    }
    document["find_counterexample"] = request.find_counterexample
    if request.xor_and_only:
        document["xor_and_only"] = True
    if request.certificate:
        document["certificate"] = True
    if request.incremental:
        document["incremental"] = True
    if request.seed:
        document["seed"] = request.seed
    return document


def dispatch_cost(request: VerificationRequest) -> tuple:
    """Expected-cost sort key for placement (higher = dispatched first).

    Reuses :func:`~repro.experiments.runner.expected_cost_key` for
    architecture-named requests; everything else falls back to
    (width, scheduling rank) so inline Verilog still sorts sensibly.
    """
    from repro.experiments.runner import VerificationJob, expected_cost_key

    if request.architecture is not None:
        return expected_cost_key(VerificationJob(
            request.architecture, request.width, request.method))
    return (request.width or 0, scheduling_rank(request.method), 0)


class FleetDispatcher:
    """Coordinator that runs batches across a :class:`FleetTopology`.

    Mirrors the :class:`~repro.api.service.VerificationService` batch
    surface — ``run_batch`` returns the full report list,
    ``iter_batch`` yields reports in request order as they resolve —
    so the HTTP server's ``/v1/batch`` handler can swap one in for the
    other when it was started with a fleet topology.
    """

    def __init__(self, topology: FleetTopology,
                 golden_architecture: str = "SP-AR-RC",
                 local_service=None,
                 client_factory: "Callable[[WorkerSpec], VerificationClient] | None" = None,
                 request_timeout_s: float = 300.0,
                 retry_base_delay_s: float = 0.05) -> None:
        from repro.experiments.runner import NetlistHasher, ResultCache

        self.topology = topology
        self.golden_architecture = golden_architecture
        self.local_service = local_service
        self.request_timeout_s = request_timeout_s
        self._client_factory = client_factory
        self._clients: dict[str, VerificationClient] = {}
        self._hasher = NetlistHasher()
        self.cache = (ResultCache(topology.cache_dir)
                      if topology.cache_dir else None)
        self.retry_policy = RetryPolicy(max_attempts=topology.max_attempts,
                                        base_delay_s=retry_base_delay_s)
        #: ``(monotonic time, request index, worker name)`` per dispatch.
        self.dispatch_log: list[tuple[float, int, str]] = []
        self.worker_versions: dict[str, dict] = {}
        self.last_cache_hits = 0
        self.last_executed = 0
        self.last_retries = 0
        self.last_fallbacks = 0
        self.last_steals = 0

    # -- wiring ----------------------------------------------------------------

    def _client(self, worker: WorkerSpec) -> VerificationClient:
        client = self._clients.get(worker.name)
        if client is None:
            if self._client_factory is not None:
                client = self._client_factory(worker)
            else:
                # One transparent attempt per dispatch: the dispatcher
                # owns retries so it can fail over to another worker.
                client = VerificationClient(
                    host=worker.host, port=worker.port,
                    timeout_s=self.request_timeout_s,
                    retry_policy=RetryPolicy(max_attempts=1))
            self._clients[worker.name] = client
        return client

    def _local_service(self):
        if self.local_service is None:
            from repro.api.service import VerificationService

            self.local_service = VerificationService(
                golden_architecture=self.golden_architecture)
        return self.local_service

    def check_workers(self, down: "set[str] | None" = None) -> dict[str, dict]:
        """``GET /v1/version`` handshake: refuse mixed-schema fleets.

        Returns ``{worker name: version document}`` for the reachable
        workers.  Raises :class:`VerificationError` when any reachable
        worker speaks a different report schema or certificate version
        than this coordinator, or when no worker is reachable at all.
        Unreachable workers are recorded in ``down`` (when given) and
        tolerated as long as at least one worker answers.
        """
        from repro.certify.certificate import CERTIFICATE_VERSION

        versions: dict[str, dict] = {}
        mismatched: list[str] = []
        unreachable: list[str] = []
        for worker in self.topology.workers:
            try:
                document = self._client(worker).version()
            except ServerError as error:
                if error.status == 0:
                    unreachable.append(f"{worker.name} ({worker.url}): {error}")
                    if down is not None:
                        down.add(worker.name)
                    continue
                mismatched.append(
                    f"{worker.name} ({worker.url}): no /v1/version endpoint "
                    f"(HTTP {error.status}) — pre-fleet server")
                continue
            versions[worker.name] = document
            if (document.get("report_schema") != REPORT_SCHEMA
                    or document.get("certificate_version")
                    != CERTIFICATE_VERSION):
                mismatched.append(
                    f"{worker.name} ({worker.url}): report_schema="
                    f"{document.get('report_schema')} certificate_version="
                    f"{document.get('certificate_version')}")
        if mismatched:
            raise VerificationError(
                "fleet version mismatch — refusing mixed-schema workers: "
                + "; ".join(mismatched)
                + f" (coordinator speaks report_schema={REPORT_SCHEMA} "
                f"certificate_version={CERTIFICATE_VERSION})")
        if not versions:
            raise VerificationError(
                "no fleet worker is reachable: " + "; ".join(unreachable))
        self.worker_versions = versions
        return versions

    # -- batch surface ---------------------------------------------------------

    def run_batch(self, requests: Sequence[VerificationRequest],
                  jobs: "int | None" = None) -> list[VerificationReport]:
        """Scatter ``requests`` over the fleet; reports in request order."""
        return list(self.iter_batch(requests, jobs=jobs))

    def iter_batch(self, requests: Sequence[VerificationRequest],
                   jobs: "int | None" = None
                   ) -> Iterator[VerificationReport]:
        """Yield reports in request order as the fleet resolves them.

        ``jobs`` is accepted for service-interface compatibility; fleet
        concurrency is governed by worker capacities, not a local pool.
        """
        del jobs
        run = _FleetRun(self, list(requests))
        run.start()
        try:
            for index in range(len(run.requests)):
                yield run.take(index)
            run.complete()
        finally:
            run.shutdown()


class _FleetRun:
    """State of one batch in flight: queue, epochs, retries, results."""

    def __init__(self, dispatcher: FleetDispatcher,
                 requests: list[VerificationRequest]) -> None:
        self.d = dispatcher
        self.requests = requests
        self.condition = threading.Condition()
        self.documents: dict[int, dict] = {}
        self.costs: dict[int, tuple] = {}
        self.keys: dict[int, "str | None"] = {}
        self.results: dict[int, VerificationReport] = {}
        self.local: set[int] = set()
        self.queue: list[int] = []
        self.retry_queue: list[tuple[float, int]] = []
        self.live: dict[int, set[int]] = {}
        self.epochs: dict[int, int] = {}
        self.attempt_of: dict[tuple[int, int], int] = {}
        self.attempt_counts: dict[int, int] = {}
        self.histories: dict[int, list[dict]] = {}
        #: ``(index, stealing epoch) -> (superseded attempt, entry)`` —
        #: steal annotations held back until the stolen attempt wins.
        self.pending_steals: dict[tuple[int, int], tuple[int, dict]] = {}
        self.tried: dict[int, set[str]] = {}
        self.starts: dict[tuple[int, int], float] = {}
        self.running: dict[tuple[int, int], str] = {}
        self.inflight = {worker.name: 0
                         for worker in dispatcher.topology.workers}
        self.down: set[str] = set()
        self.unresolved = 0
        self.closed = False
        self.failure: "BaseException | None" = None
        self.cache_hits = 0
        self.executed = 0
        self.retries = 0
        self.steals = 0
        self.executor: "ThreadPoolExecutor | None" = None
        self.scheduler: "threading.Thread | None" = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        self.d.check_workers(down=self.down)
        order: list[int] = []
        for index, request in enumerate(self.requests):
            document = wire_document(request)
            if document is None \
                    or not self.d.topology.workers_for(request.method):
                self.local.add(index)
                continue
            self.costs[index] = dispatch_cost(request)
            key = None
            if self.d.cache is not None:
                from repro.api.service import request_cache_key

                key = request_cache_key(request, self.d.golden_architecture,
                                        hasher=self.d._hasher)
                if key is not None:
                    report = self.d.cache.get_report(key)
                    if report is not None:
                        self.results[index] = report
                        self.cache_hits += 1
                        continue
            self.keys[index] = key
            self.documents[index] = document
            order.append(index)
        # Longest expected cost first; stable on grid order for ties.
        self.queue = sorted(order, key=lambda i: self.costs[i], reverse=True)
        self.unresolved = len(order)
        if self.unresolved:
            capacity = sum(worker.capacity
                           for worker in self.d.topology.workers)
            self.executor = ThreadPoolExecutor(
                max_workers=max(1, capacity),
                thread_name_prefix="repro-fleet")
            self.scheduler = threading.Thread(
                target=self._schedule, daemon=True,
                name="repro-fleet-scheduler")
            self.scheduler.start()

    def take(self, index: int) -> VerificationReport:
        """Block until request ``index`` resolves; return its report."""
        if index in self.local:
            # Single-request run_batch, mirroring the remote dispatch
            # path, so local fallbacks stay byte-identical too.
            report = self.d._local_service().run_batch(
                [self.requests[index]])[0]
            with self.condition:
                self.results[index] = report
                self.executed += 1
            return report
        with self.condition:
            while index not in self.results and self.failure is None:
                self.condition.wait()
            if index not in self.results and self.failure is not None:
                raise self.failure
            return self.results[index]

    def complete(self) -> None:
        if self.scheduler is not None:
            self.scheduler.join()
        if self.executor is not None:
            self.executor.shutdown(wait=True)
            self.executor = None
        self.d.last_cache_hits = self.cache_hits
        self.d.last_executed = self.executed
        self.d.last_retries = self.retries
        self.d.last_fallbacks = 0
        self.d.last_steals = self.steals

    def shutdown(self) -> None:
        with self.condition:
            self.closed = True
            self.condition.notify_all()
        if self.executor is not None:
            self.executor.shutdown(wait=False)
            self.executor = None

    # -- scheduling ------------------------------------------------------------

    def _schedule(self) -> None:
        try:
            with self.condition:
                while not self.closed and self.unresolved:
                    now = time.monotonic()
                    self._promote_retries(now)
                    self._assign(now)
                    self._steal(now)
                    # _assign may have resolved the last jobs itself
                    # (queued work dropped because its workers died) —
                    # re-check before sleeping, or this thread waits on
                    # a notification that will never come.
                    if self.closed or not self.unresolved:
                        break
                    self.condition.wait(timeout=self._wakeup(now))
        except BaseException as error:  # pragma: no cover - defensive
            with self.condition:
                self.failure = error
                self.condition.notify_all()

    def _promote_retries(self, now: float) -> None:
        ready = [index for ready_at, index in self.retry_queue
                 if ready_at <= now]
        if ready:
            self.retry_queue = [(ready_at, index)
                                for ready_at, index in self.retry_queue
                                if ready_at > now]
            # Retries jump the queue: they already waited out a backoff.
            self.queue[:0] = ready

    def _assign(self, now: float) -> None:
        self._drop_unservable()
        progress = True
        while progress and self.queue:
            progress = False
            for worker in self.d.topology.workers:
                if worker.name in self.down:
                    continue
                if self.inflight[worker.name] >= worker.capacity:
                    continue
                index = self._pick(worker)
                if index is None:
                    continue
                self.queue.remove(index)
                self._dispatch(index, worker, now)
                progress = True

    def _drop_unservable(self) -> None:
        """Fail queued jobs whose every supporting worker is down."""
        for index in list(self.queue):
            request = self.requests[index]
            if any(worker.name not in self.down
                   for worker in self.d.topology.workers_for(request.method)):
                continue
            self.queue.remove(index)
            self._finish_error(
                index,
                f"all fleet workers for method {request.method!r} are down")

    def _pick(self, worker: WorkerSpec) -> "int | None":
        untried = None
        fallback = None
        for index in self.queue:
            if not worker.supports(self.requests[index].method):
                continue
            if worker.name not in self.tried.get(index, ()):
                untried = index
                break
            if fallback is None:
                fallback = index
        return untried if untried is not None else fallback

    def _dispatch(self, index: int, worker: WorkerSpec, now: float,
                  steal_from: "tuple[int, str] | None" = None) -> None:
        request = self.requests[index]
        epoch = self.epochs.get(index, 0) + 1
        self.epochs[index] = epoch
        self.live.setdefault(index, set()).add(epoch)
        attempt = self.attempt_counts.get(index, 0) + 1
        self.attempt_counts[index] = attempt
        self.attempt_of[(index, epoch)] = attempt
        self.tried.setdefault(index, set()).add(worker.name)
        self.starts[(index, epoch)] = now
        self.running[(index, epoch)] = worker.name
        self.inflight[worker.name] += 1
        self.d.dispatch_log.append((now, index, worker.name))
        if steal_from is not None:
            superseded_attempt, grace_text = steal_from
            self.steals += 1
            # Both attempts race and the original frequently wins, so the
            # "superseded" entry is only pending until this new epoch
            # actually finishes first (_finish attaches it then).
            self.pending_steals[(index, epoch)] = (
                superseded_attempt,
                attempt_entry(
                    superseded_attempt, request.method,
                    "initial" if superseded_attempt == 1 else "retry",
                    "hard_timeout",
                    reason=f"straggler re-dispatch after {grace_text}s grace "
                           f"to {worker.name}"))
        assert self.executor is not None
        self.executor.submit(self._attempt, index, epoch, worker)

    def _steal(self, now: float) -> None:
        grace = self.d.topology.straggler_grace_s
        if grace is None or self.queue:
            return
        grace_text = f"{grace:g}"
        for worker in self.d.topology.workers:
            if worker.name in self.down:
                continue
            if self.inflight[worker.name] >= worker.capacity:
                continue
            best = None
            best_started = None
            for (index, epoch), started in self.starts.items():
                if epoch not in self.live.get(index, ()):
                    continue
                if len(self.live[index]) != 1:
                    continue
                if now - started <= grace:
                    continue
                if self.attempt_counts[index] \
                        >= self.d.retry_policy.max_attempts:
                    continue
                request = self.requests[index]
                if not worker.supports(request.method):
                    continue
                if self.running.get((index, epoch)) == worker.name:
                    continue
                if best_started is None or started < best_started:
                    best, best_started = (index, epoch), started
            if best is None:
                continue
            index, epoch = best
            self._dispatch(index, worker, now,
                           steal_from=(self.attempt_of[(index, epoch)],
                                       grace_text))

    def _wakeup(self, now: float) -> "float | None":
        deadlines = [ready_at for ready_at, _ in self.retry_queue]
        grace = self.d.topology.straggler_grace_s
        if grace is not None and not self.queue:
            for (index, epoch), started in self.starts.items():
                if epoch in self.live.get(index, ()):
                    deadlines.append(started + grace)
        if not deadlines:
            return None
        return max(0.01, min(deadlines) - now)

    # -- one remote attempt ----------------------------------------------------

    def _attempt(self, index: int, epoch: int, worker: WorkerSpec) -> None:
        # One-request batch, not /v1/verify: the worker then executes the
        # job through the exact same VerificationService.run_batch code
        # path as a local run, so reports stay byte-identical to the
        # in-process baseline for every request shape.
        document = {"requests": [self.documents[index]], "jobs": 1}
        client = self.d._client(worker)
        report = None
        reason = None
        transport = False
        retryable = False
        try:
            status, body = client.request_raw("POST", "/v1/batch", document)
        except ServerError as error:
            reason = f"worker {worker.name}: {error}"
            # Only connection-level failures mark the worker down; a
            # client-side request timeout means one slow job, not a dead
            # worker — it routes through the normal retry path so one
            # straggler cannot cascade a healthy fleet into "all down".
            transport = (error.status == 0
                         and error.code != "request_timeout")
            retryable = True
        except Exception as error:  # pragma: no cover - defensive
            reason = (f"worker {worker.name}: "
                      f"{type(error).__name__}: {error}")
            transport = True
            retryable = True
        else:
            if status == 200:
                try:
                    envelope = json.loads(body.decode("utf-8"))
                    report = VerificationReport.from_dict(
                        envelope["reports"][0])
                except Exception as error:
                    reason = (f"worker {worker.name}: unparseable report "
                              f"({type(error).__name__}: {error})")
                    retryable = True
            elif status in RETRYABLE_WORKER_STATUSES:
                reason = f"worker {worker.name}: HTTP {status}"
                retryable = True
            else:
                detail = body[:200].decode("utf-8", "replace")
                reason = f"worker {worker.name}: HTTP {status} {detail}"
                retryable = False
        with self.condition:
            self.inflight[worker.name] -= 1
            self.live.get(index, set()).discard(epoch)
            self.starts.pop((index, epoch), None)
            self.running.pop((index, epoch), None)
            if transport:
                self.down.add(worker.name)
            if index in self.results:
                # A racing duplicate already won; epoch guard drops this.
                self.condition.notify_all()
                return
            if report is not None:
                self._finish(index, epoch, report)
            else:
                self._record_failure(index, epoch, reason or "worker failure",
                                     retryable)
            self.condition.notify_all()

    def _record_failure(self, index: int, epoch: int, reason: str,
                        retryable: bool) -> None:
        attempt = self.attempt_of[(index, epoch)]
        request = self.requests[index]
        # This attempt's real outcome is a crash: it neither supersedes
        # anything (a failed stealer) nor was superseded (the annotation
        # claiming so would be false history).
        self.pending_steals.pop((index, epoch), None)
        for key, (superseded, _entry) in list(self.pending_steals.items()):
            if key[0] == index and superseded == attempt:
                del self.pending_steals[key]
        self.histories.setdefault(index, []).append(attempt_entry(
            attempt, request.method,
            "initial" if attempt == 1 else "retry",
            "crash", reason=reason))
        if self.live.get(index):
            return  # a racing duplicate is still in flight
        up = [worker
              for worker in self.d.topology.workers_for(request.method)
              if worker.name not in self.down]
        if retryable and up \
                and self.attempt_counts[index] \
                < self.d.retry_policy.max_attempts:
            delay = self.d.retry_policy.delay_s(
                attempt,
                key=(request.architecture, request.width, request.method))
            self.retries += 1
            self.retry_queue.append((time.monotonic() + delay, index))
            return
        self._finish_error(index, reason)

    def _finish_error(self, index: int, reason: str) -> None:
        request = self.requests[index]
        report = VerificationReport.from_row({
            "architecture": request.architecture or request.display_name(),
            "width": request.width,
            "method": request.method,
            "status": "error",
            "time": "-",
            "time_s": None,
            "verified": None,
            "reason": reason,
        })
        self._finish(index, None, report, close_history=False)

    def _finish(self, index: int, epoch: "int | None",
                report: VerificationReport, close_history: bool = True) -> None:
        # A steal annotation only becomes true history if the stolen
        # (new-epoch) attempt is the one that actually wins the race —
        # first-finisher-wins means the original frequently does.
        steal = (self.pending_steals.pop((index, epoch), None)
                 if epoch is not None else None)
        if steal is not None:
            self.histories.setdefault(index, []).append(steal[1])
        for key in [key for key in self.pending_steals if key[0] == index]:
            del self.pending_steals[key]
        history = self.histories.pop(index, None)
        if history:
            if close_history:
                attempt = self.attempt_of.get(
                    (index, epoch), self.attempt_counts.get(index, 1))
                history.append(attempt_entry(
                    attempt, report.method,
                    "initial" if attempt == 1 else "retry",
                    report.verdict, reason=report.reason))
            report.attempts = list(report.attempts or ()) + history
        key = self.keys.get(index)
        if key is not None and self.d.cache is not None:
            self.d.cache.put_report(key, report)
        self.results[index] = report
        self.executed += 1
        self.unresolved -= 1
        # Always called with the lock held; wake the consumer directly so
        # resolutions that never pass through _attempt — a queued job
        # dropped because its every supporting worker went down — cannot
        # leave take() blocked forever.
        self.condition.notify_all()
