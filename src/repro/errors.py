"""Exception hierarchy shared across the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by this package."""


class AlgebraError(ReproError):
    """Raised for inconsistent algebraic operations (unknown variables, bad orders)."""


class CircuitError(ReproError):
    """Raised for malformed netlists (duplicate drivers, combinational loops, ...)."""


class ModelingError(ReproError):
    """Raised when a circuit cannot be translated into a polynomial model."""


class VerificationError(ReproError):
    """Raised when a verification engine is misconfigured."""


class BlowUpError(ReproError):
    """Raised when a computation exceeds its monomial or time budget.

    The experiment runner converts this into a ``TO`` (time-out) table entry,
    mirroring the 100-hour timeout used in the paper's evaluation.
    """

    def __init__(self, message: str, *, monomials: int | None = None,
                 elapsed_s: float | None = None) -> None:
        super().__init__(message)
        self.monomials = monomials
        self.elapsed_s = elapsed_s


class CertificateError(ReproError):
    """Raised when a proof certificate is malformed or fails to check.

    Carries the check ``stage`` (hash, structure, schedule, vanishing,
    model, replay, verdict) and, where applicable, the 0-based ``step``
    index of the offending schedule entry or vanishing rule.
    """

    def __init__(self, message: str, *, stage: str = "structure",
                 step: int | None = None) -> None:
        super().__init__(message)
        self.stage = stage
        self.step = step


class SatError(ReproError):
    """Raised by the SAT baseline for malformed CNF or solver misuse."""


class BddError(ReproError):
    """Raised by the BDD baseline (e.g. node budget exceeded)."""
