"""Gröbner-basis reduction (Step 3 of the MT algorithm, Algorithm 1).

The specification polynomial is divided by the (possibly rewritten) circuit
model.  Because every model polynomial has the form ``-x + tail`` with the
single leading variable ``x``, one S-polynomial/division step is exactly the
substitution ``x := tail``.  Substitutions are applied in the reverse
topological order of the circuit variables — from the primary outputs down
to the primary inputs — which lets the carry terms of integer arithmetic
cancel before they blow up.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algebra.monomial import bits_of
from repro.algebra.polynomial import Polynomial
from repro.algebra.substitution import SubstitutionEngine
from repro.errors import BlowUpError
from repro.modeling.model import AlgebraicModel


@dataclass
class ReductionOptions:
    """Budgets and switches of the Gröbner-basis reduction."""

    #: Abort (``BlowUpError``) when the intermediate remainder exceeds this
    #: number of monomials; ``None`` disables the check.
    monomial_budget: int | None = 2_000_000
    #: Abort when the reduction runs longer than this many seconds.
    time_budget_s: float | None = None
    #: Remove terms whose coefficient is a multiple of this modulus after
    #: every substitution (sound because such terms stay multiples of the
    #: modulus under further substitution); ``None`` keeps all terms.
    coefficient_modulus: int | None = None
    #: Substitution ordering scheme (``"structural"`` or ``"level"``), see
    #: :func:`substitution_order`.
    order_scheme: str = "structural"


@dataclass
class ReductionTrace:
    """Statistics recorded while reducing the specification.

    The counters below ``elapsed_s`` are reported by the
    :class:`~repro.algebra.substitution.SubstitutionEngine` that executes
    the reduction and are surfaced by ``repro-verify verify --stats``.
    """

    substitutions: int = 0
    peak_monomials: int = 0
    elapsed_s: float = 0.0
    #: Terms that contained the substituted variable, summed over all steps.
    affected_terms: int = 0
    #: Terms dropped because their coefficient became a modulus multiple.
    modulus_removed_terms: int = 0
    #: ``substitute_batch`` calls issued (the whole schedule is one batch
    #: unless the engine fell back mid-run) and steps executed inside them.
    batches: int = 0
    batched_steps: int = 0
    history: list[tuple[str, int]] = field(default_factory=list)
    record_history: bool = False


def substitution_order(model: AlgebraicModel, tails: dict[int, Polynomial],
                       scheme: str = "structural") -> list[int]:
    """Variables in substitution order (Algorithm 1, line 1).

    Two orders are provided:

    ``"level"``
        Plain reverse topological order by circuit level (descending variable
        index).  This is sufficient for ripple-carry-style circuits but lets
        the propagate (XOR skeleton) variables of parallel-prefix adders be
        expanded before the corresponding carry terms have cancelled, which
        blows up the remainder.

    ``"structural"`` (default)
        A consumer-first schedule of the rewritten model's dependency graph:
        a variable becomes *ready* once every polynomial whose tail references
        it has been substituted, and among ready variables non-XOR variables
        (carries, generates, Booth selects) are substituted before XOR-gate
        variables, deepest first.  This realises the paper's requirement that
        variables of the same level that depend on common inputs follow each
        other: the sums and carries of one bit position are processed
        back-to-back and the shared propagate variables are only expanded
        once all their consumers have cancelled.
    """
    if scheme == "level":
        return sorted(tails.keys(), reverse=True)
    if scheme != "structural":
        raise ValueError(f"unknown substitution order scheme {scheme!r}")

    from heapq import heapify, heappush, heappop

    from repro.circuit.gates import GateType

    # A variable's pending count is the number of tails that reference it;
    # membership tests run against one bitmask and each tail contributes
    # each referenced variable exactly once (support bits are a set).
    tails_mask = 0
    for var in tails:
        tails_mask |= 1 << var
    pending = dict.fromkeys(tails, 0)
    children: dict[int, list[int]] = {}
    for lead, tail in tails.items():
        referenced = bits_of(tail.support_mask() & tails_mask)
        children[lead] = referenced
        for var in referenced:
            pending[var] += 1

    # The heap priority ``(is_xor, -var)`` packs into one integer: XOR-gate
    # variables sort after all non-XOR ones, deepest (highest index) first
    # within each class.  Flat arrays keep the per-variable tests O(1).
    size = (max(tails) + 1) if tails else 0
    xor_bias = bytearray(size)
    records = model.records
    xor_gates = (GateType.XOR, GateType.XNOR)
    for var in tails:
        record = records.get(var)
        if record is not None and record.gate_type in xor_gates:
            xor_bias[var] = 1
    bias = 1 << 62
    half = bias >> 1

    # Plain-integer heap keys (no tuples to allocate or compare): a key
    # above ``half`` decodes to an XOR variable, anything else to a negated
    # non-XOR variable.  Every variable is pushed exactly once — on its
    # pending-count transition to zero — so no stale-entry guard is needed.
    heap = [(bias - var if xor_bias[var] else -var)
            for var, count in pending.items() if count == 0]
    heapify(heap)
    order: list[int] = []
    scheduled = bytearray(size)
    while heap:
        key = heappop(heap)
        var = bias - key if key > half else -key
        scheduled[var] = 1
        order.append(var)
        for child in children[var]:
            if scheduled[child]:
                continue
            count = pending[child] - 1
            pending[child] = count
            if count == 0:
                heappush(heap, bias - child if xor_bias[child] else -child)
    # Any variables left (cyclic should not happen; isolated ones) are appended
    # in plain reverse topological order as a safety net.
    if len(order) < len(tails):
        for var in sorted(tails.keys(), reverse=True):
            if not scheduled[var]:
                order.append(var)
    return order


def groebner_basis_reduction(spec: Polynomial, model: AlgebraicModel,
                             tails: dict[int, Polynomial],
                             options: ReductionOptions | None = None,
                             trace: ReductionTrace | None = None) -> Polynomial:
    """Reduce ``spec`` w.r.t. the model polynomials and return the remainder.

    ``tails`` maps each leading variable to the tail of its polynomial
    ``-x + tail`` (either the raw gate tails or the rewritten model).  The
    remainder is fully reduced: it only references primary inputs.
    """
    options = options or ReductionOptions()
    trace = trace if trace is not None else ReductionTrace()
    start = time.perf_counter()
    deadline = (start + options.time_budget_s
                if options.time_budget_s is not None else None)

    modulus = options.coefficient_modulus
    if modulus is not None:
        initial = spec.drop_coefficient_multiples(modulus).term_masks()
    else:
        initial = spec.term_masks()

    # The remainder lives inside one occurrence-indexed substitution engine
    # for the whole loop: each step enumerates only the terms that contain
    # the substituted variable (index lookup) and merges their expansions
    # back in place, so the (usually much larger) untouched part of the
    # remainder is never scanned, copied, or re-hashed.  Only the variables
    # still awaiting substitution are indexed; each one is retired from the
    # index after its step (the consumer-first order guarantees it can never
    # be re-introduced).
    index_mask = 0
    for var in tails:
        index_mask |= 1 << var
    engine = SubstitutionEngine(initial, index_mask,
                                coefficient_modulus=modulus)

    # The consumer-first schedule is fed to the engine as one batch: every
    # variable is substituted exactly once and retired, so the fused kernel
    # can defer all occurrence-index teardown (see ``substitute_batch``)
    # while reproducing the per-step semantics — including the per-step
    # budget/deadline checks — exactly.
    # ``substitution_order`` schedules tail leading variables only (gate
    # outputs — primary inputs never own a polynomial), so every scheduled
    # variable is substitutable.
    items = [(var, tails[var].term_view())
             for var in substitution_order(model, tails, options.order_scheme)]
    results, tripped = engine.substitute_batch(
        items, retire=True, term_limit=options.monomial_budget,
        deadline=deadline)
    for (var, _), (affected, size) in zip(items, results):
        if not affected:
            continue
        trace.substitutions += 1
        if size > trace.peak_monomials:
            trace.peak_monomials = size
        if trace.record_history:
            trace.history.append((model.ring.name(var), size))
    if tripped is not None:
        trace.elapsed_s = time.perf_counter() - start
        _copy_engine_counters(engine, trace)
        if tripped == "terms":
            var = items[len(results) - 1][0]
            raise BlowUpError(
                f"GB reduction exceeded the monomial budget at variable "
                f"{model.ring.name(var)!r} ({len(engine)} > "
                f"{options.monomial_budget})",
                monomials=len(engine), elapsed_s=trace.elapsed_s)
        raise BlowUpError(
            "GB reduction exceeded the time budget",
            monomials=len(engine), elapsed_s=trace.elapsed_s)

    trace.elapsed_s = time.perf_counter() - start
    _copy_engine_counters(engine, trace)
    return Polynomial._raw(engine.terms)


def _copy_engine_counters(engine: SubstitutionEngine,
                          trace: ReductionTrace) -> None:
    trace.affected_terms = engine.affected_terms
    trace.modulus_removed_terms = engine.modulus_removed
    trace.batches = engine.batches
    trace.batched_steps = engine.batch_steps
