"""The membership-testing verification engines (MT-Naive, MT-FO, MT-LR).

This is the top-level entry point of the reproduction:

>>> from repro.generators import generate_multiplier
>>> from repro.verification import verify_multiplier
>>> result = verify_multiplier(generate_multiplier("SP-AR-RC", 4))
>>> result.verified
True

The three methods share the same Step 1 (modelling) and Step 3 (Gröbner
basis reduction) and differ only in Step 2 (rewriting):

=========== ==================================================================
``mt-naive`` no rewriting — the raw gate-level Gröbner basis
``mt-fo``    fanout rewriting [Farahmandi & Alizadeh], no vanishing rule
``mt-xor``   XOR rewriting only (ablation of the paper's Section IV-B remark)
``mt-lr``    the paper's logic reduction rewriting: XOR rewriting with the
             XOR-AND vanishing rule, followed by common rewriting
=========== ==================================================================
"""

from __future__ import annotations

import itertools
import random
import time
import warnings

from repro.algebra.polynomial import Polynomial
from repro.api.registry import algebraic_backend_names
from repro.circuit.netlist import Netlist
from repro.errors import VerificationError
from repro.modeling.model import AlgebraicModel
from repro.modeling.spec import (
    Specification,
    adder_specification,
    multiplier_specification,
)
from repro.verification.reduction import (
    ReductionOptions,
    ReductionTrace,
    groebner_basis_reduction,
    substitution_order,
)
from repro.verification.rewriting import (
    RewrittenModel,
    fanout_rewriting,
    logic_reduction_rewriting,
    no_rewriting,
)
from repro.verification.result import ModelStatistics, VerificationResult
from repro.verification.vanishing import VanishingRules

#: Supported verification methods (derived from the backend registry —
#: the single source of truth in :mod:`repro.api.registry`).
METHODS = algebraic_backend_names()

#: Sentinel distinguishing "kwarg not passed" from any legal value, so the
#: deprecated budget kwargs can warn only when actually used.
_UNSET = object()

#: The legacy budget kwargs and their historical defaults (identical to the
#: corresponding :class:`~repro.api.request.Budgets` field defaults).
_LEGACY_BUDGET_KWARGS = ("monomial_budget", "time_budget_s",
                         "vanishing_cache_limit", "counterexample_tries")


def verify(netlist: Netlist, specification: Specification | str = "multiplier",
           method: str = "mt-lr", *,
           budgets=None,
           monomial_budget=_UNSET,
           time_budget_s=_UNSET,
           xor_and_only: bool = False,
           vanishing_cache_limit=_UNSET,
           find_counterexample: bool = True,
           counterexample_tries=_UNSET,
           certificate: bool = False,
           seed: int = 0,
           model: AlgebraicModel | None = None) -> VerificationResult:
    """Verify a gate-level circuit against an arithmetic specification.

    The canonical entry point is the service layer
    (:class:`repro.api.VerificationService` with a typed
    :class:`~repro.api.request.VerificationRequest`); this function is the
    pipeline it drives.  The individual budget keyword arguments
    (``monomial_budget``, ``time_budget_s``, ``vanishing_cache_limit``,
    ``counterexample_tries``) are the historical pre-``Budgets`` surface;
    passing any of them emits a :class:`DeprecationWarning` — they are
    normalized into a :class:`~repro.api.request.Budgets` and ignored
    whenever ``budgets`` is passed explicitly.

    Parameters
    ----------
    netlist:
        The circuit under verification.
    specification:
        Either a ready :class:`~repro.modeling.spec.Specification`, or
        ``"multiplier"`` / ``"adder"`` to derive the standard word-level
        specification from the circuit's ``a``/``b``/``s`` words.
    method:
        One of :data:`METHODS`.
    budgets:
        A :class:`~repro.api.request.Budgets` bundle; the monomial/time
        budgets are blow-up guards whose violation raises
        :class:`~repro.errors.BlowUpError` (reported as a time-out in the
        benchmark tables), ``vanishing_cache_limit`` caps the
        vanishing-rule verdict memo (whole-cache reset on overflow), and
        ``counterexample_tries`` bounds the counterexample search.
    xor_and_only:
        Restrict the vanishing rule to the paper's literal XOR-AND pattern
        instead of the implied-literal generalisation.
    find_counterexample:
        On a non-zero remainder, search for a primary-input assignment that
        exhibits the mismatch.
    certificate:
        Capture the reduction journal (model, substitution schedule,
        proven vanishing masks, remainder) on
        :attr:`~repro.verification.result.VerificationResult.certificate_data`
        so :func:`repro.certify.build_certificate` can emit a checkable
        proof certificate.  Budget trips capture nothing.
    model:
        An :class:`~repro.modeling.model.AlgebraicModel` already extracted
        from ``netlist``; pass it to avoid rebuilding the model when the
        caller needed one to derive the specification (variable numbering is
        deterministic, so model and specification always agree).
    """
    # Validate against the live registry, not the import-time METHODS
    # snapshot, so backends registered later are honoured here too.
    if method not in algebraic_backend_names():
        raise VerificationError(
            f"unknown method {method!r}; "
            f"expected {algebraic_backend_names()}")
    legacy = {name: value for name, value in
              zip(_LEGACY_BUDGET_KWARGS,
                  (monomial_budget, time_budget_s, vanishing_cache_limit,
                   counterexample_tries))
              if value is not _UNSET}
    if legacy:
        warnings.warn(
            f"passing budget keyword arguments ({', '.join(sorted(legacy))}) "
            "to verify() is deprecated; pass budgets=Budgets(...) or drive "
            "the pipeline through repro.api.VerificationRequest",
            DeprecationWarning, stacklevel=2)
    if budgets is None:
        from repro.api.request import Budgets
        # Budgets field defaults equal the historical kwarg defaults, so
        # unset kwargs fall through to the same values as before.
        budgets = Budgets(**legacy)
    monomial_budget = budgets.monomial_budget
    time_budget_s = budgets.time_budget_s
    vanishing_cache_limit = budgets.vanishing_cache_limit
    counterexample_tries = budgets.counterexample_tries
    start_total = time.perf_counter()
    deadline = start_total + time_budget_s if time_budget_s is not None else None

    if model is None:
        model = AlgebraicModel.from_netlist(netlist)
    spec = _resolve_specification(model, specification)

    # Step 2: rewriting.
    start_rewrite = time.perf_counter()
    rewritten, vanishing = _rewrite(model, method, xor_and_only,
                                    monomial_budget, deadline,
                                    vanishing_cache_limit,
                                    record_vanishing=certificate)
    rewrite_time = time.perf_counter() - start_rewrite

    # Step 3: Gröbner-basis reduction.
    options = ReductionOptions(
        monomial_budget=monomial_budget,
        time_budget_s=(deadline - time.perf_counter()) if deadline else None,
        coefficient_modulus=spec.modulus)
    trace = ReductionTrace()
    start_reduce = time.perf_counter()
    remainder = groebner_basis_reduction(spec.polynomial, model,
                                         rewritten.tails, options, trace)
    remainder = spec.apply_modulus(remainder)
    reduction_time = time.perf_counter() - start_reduce

    verified = remainder.is_zero
    counterexample = None
    if not verified and find_counterexample:
        counterexample = _find_counterexample(model, remainder, spec.modulus,
                                              counterexample_tries, seed)

    result = VerificationResult(
        verified=verified,
        method=method,
        circuit=netlist.name,
        specification=spec.description,
        remainder=remainder,
        remainder_text="" if verified else model.ring.render(remainder),
        counterexample=counterexample,
        cancelled_vanishing_monomials=rewritten.cancelled_vanishing_monomials,
        model_statistics=ModelStatistics.from_tails(rewritten.tails),
        rewrite_statistics=rewritten.statistics,
        reduction_trace=trace,
        rewrite_time_s=rewrite_time,
        reduction_time_s=reduction_time,
        total_time_s=time.perf_counter() - start_total)
    if certificate:
        # Cache resets may re-prove a mask: dedup before recording.  The
        # schedule is recomputed from the rewritten tails — it is a pure
        # function of (model, tails, scheme), identical to the one the
        # reduction consumed.
        proven = sorted(set(vanishing.proven_masks)) if vanishing else []
        result.certificate_data = {
            "netlist": netlist,
            "model": model,
            "tails": rewritten.tails,
            "spec": spec,
            "schedule": substitution_order(model, rewritten.tails,
                                           options.order_scheme),
            "vanishing_masks": proven,
            "remainder": remainder,
            "verified": verified,
            "method": method,
        }
    return result


def verify_multiplier(netlist: Netlist, method: str = "mt-lr",
                      use_modulus: bool = True, **kwargs) -> VerificationResult:
    """Verify a multiplier netlist against ``S = A * B (mod 2^|S|)``."""
    model = AlgebraicModel.from_netlist(netlist)
    spec = multiplier_specification(model, use_modulus=use_modulus)
    return verify(netlist, spec, method, model=model, **kwargs)


def verify_adder(netlist: Netlist, method: str = "mt-lr",
                 carry_in: str | None = None, **kwargs) -> VerificationResult:
    """Verify an adder netlist against ``S = A + B (+ cin)``."""
    model = AlgebraicModel.from_netlist(netlist)
    spec = adder_specification(model, carry_in=carry_in)
    return verify(netlist, spec, method, model=model, **kwargs)


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------

def _resolve_specification(model: AlgebraicModel,
                           specification: Specification | str) -> Specification:
    if isinstance(specification, Specification):
        # Re-derive against this model's ring?  Specifications are built from
        # a model of the same netlist, whose variable indices coincide
        # because the numbering is deterministic.
        return specification
    if specification == "multiplier":
        return multiplier_specification(model)
    if specification == "adder":
        return adder_specification(model)
    raise VerificationError(
        f"unknown specification {specification!r}; expected 'multiplier', "
        "'adder' or a Specification instance")


def _rewrite(model: AlgebraicModel, method: str, xor_and_only: bool,
             monomial_budget: int | None, deadline: float | None,
             vanishing_cache_limit: int | None = None,
             record_vanishing: bool = False,
             ) -> tuple[RewrittenModel, VanishingRules | None]:
    if method == "mt-naive":
        return no_rewriting(model), None
    if method == "mt-fo":
        return fanout_rewriting(model, monomial_budget=monomial_budget,
                                deadline=deadline), None
    if method not in ("mt-xor", "mt-lr"):
        # A plug-in algebraic backend passed registry validation but has no
        # rewriting scheme wired here — fail loudly instead of silently
        # running it as mt-xor.
        raise VerificationError(
            f"algebraic backend {method!r} has no rewriting scheme in this "
            "engine; only mt-naive/mt-fo/mt-xor/mt-lr are dispatched")
    if vanishing_cache_limit is not None:
        vanishing = VanishingRules(model, xor_and_only=xor_and_only,
                                   cache_limit=vanishing_cache_limit,
                                   record_proven=record_vanishing)
    else:
        vanishing = VanishingRules(model, xor_and_only=xor_and_only,
                                   record_proven=record_vanishing)
    return logic_reduction_rewriting(
        model, vanishing, apply_common=(method == "mt-lr"),
        monomial_budget=monomial_budget, deadline=deadline), vanishing


def _find_counterexample(model: AlgebraicModel, remainder: Polynomial,
                         modulus: int | None, tries: int,
                         seed: int) -> dict[str, int] | None:
    """Search for a primary-input assignment on which the remainder is non-zero."""
    support = sorted(remainder.support())
    if not support:
        # Constant non-zero remainder: any assignment is a counterexample.
        return {model.ring.name(var): 0 for var in model.input_vars}

    def is_witness(assignment: dict[int, int]) -> bool:
        value = remainder.evaluate(assignment)
        if modulus is not None:
            value %= modulus
        return value != 0

    rng = random.Random(seed)
    if len(support) <= 16:
        candidates = itertools.product((0, 1), repeat=len(support))
    else:
        candidates = (tuple(rng.randint(0, 1) for _ in support)
                      for _ in range(tries))
    for bits in candidates:
        assignment = dict(zip(support, bits))
        if is_witness(assignment):
            full = {model.ring.name(var): 0 for var in model.input_vars}
            full.update({model.ring.name(var): value
                         for var, value in assignment.items()})
            return full
    return None
