"""Result and statistics containers of the verification engines."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.polynomial import Polynomial
from repro.verification.reduction import ReductionTrace
from repro.verification.rewriting import RewriteStatistics


@dataclass
class ModelStatistics:
    """Size statistics of a (rewritten) polynomial model — the columns of Table III.

    Attributes
    ----------
    num_polynomials:
        ``#P`` — number of polynomials in the model.
    num_monomials:
        ``#M`` — total number of monomials over all polynomials.
    max_polynomial_terms:
        ``#MP`` — size of the largest polynomial (in monomials).
    max_monomial_variables:
        ``#VM`` — size of the largest monomial (in variables).
    """

    num_polynomials: int = 0
    num_monomials: int = 0
    max_polynomial_terms: int = 0
    max_monomial_variables: int = 0

    @classmethod
    def from_tails(cls, tails: dict[int, Polynomial]) -> "ModelStatistics":
        """Compute the statistics of a tail map (each poly is ``-x + tail``)."""
        stats = cls()
        stats.num_polynomials = len(tails)
        num_monomials = 0
        max_terms = 0
        max_degree = 0
        for tail in tails.values():
            terms = tail.num_terms + 1          # +1 for the leading term
            num_monomials += terms
            if terms > max_terms:
                max_terms = terms
            degree = tail.max_monomial_degree()
            if degree > max_degree:
                max_degree = degree
        stats.num_monomials = num_monomials
        stats.max_polynomial_terms = max_terms
        stats.max_monomial_variables = max_degree
        return stats


@dataclass
class VerificationResult:
    """Outcome of one membership-testing run."""

    #: ``True`` iff the remainder reduced to zero (circuit matches the spec).
    verified: bool
    #: Verification method (``mt-lr``, ``mt-fo``, ``mt-naive``).
    method: str
    #: Name of the circuit that was verified.
    circuit: str
    #: Human-readable description of the specification.
    specification: str
    #: Final remainder of the Gröbner-basis reduction (zero iff verified).
    remainder: Polynomial = field(default_factory=Polynomial.zero)
    #: Remainder rendered with signal names (only populated on failure).
    remainder_text: str = ""
    #: A primary-input assignment exposing the bug, if one was found.
    counterexample: dict[str, int] | None = None
    #: Number of vanishing monomials cancelled by the XOR-AND rule (``#CVM``).
    cancelled_vanishing_monomials: int = 0
    #: Statistics of the rewritten model (Table III columns).
    model_statistics: ModelStatistics = field(default_factory=ModelStatistics)
    #: Per-pass rewriting statistics.
    rewrite_statistics: list[RewriteStatistics] = field(default_factory=list)
    #: Trace of the Gröbner-basis reduction.
    reduction_trace: ReductionTrace = field(default_factory=ReductionTrace)
    #: Wall-clock seconds spent in rewriting (Step 2).
    rewrite_time_s: float = 0.0
    #: Wall-clock seconds spent in GB reduction (Step 3).
    reduction_time_s: float = 0.0
    #: Total wall-clock seconds including modelling.
    total_time_s: float = 0.0
    #: Raw reduction journal captured by ``verify(..., certificate=True)``;
    #: feed it to :func:`repro.certify.build_certificate`.  Excluded from
    #: equality so certificate runs compare equal to plain runs.
    certificate_data: dict | None = field(default=None, repr=False, compare=False)

    def summary(self) -> str:
        """One-line human-readable summary."""
        verdict = "VERIFIED" if self.verified else "MISMATCH"
        return (f"[{self.method}] {self.circuit}: {verdict} "
                f"(total {self.total_time_s:.2f}s, rewrite {self.rewrite_time_s:.2f}s, "
                f"reduction {self.reduction_time_s:.2f}s, "
                f"#CVM={self.cancelled_vanishing_monomials})")
