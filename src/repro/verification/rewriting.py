"""Gröbner-basis rewriting (Step 2 of the MT algorithm, Algorithms 2 and 3).

Rewriting substitutes "uninteresting" variables out of the circuit model so
that the subsequent Gröbner-basis reduction only has to deal with variables
that either carry shared sub-terms (enabling early cancellation) or belong
to the XOR skeleton of the circuit (enabling the vanishing rule):

* **fanout rewriting** (MT-FO, Farahmandi & Alizadeh): keep variables with
  more than one reader plus primary inputs/outputs;
* **XOR rewriting** (MT-LR step 1): keep inputs and outputs of XOR gates
  plus primary inputs/outputs, applying the XOR-AND vanishing rule after
  every substitution;
* **common rewriting** (MT-LR step 2): keep variables used by more than one
  polynomial of the already-rewritten model.

All three share the same generic :func:`gb_rewrite` procedure (Algorithm 2),
which runs on the occurrence-indexed
:class:`~repro.algebra.substitution.SubstitutionEngine` — the same
incremental kernel that executes the Gröbner-basis reduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algebra.monomial import bits_of
from repro.algebra.polynomial import Polynomial
from repro.algebra.substitution import SubstitutionEngine
from repro.errors import BlowUpError
from repro.modeling.model import AlgebraicModel
from repro.verification.vanishing import VanishingRules


@dataclass
class RewriteStatistics:
    """Bookkeeping of one rewriting pass.

    The counters below ``peak_tail_terms`` are reported by the
    :class:`~repro.algebra.substitution.SubstitutionEngine` that executes
    the pass and are surfaced by ``repro-verify verify --stats``.
    """

    scheme: str = ""
    kept_variables: int = 0
    substituted_variables: int = 0
    cancelled_vanishing_monomials: int = 0
    elapsed_s: float = 0.0
    peak_tail_terms: int = 0
    #: Single-variable substitution steps executed across all tails.
    substitution_steps: int = 0
    #: Terms that contained the substituted variable, summed over all steps.
    affected_terms: int = 0
    #: Substitutions rolled back by the growth guard (variable kept instead).
    rejected_substitutions: int = 0
    #: ``substitute_batch`` calls issued and steps executed inside them.
    batches: int = 0
    batched_steps: int = 0
    #: Vanishing-rule cache counters of the pass that owns the oracle
    #: (mask→verdict memo hits/misses, final size, cap-forced resets, and
    #: verdicts answered by the minimal-witness monotonicity shortcut).
    vanishing_cache_hits: int = 0
    vanishing_cache_misses: int = 0
    vanishing_cache_size: int = 0
    vanishing_cache_resets: int = 0
    vanishing_witness_hits: int = 0


@dataclass
class RewrittenModel:
    """The result of rewriting: the reduced polynomial set plus statistics."""

    model: AlgebraicModel
    tails: dict[int, Polynomial]
    keep_variables: set[int]
    statistics: list[RewriteStatistics] = field(default_factory=list)

    @property
    def cancelled_vanishing_monomials(self) -> int:
        """Total ``#CVM`` over all rewriting passes."""
        return sum(s.cancelled_vanishing_monomials for s in self.statistics)


# ---------------------------------------------------------------------------
# Variable selection schemes
# ---------------------------------------------------------------------------

def fanout_rewriting_variables(model: AlgebraicModel) -> set[int]:
    """Variables kept by fanout rewriting: fanout > 1, primary inputs, outputs."""
    keep = model.fanout_variables()
    keep.update(model.input_vars)
    keep.update(model.output_vars)
    return keep


def xor_rewriting_variables(model: AlgebraicModel,
                            include_xnor: bool = True) -> set[int]:
    """Variables kept by XOR rewriting: XOR inputs/outputs, primary inputs, outputs."""
    keep = model.xor_variables(include_xnor=include_xnor)
    keep.update(model.input_vars)
    keep.update(model.output_vars)
    return keep


def common_rewriting_variables(tails: dict[int, Polynomial],
                               model: AlgebraicModel) -> set[int]:
    """Variables kept by common rewriting: used in more than one polynomial.

    Counts, over the current (already rewritten) polynomial set, how many
    tails reference each variable; variables referenced at least twice are
    shared and therefore enable cancellations during GB reduction.  Primary
    inputs and outputs are always kept.
    """
    usage: dict[int, int] = {}
    usage_get = usage.get
    for tail in tails.values():
        for var in bits_of(tail.support_mask()):
            usage[var] = usage_get(var, 0) + 1
    keep = {var for var, count in usage.items() if count >= 2}
    keep.update(model.input_vars)
    keep.update(model.output_vars)
    return keep


# ---------------------------------------------------------------------------
# Algorithm 2: generic Gröbner-basis rewriting
# ---------------------------------------------------------------------------

def gb_rewrite(tails: dict[int, Polynomial], keep_variables: set[int],
               model: AlgebraicModel,
               vanishing: VanishingRules | None = None,
               scheme: str = "",
               monomial_budget: int | None = None,
               deadline: float | None = None,
               growth_limit: int | None = None) -> tuple[dict[int, Polynomial],
                                                         RewriteStatistics]:
    """Rewrite the model so every tail only references ``keep_variables``.

    Polynomials are processed in ascending order of their leading variables
    (the "reverse order of leading monomials" of Algorithm 2), so a
    substituted variable's polynomial has itself already been rewritten.
    Within one polynomial, the variable whose defining tail has the fewest
    terms is substituted first, matching the paper's substitution ordering.
    If ``vanishing`` is given, vanishing monomials are removed after every
    substitution (and once up-front).

    ``growth_limit`` (used by common rewriting) is an anti-blow-up guard:
    when inlining a variable would grow the polynomial being rewritten beyond
    ``max(growth_limit, 4x its current size)``, the variable is kept in the
    model instead (added to ``keep_variables``, which is updated in place).
    Rewriting only exists to make the subsequent reduction cheaper, so
    keeping a variable is always sound; without the guard, chains of
    single-use XOR cells (e.g. the sign-extension columns of Booth
    multipliers) would be expanded into exponentially large polynomials.
    """
    start = time.perf_counter()
    stats = RewriteStatistics(scheme=scheme)
    removed_before = vanishing.removed_count if vanishing else 0
    rewritten: dict[int, Polynomial] = dict(tails)

    # One occurrence-indexed substitution engine is reused for every tail of
    # the pass; only variables that are substitution candidates (leading
    # variables not selected by the keep set) are indexed, and the keep mask
    # grows in place as the growth guard rejects inlinings.
    candidate_mask = 0
    for var in rewritten:
        candidate_mask |= 1 << var
    for var in keep_variables:
        candidate_mask &= ~(1 << var)
    engine = SubstitutionEngine(vanishing=vanishing)

    remove_vanishing = vanishing.remove_vanishing if vanishing else None
    vanishing_relevant = (getattr(vanishing, "relevant_mask", -1)
                          if vanishing is not None else 0)
    for lead_var in sorted(rewritten):
        poly = rewritten[lead_var]
        if not poly.support_mask() & candidate_mask:
            # No substitution candidate occurs in this tail: only the
            # up-front vanishing sweep applies (skipped wholesale when no
            # tail variable can contribute a contradiction), with no
            # term-map copy and no index build.  This is the common case —
            # most gate tails only reference kept variables.
            if (remove_vanishing is not None
                    and poly.support_mask() & vanishing_relevant):
                rewritten[lead_var] = remove_vanishing(poly)
            continue
        # The working tail lives inside the engine across all of its
        # substitution steps; it is wrapped back into a Polynomial only once,
        # when the rewriting of this leading variable is finished.
        engine.reset(poly.term_view(), candidate_mask,
                     support_mask=poly.support_mask())
        engine.prune_vanishing()
        while True:
            # The candidate superset needs no term scan; a stale bit only
            # adds a no-op batch item, and retirement drains the mask, so
            # the loop always terminates.
            outside = [var for var in bits_of(engine.candidate_superset())
                       if var not in keep_variables]
            if not outside:
                break
            # One batch inlines every substitution candidate of this tail,
            # smallest defining tail first (ties by variable index — the
            # order the old pick-the-minimum loop realised).  Replacement
            # tails only reference finished (kept) variables, so the batch
            # cannot surface new candidates; the loop re-checks anyway and
            # also re-collects after a growth-guard rejection.  Targets are
            # always smaller than ``lead_var`` (tails only reference
            # earlier variables), so their rewriting is complete and
            # ``rewritten[target]`` is a finished Polynomial.
            outside.sort(key=lambda var: (rewritten[var].num_terms, var))
            items = [(var, rewritten[var].term_view()) for var in outside]
            results, tripped = engine.substitute_batch(
                items, growth_limit=growth_limit, retire=True,
                term_limit=monomial_budget, deadline=deadline)
            for (target, _), (affected, size) in zip(items, results):
                if affected < 0:
                    # Inlining this variable would blow the polynomial up;
                    # keep it as a model variable instead.
                    keep_variables.add(target)
                    candidate_mask &= ~(1 << target)
                    engine.unindex(target)
                elif affected and size > stats.peak_tail_terms:
                    stats.peak_tail_terms = size
            if tripped == "terms":
                raise BlowUpError(
                    f"{scheme or 'rewriting'} exceeded the monomial budget "
                    f"({len(engine)} > {monomial_budget}) while rewriting "
                    f"{model.ring.name(lead_var)}",
                    monomials=len(engine))
            if tripped == "deadline":
                raise BlowUpError(
                    f"{scheme or 'rewriting'} exceeded the time budget",
                    elapsed_s=time.perf_counter() - start)
        rewritten[lead_var] = Polynomial._raw(engine.terms)

    # UpdateModel: drop polynomials whose leading variable was substituted
    # away (not kept and not a primary output).
    output_vars = set(model.output_vars)
    kept = {var: tail for var, tail in rewritten.items()
            if var in keep_variables or var in output_vars}

    stats.kept_variables = len(kept)
    stats.substituted_variables = len(rewritten) - len(kept)
    stats.cancelled_vanishing_monomials = (
        (vanishing.removed_count - removed_before) if vanishing else 0)
    stats.substitution_steps = engine.substitutions
    stats.affected_terms = engine.affected_terms
    stats.rejected_substitutions = engine.rejected_substitutions
    stats.batches = engine.batches
    stats.batched_steps = engine.batch_steps
    if vanishing is not None:
        stats.vanishing_cache_hits = getattr(vanishing, "cache_hits", 0)
        stats.vanishing_cache_misses = getattr(vanishing, "cache_misses", 0)
        stats.vanishing_cache_size = len(getattr(vanishing, "cache", ()))
        stats.vanishing_cache_resets = getattr(vanishing, "cache_resets", 0)
        stats.vanishing_witness_hits = getattr(vanishing, "witness_hits", 0)
    stats.elapsed_s = time.perf_counter() - start
    return kept, stats


# ---------------------------------------------------------------------------
# Algorithm 3: logic reduction rewriting (XOR rewriting, then common rewriting)
# ---------------------------------------------------------------------------

def logic_reduction_rewriting(model: AlgebraicModel,
                              vanishing: VanishingRules | None = None,
                              apply_common: bool = True,
                              monomial_budget: int | None = None,
                              deadline: float | None = None) -> RewrittenModel:
    """The paper's rewriting scheme: XOR rewriting followed by common rewriting."""
    if vanishing is None:
        vanishing = VanishingRules(model)
    statistics: list[RewriteStatistics] = []

    xor_keep = xor_rewriting_variables(model)
    tails, stats = gb_rewrite(model.tails, xor_keep, model, vanishing,
                              scheme="xor-rewriting",
                              monomial_budget=monomial_budget,
                              deadline=deadline)
    statistics.append(stats)

    keep = xor_keep
    if apply_common:
        keep = common_rewriting_variables(tails, model)
        # Only variables that still own a polynomial can stay leading variables.
        keep &= set(tails) | set(model.input_vars) | set(model.output_vars)
        tails, stats = gb_rewrite(tails, keep, model, vanishing=None,
                                  scheme="common-rewriting",
                                  monomial_budget=monomial_budget,
                                  deadline=deadline,
                                  growth_limit=64)
        statistics.append(stats)

    return RewrittenModel(model=model, tails=tails, keep_variables=keep,
                          statistics=statistics)


def fanout_rewriting(model: AlgebraicModel,
                     monomial_budget: int | None = None,
                     deadline: float | None = None) -> RewrittenModel:
    """The baseline rewriting of MT-FO: keep fanout variables only."""
    keep = fanout_rewriting_variables(model)
    tails, stats = gb_rewrite(model.tails, keep, model, vanishing=None,
                              scheme="fanout-rewriting",
                              monomial_budget=monomial_budget,
                              deadline=deadline)
    return RewrittenModel(model=model, tails=tails, keep_variables=keep,
                          statistics=[stats])


def no_rewriting(model: AlgebraicModel) -> RewrittenModel:
    """Keep the raw gate-level model (the MT-Naive baseline)."""
    keep = set(model.tails) | set(model.input_vars)
    return RewrittenModel(model=model, tails=dict(model.tails),
                          keep_variables=keep, statistics=[])
