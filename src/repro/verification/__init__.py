"""Verification engines: membership testing with rewriting and logic reduction.

The paper's pipeline, end to end: :func:`~repro.verification.engine.verify`
models the circuit (Step 1), rewrites the model with the method-specific
variable-keep rule (Step 2, :mod:`~repro.verification.rewriting` —
fanout rewriting for MT-FO, XOR + common rewriting with the XOR-AND
vanishing rule of :class:`~repro.verification.vanishing.VanishingRules`
for MT-LR), and divides the specification by the rewritten basis
(Step 3, :func:`~repro.verification.reduction.groebner_basis_reduction`).
The circuit is correct iff the remainder is zero; a non-zero remainder
yields a :class:`~repro.verification.result.VerificationResult` carrying
the rendered remainder and, when requested, a simulation-validated
counterexample.  All three steps execute on the shared occurrence-indexed
:class:`~repro.algebra.substitution.SubstitutionEngine`; budget trips
raise :class:`~repro.errors.BlowUpError`, which the layers above report
as ``TO`` rows / ``verdict="budget"`` reports.  Budgets arrive as a
:class:`~repro.api.request.Budgets` bundle via the service layer — the
per-knob keyword arguments of :func:`~repro.verification.engine.verify`
are a compatibility shim.
"""

from repro.verification.engine import verify, verify_multiplier, verify_adder
from repro.verification.result import VerificationResult, ModelStatistics
from repro.verification.reduction import groebner_basis_reduction, ReductionOptions
from repro.verification.rewriting import (
    RewriteStatistics,
    common_rewriting_variables,
    fanout_rewriting_variables,
    gb_rewrite,
    xor_rewriting_variables,
)
from repro.verification.vanishing import VanishingRules

__all__ = [
    "ModelStatistics",
    "ReductionOptions",
    "RewriteStatistics",
    "VanishingRules",
    "VerificationResult",
    "common_rewriting_variables",
    "fanout_rewriting_variables",
    "gb_rewrite",
    "groebner_basis_reduction",
    "verify",
    "verify_adder",
    "verify_multiplier",
    "xor_rewriting_variables",
]
