"""Verification engines: membership testing with rewriting and logic reduction."""

from repro.verification.engine import verify, verify_multiplier, verify_adder
from repro.verification.result import VerificationResult, ModelStatistics
from repro.verification.reduction import groebner_basis_reduction, ReductionOptions
from repro.verification.rewriting import (
    RewriteStatistics,
    common_rewriting_variables,
    fanout_rewriting_variables,
    gb_rewrite,
    xor_rewriting_variables,
)
from repro.verification.vanishing import VanishingRules

__all__ = [
    "ModelStatistics",
    "ReductionOptions",
    "RewriteStatistics",
    "VanishingRules",
    "VerificationResult",
    "common_rewriting_variables",
    "fanout_rewriting_variables",
    "gb_rewrite",
    "groebner_basis_reduction",
    "verify",
    "verify_adder",
    "verify_multiplier",
    "xor_rewriting_variables",
]
