"""The XOR-AND vanishing rule and its structural generalisation.

A *vanishing monomial* always evaluates to zero on the circuit.  The paper's
core observation is the XOR-AND rule: a monomial containing both
``X = a xor b`` and ``D = a and b`` vanishes because ``(a xor b)(a and b) = 0``.

During rewriting the same contradiction can surface through slightly
different variable sets (``X*a*b`` once ``D`` has been inlined, or the
``one/two`` select signals of a Booth cell, where ``two = x2 and (not one)``).
To catch these soundly this module derives, once per model, a set of
*implied literals* for every variable:

* ``must1(v)``  — literals that are forced when ``v = 1``;
* ``must0(v)``  — literals that are forced when ``v = 0``.

For a monomial ``M`` (a conjunction of its variables) the union of
``must1(v)`` over ``v in M`` must be consistent; if it contains both
polarities of some signal, or if it violates the XOR/XNOR constraint of a
gate whose output is in ``M``, the monomial is identically zero and can be
removed.  The paper's rule is the special case "XOR output + AND output over
the same input pair".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.monomial import Monomial, bits_of, iter_bits, mask_of
from repro.algebra.polynomial import Polynomial
from repro.algebra.substitution import SubstitutionEngine
from repro.circuit.gates import GateType
from repro.modeling.model import AlgebraicModel

#: A literal is ``(variable, polarity)`` with polarity ``True`` for positive.
Literal = tuple[int, bool]


@dataclass
class VanishingRules:
    """Structural vanishing-monomial detector for one circuit model.

    Parameters
    ----------
    model:
        The algebraic model whose gate structure is used.
    xor_and_only:
        Restrict detection to the paper's literal XOR-AND rule (an XOR output
        and an AND output over the same two inputs).  The default ``False``
        enables the sound implied-literal generalisation described in
        DESIGN.md §4, which is required to catch the Booth-cell vanishing
        monomials once their AND gates have been inlined.
    max_implied_literals:
        Cap on the size of the implied-literal sets (memory guard for very
        deep AND/OR chains); truncation only weakens the rule, never makes it
        unsound.
    """

    model: AlgebraicModel
    xor_and_only: bool = False
    max_implied_literals: int = 256
    removed_count: int = 0
    _must1: dict[int, frozenset[Literal]] = field(default_factory=dict, repr=False)
    _must0: dict[int, frozenset[Literal]] = field(default_factory=dict, repr=False)
    _xor_support: dict[int, tuple[int, ...]] = field(default_factory=dict, repr=False)
    _xnor_support: dict[int, tuple[int, ...]] = field(default_factory=dict, repr=False)
    _and_support: dict[int, frozenset[int]] = field(default_factory=dict, repr=False)
    #: Public mask→verdict memo; the substitution engine probes it
    #: inline when sweeping freshly loaded term maps.
    cache: dict[int, bool] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._build_structural_tables()

    # -- construction of the structural tables ---------------------------------

    def _build_structural_tables(self) -> None:
        records = self.model.records
        for var, record in records.items():
            gate = record.gate_type
            if gate is GateType.XOR and len(record.inputs) == 2:
                self._xor_support[var] = record.inputs
            elif gate is GateType.XNOR and len(record.inputs) == 2:
                self._xnor_support[var] = record.inputs
            if gate is GateType.AND and len(record.inputs) == 2:
                self._and_support[var] = frozenset(record.inputs)
        # The implied-literal sets (``must1``/``must0``) are resolved lazily
        # by :meth:`_must` — only variables that actually appear in tested
        # monomials pay for their (transitive) table construction.

    def _must_dependencies(self, var: int, value: bool) -> list[tuple[int, bool]]:
        """Child tables :meth:`_compute_must` reads for ``(var, value)``."""
        record = self.model.records.get(var)
        if record is None or record.gate_type is None or self.xor_and_only:
            return []
        gate = record.gate_type
        if value:
            if gate in (GateType.AND, GateType.BUF):
                return [(child, True) for child in record.inputs]
            if gate is GateType.NOT:
                return [(record.inputs[0], False)]
            if gate is GateType.NOR:
                return [(child, False) for child in record.inputs]
        else:
            if gate in (GateType.OR, GateType.BUF):
                return [(child, False) for child in record.inputs]
            if gate is GateType.NOT:
                return [(record.inputs[0], True)]
            if gate is GateType.NAND:
                return [(child, True) for child in record.inputs]
        return []

    def _must(self, var: int, value: bool) -> frozenset[Literal]:
        """Implied literals of ``var = value``, resolving dependencies lazily.

        An explicit work stack (instead of recursion) keeps deep AND/OR
        chains of wide adders within any recursion limit.
        """
        table = self._must1 if value else self._must0
        cached = table.get(var)
        if cached is not None:
            return cached
        if var not in self.model.records:
            return frozenset({(var, value)})
        stack: list[tuple[int, bool]] = [(var, value)]
        while stack:
            current, current_value = stack[-1]
            current_table = self._must1 if current_value else self._must0
            if current in current_table:
                stack.pop()
                continue
            missing = [
                (child, child_value)
                for child, child_value in self._must_dependencies(
                    current, current_value)
                if child != current and child not in (
                    self._must1 if child_value else self._must0)
                and child in self.model.records]
            if missing:
                stack.extend(missing)
                continue
            current_table[current] = self._compute_must(current, current_value)
            stack.pop()
        return table[var]

    def _compute_must(self, var: int, value: bool) -> frozenset[Literal]:
        record = self.model.records[var]
        gate = record.gate_type
        literals: set[Literal] = {(var, value)}
        if gate is None or self.xor_and_only:
            return frozenset(literals)

        def implied_when_true(child: int) -> frozenset[Literal]:
            return self._must1.get(child, frozenset({(child, True)}))

        def implied_when_false(child: int) -> frozenset[Literal]:
            return self._must0.get(child, frozenset({(child, False)}))

        if value:
            if gate in (GateType.AND, GateType.BUF):
                for child in record.inputs:
                    literals |= implied_when_true(child)
            elif gate is GateType.NOT:
                literals |= implied_when_false(record.inputs[0])
            elif gate is GateType.NOR:
                for child in record.inputs:
                    literals |= implied_when_false(child)
            elif gate is GateType.CONST0:
                # A constant-0 output can never be 1: mark as self-contradictory.
                literals.add((var, False))
        else:
            if gate in (GateType.OR, GateType.BUF):
                for child in record.inputs:
                    literals |= implied_when_false(child)
            elif gate is GateType.NOT:
                literals |= implied_when_true(record.inputs[0])
            elif gate is GateType.NAND:
                for child in record.inputs:
                    literals |= implied_when_true(child)
            elif gate is GateType.CONST1:
                literals.add((var, True))
        if len(literals) > self.max_implied_literals:
            literals = {(var, value)}
        return frozenset(literals)

    # -- the vanishing test ------------------------------------------------------

    def is_vanishing(self, monomial: Monomial) -> bool:
        """Return ``True`` if the monomial always evaluates to zero."""
        return self.is_vanishing_mask(mask_of(monomial))

    def is_vanishing_mask(self, mask: int) -> bool:
        """Mask-level :meth:`is_vanishing` (the rewriting fast path)."""
        if mask.bit_count() < 2:
            return False
        cached = self.cache.get(mask)
        if cached is not None:
            return cached
        result = (self._xor_and_rule(mask) if self.xor_and_only
                  else self._implied_literal_rule(mask))
        self.cache[mask] = result
        return result

    def _xor_and_rule(self, mask: int) -> bool:
        """The literal rule from the paper: XOR and AND over the same pair."""
        xor_pairs = [frozenset(self._xor_support[v]) for v in iter_bits(mask)
                     if v in self._xor_support]
        if not xor_pairs:
            return False
        and_pairs = {self._and_support[v] for v in iter_bits(mask)
                     if v in self._and_support}
        return any(pair in and_pairs for pair in xor_pairs)

    def _implied_literal_rule(self, mask: int) -> bool:
        """Sound generalisation via implied-literal consistency."""
        positive: set[int] = set()
        negative: set[int] = set()
        must1 = self._must1
        for var in bits_of(mask):
            literals = must1.get(var)
            if literals is None:
                literals = self._must(var, True)
            for lit_var, polarity in literals:
                if polarity:
                    if lit_var in negative:
                        return True
                    positive.add(lit_var)
                else:
                    if lit_var in positive:
                        return True
                    negative.add(lit_var)
        # XOR/XNOR consistency of gates whose output is implied positive.
        for var in positive:
            support = self._xor_support.get(var)
            if support is not None:
                a, b = support
                if (a in positive and b in positive) or (a in negative and b in negative):
                    return True
            support = self._xnor_support.get(var)
            if support is not None:
                a, b = support
                if (a in positive and b in negative) or (a in negative and b in positive):
                    return True
        # XOR gates implied *negative* force equal inputs; contradiction if
        # the monomial also forces the inputs to differ.
        for var in negative:
            support = self._xor_support.get(var)
            if support is not None:
                a, b = support
                if (a in positive and b in negative) or (a in negative and b in positive):
                    return True
            support = self._xnor_support.get(var)
            if support is not None:
                a, b = support
                if (a in positive and b in positive) or (a in negative and b in negative):
                    return True
        return False

    # -- polynomial filtering ------------------------------------------------------

    def remove_vanishing(self, polynomial):
        """Remove vanishing monomials from a polynomial, counting removals.

        Filtering is delegated to the
        :class:`~repro.algebra.substitution.SubstitutionEngine` (the one
        shared term-map kernel); the removals accumulate in
        :attr:`removed_count` (the ``#CVM`` statistic of Table III).  Inside
        the rewriting loop the engine additionally keeps its working tails
        vanishing-free incrementally, testing only newly created terms.
        """
        doomed = SubstitutionEngine.find_vanishing(polynomial.masks(), self)
        if not doomed:
            return polynomial
        terms = dict(polynomial.term_masks())
        for mask in doomed:
            del terms[mask]
        self.removed_count += len(doomed)
        return Polynomial._raw(terms)
