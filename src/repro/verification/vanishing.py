"""The XOR-AND vanishing rule and its structural generalisation.

A *vanishing monomial* always evaluates to zero on the circuit.  The paper's
core observation is the XOR-AND rule: a monomial containing both
``X = a xor b`` and ``D = a and b`` vanishes because ``(a xor b)(a and b) = 0``.

During rewriting the same contradiction can surface through slightly
different variable sets (``X*a*b`` once ``D`` has been inlined, or the
``one/two`` select signals of a Booth cell, where ``two = x2 and (not one)``).
To catch these soundly this module derives, once per model, a set of
*implied literals* for every variable:

* ``must1(v)``  — literals that are forced when ``v = 1``;
* ``must0(v)``  — literals that are forced when ``v = 0``.

For a monomial ``M`` (a conjunction of its variables) the union of
``must1(v)`` over ``v in M`` must be consistent; if it contains both
polarities of some signal, or if it violates the XOR/XNOR constraint of a
gate whose output is in ``M``, the monomial is identically zero and can be
removed.  The paper's rule is the special case "XOR output + AND output over
the same input pair".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.monomial import Monomial
from repro.circuit.gates import GateType
from repro.modeling.model import AlgebraicModel

#: A literal is ``(variable, polarity)`` with polarity ``True`` for positive.
Literal = tuple[int, bool]


@dataclass
class VanishingRules:
    """Structural vanishing-monomial detector for one circuit model.

    Parameters
    ----------
    model:
        The algebraic model whose gate structure is used.
    xor_and_only:
        Restrict detection to the paper's literal XOR-AND rule (an XOR output
        and an AND output over the same two inputs).  The default ``False``
        enables the sound implied-literal generalisation described in
        DESIGN.md §4, which is required to catch the Booth-cell vanishing
        monomials once their AND gates have been inlined.
    max_implied_literals:
        Cap on the size of the implied-literal sets (memory guard for very
        deep AND/OR chains); truncation only weakens the rule, never makes it
        unsound.
    """

    model: AlgebraicModel
    xor_and_only: bool = False
    max_implied_literals: int = 256
    removed_count: int = 0
    _must1: dict[int, frozenset[Literal]] = field(default_factory=dict, repr=False)
    _must0: dict[int, frozenset[Literal]] = field(default_factory=dict, repr=False)
    _xor_support: dict[int, tuple[int, ...]] = field(default_factory=dict, repr=False)
    _xnor_support: dict[int, tuple[int, ...]] = field(default_factory=dict, repr=False)
    _and_support: dict[int, frozenset[int]] = field(default_factory=dict, repr=False)
    _cache: dict[Monomial, bool] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._build_structural_tables()

    # -- construction of the structural tables ---------------------------------

    def _build_structural_tables(self) -> None:
        records = self.model.records
        for var in sorted(records):
            record = records[var]
            gate = record.gate_type
            if gate is GateType.XOR and len(record.inputs) == 2:
                self._xor_support[var] = record.inputs
            elif gate is GateType.XNOR and len(record.inputs) == 2:
                self._xnor_support[var] = record.inputs
            if gate is GateType.AND and len(record.inputs) == 2:
                self._and_support[var] = frozenset(record.inputs)
            self._must1[var] = self._compute_must(var, value=True)
            self._must0[var] = self._compute_must(var, value=False)

    def _compute_must(self, var: int, value: bool) -> frozenset[Literal]:
        record = self.model.records[var]
        gate = record.gate_type
        literals: set[Literal] = {(var, value)}
        if gate is None or self.xor_and_only:
            return frozenset(literals)

        def implied_when_true(child: int) -> frozenset[Literal]:
            return self._must1.get(child, frozenset({(child, True)}))

        def implied_when_false(child: int) -> frozenset[Literal]:
            return self._must0.get(child, frozenset({(child, False)}))

        if value:
            if gate in (GateType.AND, GateType.BUF):
                for child in record.inputs:
                    literals |= implied_when_true(child)
            elif gate is GateType.NOT:
                literals |= implied_when_false(record.inputs[0])
            elif gate is GateType.NOR:
                for child in record.inputs:
                    literals |= implied_when_false(child)
            elif gate is GateType.CONST0:
                # A constant-0 output can never be 1: mark as self-contradictory.
                literals.add((var, False))
        else:
            if gate in (GateType.OR, GateType.BUF):
                for child in record.inputs:
                    literals |= implied_when_false(child)
            elif gate is GateType.NOT:
                literals |= implied_when_true(record.inputs[0])
            elif gate is GateType.NAND:
                for child in record.inputs:
                    literals |= implied_when_true(child)
            elif gate is GateType.CONST1:
                literals.add((var, True))
        if len(literals) > self.max_implied_literals:
            literals = {(var, value)}
        return frozenset(literals)

    # -- the vanishing test ------------------------------------------------------

    def is_vanishing(self, monomial: Monomial) -> bool:
        """Return ``True`` if the monomial always evaluates to zero."""
        if len(monomial) < 2:
            return False
        cached = self._cache.get(monomial)
        if cached is not None:
            return cached
        result = (self._xor_and_rule(monomial) if self.xor_and_only
                  else self._implied_literal_rule(monomial))
        self._cache[monomial] = result
        return result

    def _xor_and_rule(self, monomial: Monomial) -> bool:
        """The literal rule from the paper: XOR and AND over the same pair."""
        xor_pairs = [frozenset(self._xor_support[v]) for v in monomial
                     if v in self._xor_support]
        if not xor_pairs:
            return False
        and_pairs = {self._and_support[v] for v in monomial
                     if v in self._and_support}
        return any(pair in and_pairs for pair in xor_pairs)

    def _implied_literal_rule(self, monomial: Monomial) -> bool:
        """Sound generalisation via implied-literal consistency."""
        positive: set[int] = set()
        negative: set[int] = set()
        for var in monomial:
            for lit_var, polarity in self._must1.get(
                    var, frozenset({(var, True)})):
                if polarity:
                    if lit_var in negative:
                        return True
                    positive.add(lit_var)
                else:
                    if lit_var in positive:
                        return True
                    negative.add(lit_var)
        # XOR/XNOR consistency of gates whose output is implied positive.
        for var in positive:
            support = self._xor_support.get(var)
            if support is not None:
                a, b = support
                if (a in positive and b in positive) or (a in negative and b in negative):
                    return True
            support = self._xnor_support.get(var)
            if support is not None:
                a, b = support
                if (a in positive and b in negative) or (a in negative and b in positive):
                    return True
        # XOR gates implied *negative* force equal inputs; contradiction if
        # the monomial also forces the inputs to differ.
        for var in negative:
            support = self._xor_support.get(var)
            if support is not None:
                a, b = support
                if (a in positive and b in negative) or (a in negative and b in positive):
                    return True
            support = self._xnor_support.get(var)
            if support is not None:
                a, b = support
                if (a in positive and b in positive) or (a in negative and b in negative):
                    return True
        return False

    # -- polynomial filtering ------------------------------------------------------

    def remove_vanishing(self, polynomial):
        """Remove vanishing monomials from a polynomial, counting removals.

        Returns the filtered polynomial; the running total of removed
        monomials is accumulated in :attr:`removed_count` (the ``#CVM``
        statistic of Table III).
        """
        filtered, removed = polynomial.filter_monomials(
            lambda mono: not self.is_vanishing(mono))
        self.removed_count += removed
        return filtered
