"""The XOR-AND vanishing rule and its structural generalisation.

A *vanishing monomial* always evaluates to zero on the circuit.  The paper's
core observation is the XOR-AND rule: a monomial containing both
``X = a xor b`` and ``D = a and b`` vanishes because ``(a xor b)(a and b) = 0``.

During rewriting the same contradiction can surface through slightly
different variable sets (``X*a*b`` once ``D`` has been inlined, or the
``one/two`` select signals of a Booth cell, where ``two = x2 and (not one)``).
To catch these soundly this module derives, once per model, a set of
*implied literals* for every variable:

* ``must1(v)``  — literals that are forced when ``v = 1``;
* ``must0(v)``  — literals that are forced when ``v = 0``.

For a monomial ``M`` (a conjunction of its variables) the union of
``must1(v)`` over ``v in M`` must be consistent; if it contains both
polarities of some signal, or if it violates the XOR/XNOR constraint of a
gate whose output is in ``M``, the monomial is identically zero and can be
removed.  The paper's rule is the special case "XOR output + AND output over
the same input pair".

Everything is packed into integer bitmasks.  An implied-literal set is a
``(pos, neg)`` pair of variable masks, their union over a monomial is two OR
reductions, and the contradiction test is ``pos & neg != 0``.  Because every
variable trivially implies its own positive literal, ``pos`` always contains
the monomial mask itself — so the accumulation loop only has to visit the
variables whose table holds *more* than the self-literal (AND/OR-family
gates; XOR outputs and primary inputs are skipped wholesale through one AND
with the precomputed :attr:`VanishingRules._nontrivial_mask`).  The XOR/XNOR
consistency checks run on per-gate input-support masks, so the whole rule
touches no Python sets or tuples on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.monomial import any_submask, bits_of, mask_of, Monomial
from repro.algebra.polynomial import Polynomial
from repro.circuit.gates import GateType
from repro.modeling.model import AlgebraicModel

#: A literal is ``(variable, polarity)`` with polarity ``True`` for positive.
Literal = tuple[int, bool]

#: An implied-literal table entry: ``(pos, neg)`` bitmasks over variables.
MustMasks = tuple[int, int]

#: Cap on the minimal-witness set behind the cache's monotonicity shortcut.
WITNESS_LIMIT = 128

#: Gate types whose ``must1`` table can exceed the self-literal.  A 1 on an
#: AND/BUF output forces its inputs high, on a NOT/NOR output it forces them
#: low, and a CONST0 output is self-contradictory; every other gate type
#: (XOR/XNOR/OR/NAND outputs, primary inputs) implies nothing when high.
_NONTRIVIAL_MUST1 = (GateType.AND, GateType.BUF, GateType.NOT, GateType.NOR,
                     GateType.CONST0)


@dataclass(slots=True)
class VanishingRules:
    """Structural vanishing-monomial detector for one circuit model.

    Parameters
    ----------
    model:
        The algebraic model whose gate structure is used.
    xor_and_only:
        Restrict detection to the paper's literal XOR-AND rule (an XOR output
        and an AND output over the same two inputs).  The default ``False``
        enables the sound implied-literal generalisation described in
        DESIGN.md §4, which is required to catch the Booth-cell vanishing
        monomials once their AND gates have been inlined.
    max_implied_literals:
        Cap on the size of the implied-literal sets (memory guard for very
        deep AND/OR chains); truncation only weakens the rule, never makes it
        unsound.
    cache_limit:
        Cap on the mask→verdict memo; when the cache is full at the next
        insertion of a computed verdict, the whole cache is reset (counted
        in :attr:`cache_resets`).  ``None`` disables the bound.
    """

    model: AlgebraicModel
    xor_and_only: bool = False
    max_implied_literals: int = 256
    cache_limit: int | None = 1_000_000
    removed_count: int = 0
    #: Verdicts served from :attr:`cache` (including the inline probes of
    #: :meth:`SubstitutionEngine.find_vanishing`).
    cache_hits: int = 0
    #: Verdicts that had to be computed (witness shortcut included).
    cache_misses: int = 0
    #: Uncached verdicts answered by the minimal-witness divisibility check.
    witness_hits: int = 0
    #: Whole-cache resets forced by :attr:`cache_limit`.
    cache_resets: int = 0
    _must1: dict[int, MustMasks] = field(default_factory=dict, repr=False)
    _must0: dict[int, MustMasks] = field(default_factory=dict, repr=False)
    _xor_support: dict[int, tuple[int, ...]] = field(default_factory=dict, repr=False)
    _xnor_support: dict[int, tuple[int, ...]] = field(default_factory=dict, repr=False)
    _and_support: dict[int, frozenset[int]] = field(default_factory=dict, repr=False)
    #: Per-gate input support masks of the XOR/XNOR gates (bit ``a`` | bit ``b``).
    _pair_mask: dict[int, int] = field(default_factory=dict, repr=False)
    #: All XOR (resp. XNOR) gate outputs, packed into one mask each.
    _xor_out_mask: int = field(default=0, repr=False)
    _xnor_out_mask: int = field(default=0, repr=False)
    #: Variables whose ``must1`` table may exceed the self-literal; all other
    #: variables are folded into the accumulated ``pos`` mask in one AND.
    _nontrivial_mask: int = field(default=0, repr=False)
    #: Minimal recorded vanishing masks, bucketed by their lowest variable;
    #: any multiple of one vanishes too (the rule is monotone under adding
    #: variables), so a supermask query is answered without running the
    #: rule.  A witness that divides the queried mask must have its lowest
    #: bit inside the mask, so one AND against :attr:`_witness_low_mask`
    #: rejects most queries before any bucket is scanned.
    _witness_low: dict[int, list[int]] = field(default_factory=dict, repr=False)
    _witness_low_mask: int = field(default=0, repr=False)
    _witness_count: int = field(default=0, repr=False)
    #: When set, every mask proven to vanish is appended to
    #: :attr:`proven_masks` (survives cache resets) so a certificate
    #: emitter can justify each cancellation independently.
    record_proven: bool = False
    proven_masks: list[int] = field(default_factory=list, repr=False)
    #: Public mask→verdict memo; the substitution engine probes it
    #: inline when sweeping freshly loaded term maps.
    cache: dict[int, bool] = field(default_factory=dict, repr=False)
    #: Variables a vanishing monomial must touch: a monomial disjoint from
    #: every non-trivial ``must1`` table and every XOR/XNOR output has
    #: ``pos == mask`` and ``neg == 0``, which cannot trip any rule check —
    #: one AND against this mask rejects it (and whole tails of such
    #: monomials) without probing the cache or running the rule.
    relevant_mask: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self._build_structural_tables()

    # -- construction of the structural tables ---------------------------------

    def _build_structural_tables(self) -> None:
        """One ascending pass over the gate records builds every table.

        Besides the XOR/XNOR support structures and the non-trivial
        ``must1`` selector, the pass resolves the *relevance* closure
        flags: the implied-literal rule can only answer ``True`` when some
        variable of the monomial either

        * carries a *negative* implied literal in its ``must1`` closure
          (only NOT/NOR/CONST0 gates, or AND/BUF chains reaching one,
          produce those — they feed the ``pos & neg`` contradiction and the
          ``neg``-gated XOR/XNOR checks), or
        * has a closure whose positive part touches an XOR output (the only
          check left when no negative literal exists: an XOR forced high
          with both inputs forced high).

        A monomial over pure-positive AND/BUF cones (e.g. the partial
        products of a multiplier and their accumulation trees) is always
        satisfiable — force every involved input high — so the union of the
        two flags is an exact necessary condition; it becomes
        :attr:`relevant_mask`, the one-AND prefilter of every vanishing
        test.  Variables are numbered topologically (children first), so
        one ascending pass resolves the transitive closures with flat flag
        arrays (big-int shifts would make this pass quadratic).
        """
        records = self.model.records
        gate_xor = GateType.XOR
        gate_xnor = GateType.XNOR
        gate_and = GateType.AND
        gate_or = GateType.OR
        gate_not = GateType.NOT
        gate_buf = GateType.BUF
        nontrivial_gates = _NONTRIVIAL_MUST1
        neg_roots = (gate_not, GateType.NOR, GateType.CONST0)
        and_like = (gate_and, gate_buf)
        size = (max(records) + 1) if records else 0
        neg1 = bytearray(size)   # must1 closure contains a negative literal
        xr1 = bytearray(size)    # must1 closure's positive part touches an XOR
        nontrivial = 0
        xor_pairs = self._xor_support
        xnor_pairs = self._xnor_support
        pair_mask = self._pair_mask
        xor_out_mask = 0
        xnor_out_mask = 0
        for var, record in records.items():
            gate = record.gate_type
            if gate is None:
                continue
            inputs = record.inputs
            if gate is gate_xor:
                if len(inputs) == 2:
                    xor_pairs[var] = inputs
                    xor_out_mask |= 1 << var
                    a, b = inputs
                    pair_mask[var] = (1 << a) | (1 << b)
                xr1[var] = 1
                continue
            if gate is gate_xnor:
                if len(inputs) == 2:
                    xnor_pairs[var] = inputs
                    xnor_out_mask |= 1 << var
                    a, b = inputs
                    pair_mask[var] = (1 << a) | (1 << b)
                continue
            if gate in nontrivial_gates:
                nontrivial |= 1 << var
            if gate in and_like:
                for child in inputs:
                    if neg1[child]:
                        neg1[var] = 1
                        break
                for child in inputs:
                    if xr1[child]:
                        xr1[var] = 1
                        break
                continue
            if gate in neg_roots:
                # NOT/NOR closures can also reach an XOR output through the
                # inverted side, but these gates make the variable relevant
                # through ``neg1`` already, so tracking that reach would
                # never change ``neg1 | xr1``.
                neg1[var] = 1
        self._xor_out_mask = xor_out_mask
        self._xnor_out_mask = xnor_out_mask
        if self.xor_and_only:
            # The strict rule requires an XOR output inside the monomial,
            # and it is the only consumer of the AND-gate support sets.
            self.relevant_mask = xor_out_mask
            for var, record in records.items():
                if (record.gate_type is gate_and
                        and len(record.inputs) == 2):
                    self._and_support[var] = frozenset(record.inputs)
        else:
            self._nontrivial_mask = nontrivial
            relevant = 0
            for var in range(size):
                if neg1[var] or xr1[var]:
                    relevant |= 1 << var
            self.relevant_mask = relevant
        # The implied-literal tables (``must1``/``must0``) are resolved lazily
        # by :meth:`_must` — only variables that actually appear in tested
        # monomials pay for their (transitive) table construction.

    def _must_dependencies(self, var: int, value: bool) -> list[tuple[int, bool]]:
        """Child tables :meth:`_compute_must` reads for ``(var, value)``."""
        record = self.model.records.get(var)
        if record is None or record.gate_type is None or self.xor_and_only:
            return []
        gate = record.gate_type
        if value:
            if gate in (GateType.AND, GateType.BUF):
                return [(child, True) for child in record.inputs]
            if gate is GateType.NOT:
                return [(record.inputs[0], False)]
            if gate is GateType.NOR:
                return [(child, False) for child in record.inputs]
        else:
            if gate in (GateType.OR, GateType.BUF):
                return [(child, False) for child in record.inputs]
            if gate is GateType.NOT:
                return [(record.inputs[0], True)]
            if gate is GateType.NAND:
                return [(child, True) for child in record.inputs]
        return []

    def _must(self, var: int, value: bool) -> MustMasks:
        """Implied literals of ``var = value``, resolving dependencies lazily.

        An explicit work stack (instead of recursion) keeps deep AND/OR
        chains of wide adders within any recursion limit.
        """
        table = self._must1 if value else self._must0
        cached = table.get(var)
        if cached is not None:
            return cached
        records = self.model.records
        if var not in records:
            return (1 << var, 0) if value else (0, 1 << var)
        must1 = self._must1
        must0 = self._must0
        dependencies = self._must_dependencies
        compute = self._compute_must
        stack: list[tuple[int, bool]] = [(var, value)]
        while stack:
            current, current_value = stack[-1]
            current_table = must1 if current_value else must0
            if current in current_table:
                stack.pop()
                continue
            ready = True
            for child, child_value in dependencies(current, current_value):
                if (child != current and child in records
                        and child not in (must1 if child_value else must0)):
                    stack.append((child, child_value))
                    ready = False
            if ready:
                current_table[current] = compute(current, current_value)
                stack.pop()
        return table[var]

    def _compute_must(self, var: int, value: bool) -> MustMasks:
        record = self.model.records[var]
        gate = record.gate_type
        pos, neg = ((1 << var), 0) if value else (0, (1 << var))
        if gate is None or self.xor_and_only:
            return (pos, neg)
        must1 = self._must1
        must0 = self._must0

        if value:
            if gate in (GateType.AND, GateType.BUF):
                for child in record.inputs:
                    child_pos, child_neg = must1.get(child, (1 << child, 0))
                    pos |= child_pos
                    neg |= child_neg
            elif gate is GateType.NOT:
                child = record.inputs[0]
                child_pos, child_neg = must0.get(child, (0, 1 << child))
                pos |= child_pos
                neg |= child_neg
            elif gate is GateType.NOR:
                for child in record.inputs:
                    child_pos, child_neg = must0.get(child, (0, 1 << child))
                    pos |= child_pos
                    neg |= child_neg
            elif gate is GateType.CONST0:
                # A constant-0 output can never be 1: mark as self-contradictory.
                neg |= 1 << var
        else:
            if gate in (GateType.OR, GateType.BUF):
                for child in record.inputs:
                    child_pos, child_neg = must0.get(child, (0, 1 << child))
                    pos |= child_pos
                    neg |= child_neg
            elif gate is GateType.NOT:
                child = record.inputs[0]
                child_pos, child_neg = must1.get(child, (1 << child, 0))
                pos |= child_pos
                neg |= child_neg
            elif gate is GateType.NAND:
                for child in record.inputs:
                    child_pos, child_neg = must1.get(child, (1 << child, 0))
                    pos |= child_pos
                    neg |= child_neg
            elif gate is GateType.CONST1:
                pos |= 1 << var
        if pos.bit_count() + neg.bit_count() > self.max_implied_literals:
            return ((1 << var), 0) if value else (0, (1 << var))
        return (pos, neg)

    # -- literal views (reference/compatibility) --------------------------------

    def implied_literals(self, var: int, value: bool) -> frozenset[Literal]:
        """The implied-literal set of ``var = value`` as ``(var, polarity)`` pairs.

        The packed ``(pos, neg)`` masks are the storage format; this view
        exists for tests and debugging, not for the hot path.
        """
        pos, neg = self._must(var, value)
        return frozenset([(v, True) for v in bits_of(pos)]
                         + [(v, False) for v in bits_of(neg)])

    # -- the vanishing test ------------------------------------------------------

    def is_vanishing(self, monomial: Monomial) -> bool:
        """Return ``True`` if the monomial always evaluates to zero."""
        return self.is_vanishing_mask(mask_of(monomial))

    def is_vanishing_mask(self, mask: int) -> bool:
        """Mask-level :meth:`is_vanishing` (the rewriting fast path)."""
        if not mask & self.relevant_mask:
            # The monomial touches no variable that could contribute a
            # contradiction: it cannot vanish under either rule.
            return False
        cached = self.cache.get(mask)
        if cached is not None:
            self.cache_hits += 1
            return cached
        return self._test_new_mask(mask)

    def _test_new_mask(self, mask: int) -> bool:
        """Uncached-verdict path: callers guarantee a relevance-checked miss."""
        if mask.bit_count() < 2:
            # Cached so the inline probes of repeated sweeps hit instead of
            # falling through to a call; the verdict is always ``False``
            # (a single variable or the constant ``1`` never vanishes).
            cache = self.cache
            if self.cache_limit is not None and len(cache) >= self.cache_limit:
                cache.clear()
                self.cache_resets += 1
            cache[mask] = False
            return False
        self.cache_misses += 1
        # Monotonicity shortcut: a multiple of a recorded vanishing monomial
        # vanishes without re-running the rule (both rules only ever gain
        # contradictions when variables are added, never lose them).
        if self._witness_low_mask & mask and self._witness_divides(mask):
            self.witness_hits += 1
            result = True
        else:
            result = (self._xor_and_rule(mask) if self.xor_and_only
                      else self._implied_literal_rule(mask))
            if result:
                self._record_witness(mask)
        if result and self.record_proven:
            self.proven_masks.append(mask)
        cache = self.cache
        if self.cache_limit is not None and len(cache) >= self.cache_limit:
            cache.clear()
            self.cache_resets += 1
        cache[mask] = result
        return result

    def _witness_divides(self, mask: int) -> bool:
        """Whether a recorded vanishing mask divides (is a submask of) ``mask``.

        Only the buckets of the witness low-bits present in ``mask`` are
        scanned — a dividing witness necessarily has its lowest variable
        inside the mask.
        """
        buckets = self._witness_low
        gate = mask & self._witness_low_mask
        while gate:
            low = gate & -gate
            gate ^= low
            if any_submask(buckets[low.bit_length() - 1], mask):
                return True
        return False

    def _record_witness(self, mask: int) -> None:
        """Add a newly proven vanishing mask to the minimal-witness set.

        New witnesses are only recorded when no recorded witness already
        divides them (guaranteed by the lookup order of
        :meth:`is_vanishing_mask`) and recorded multiples sharing the same
        lowest variable are evicted, keeping the set near-minimal.  The cap
        of :data:`WITNESS_LIMIT` bounds the lookup cost; forgetting a
        witness never changes a verdict, only the shortcut's reach.
        """
        if self._witness_count >= WITNESS_LIMIT:
            return
        low_var = (mask & -mask).bit_length() - 1
        bucket = self._witness_low.get(low_var)
        if bucket is None:
            self._witness_low[low_var] = [mask]
            self._witness_low_mask |= 1 << low_var
        else:
            survivors = [w for w in bucket if w & mask != mask]
            self._witness_count -= len(bucket) - len(survivors)
            survivors.append(mask)
            self._witness_low[low_var] = survivors
        self._witness_count += 1

    def _xor_and_rule(self, mask: int) -> bool:
        """The literal rule from the paper: XOR and AND over the same pair."""
        xor_pairs = [frozenset(self._xor_support[v]) for v in bits_of(mask)
                     if v in self._xor_support]
        if not xor_pairs:
            return False
        and_pairs = {self._and_support[v] for v in bits_of(mask)
                     if v in self._and_support}
        return any(pair in and_pairs for pair in xor_pairs)

    def _implied_literal_rule(self, mask: int) -> bool:
        """Sound generalisation via implied-literal consistency.

        Every variable implies its own positive literal, so the accumulated
        ``pos`` mask starts as the monomial mask itself and the loop only
        visits variables whose table can hold more (one AND with
        :attr:`_nontrivial_mask` selects them — XOR outputs and primary
        inputs, the bulk of rewriting monomials, are skipped wholesale).
        A contradiction is one AND; the XOR/XNOR follow-up only visits gate
        outputs that are actually implied, checking each against its
        precomputed input-support mask.
        """
        pos = mask
        neg = 0
        must1 = self._must1
        remaining = mask & self._nontrivial_mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            var = low.bit_length() - 1
            entry = must1.get(var)
            if entry is None:
                entry = self._must(var, True)
            pos |= entry[0]
            neg |= entry[1]
        if pos & neg:
            return True
        # XOR outputs implied positive and XNOR outputs implied negative
        # force their inputs to *differ*: contradiction if both inputs are
        # forced to the same polarity.  The converse gates force *equal*
        # inputs: contradiction if the inputs are forced to differ (one
        # positive, one negative — ``pos`` and ``neg`` are disjoint here).
        # Without negative literals (the common pure-positive monomial) only
        # the positive-side check of the first form can fire.
        pair_mask = self._pair_mask
        if not neg:
            differing = pos & self._xor_out_mask
            while differing:
                low = differing & -differing
                differing ^= low
                support = pair_mask[low.bit_length() - 1]
                if pos & support == support:
                    return True
            return False
        differing = (pos & self._xor_out_mask) | (neg & self._xnor_out_mask)
        while differing:
            low = differing & -differing
            differing ^= low
            support = pair_mask[low.bit_length() - 1]
            if pos & support == support or neg & support == support:
                return True
        equal = (neg & self._xor_out_mask) | (pos & self._xnor_out_mask)
        while equal:
            low = equal & -equal
            equal ^= low
            support = pair_mask[low.bit_length() - 1]
            if pos & support and neg & support:
                return True
        return False

    # -- polynomial filtering ------------------------------------------------------

    def remove_vanishing(self, polynomial):
        """Remove vanishing monomials from a polynomial, counting removals.

        The inline sweep resolves already-tested masks with one cache
        probe each; the removals accumulate in
        :attr:`removed_count` (the ``#CVM`` statistic of Table III).  Inside
        the rewriting loop the substitution engine additionally keeps its
        working tails vanishing-free incrementally, testing only newly
        created terms.
        """
        relevant = self.relevant_mask
        if not polynomial.support_mask() & relevant:
            # No variable of this polynomial can contribute a contradiction:
            # skip the sweep outright (one AND instead of a probe per term).
            return polynomial
        # The sweep runs once per candidate-free tail of a rewriting
        # pass, so it is inlined — the call layers count at that rate.
        cache_get = self.cache.get
        test_new_mask = self._test_new_mask
        doomed = None
        probe_hits = 0
        for mask in polynomial.mask_view():
            if not mask & relevant:
                continue
            verdict = cache_get(mask)
            if verdict is None:
                verdict = test_new_mask(mask)
            else:
                probe_hits += 1
            if verdict:
                if doomed is None:
                    doomed = [mask]
                else:
                    doomed.append(mask)
        if probe_hits:
            self.cache_hits += probe_hits
        if not doomed:
            return polynomial
        terms = dict(polynomial.term_masks())
        for mask in doomed:
            del terms[mask]
        self.removed_count += len(doomed)
        return Polynomial._raw(terms)
