"""Monomials over Boolean variables.

In the Boolean domain every variable satisfies ``x^2 = x`` (the ideal
``<x^2 - x>`` is built into the representation, as in the paper), so a
monomial is fully described by the *set* of variables it contains.  A
:class:`Monomial` is therefore an immutable set of integer variable indices.
The empty monomial is the constant ``1``.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Monomial(frozenset):
    """An immutable product of distinct Boolean variables.

    Variables are integer indices into a :class:`repro.algebra.ring.PolynomialRing`.
    Multiplication is set union (Boolean idempotence), division is set
    difference, and divisibility is the subset relation.
    """

    __slots__ = ()

    ONE: "Monomial"

    def __new__(cls, variables: Iterable[int] = ()) -> "Monomial":
        return super().__new__(cls, variables)

    # -- algebraic operations -------------------------------------------------

    def __mul__(self, other: "Monomial") -> "Monomial":
        """Product of two monomials (``x^2`` collapses to ``x``)."""
        return Monomial(frozenset.__or__(self, other))

    def divides(self, other: "Monomial") -> bool:
        """Return ``True`` if this monomial divides ``other``."""
        return self.issubset(other)

    def __truediv__(self, other: "Monomial") -> "Monomial":
        """Exact division; ``other`` must divide ``self``."""
        if not other.issubset(self):
            raise ValueError(f"{other!r} does not divide {self!r}")
        return Monomial(frozenset.__sub__(self, other))

    def lcm(self, other: "Monomial") -> "Monomial":
        """Least common multiple (set union for multilinear monomials)."""
        return Monomial(frozenset.__or__(self, other))

    def gcd(self, other: "Monomial") -> "Monomial":
        """Greatest common divisor (set intersection)."""
        return Monomial(frozenset.__and__(self, other))

    def relatively_prime(self, other: "Monomial") -> bool:
        """Return ``True`` if the two monomials share no variable (Lemma 1)."""
        return self.isdisjoint(other)

    # -- queries --------------------------------------------------------------

    @property
    def degree(self) -> int:
        """Total degree, i.e. the number of distinct variables."""
        return len(self)

    @property
    def is_constant(self) -> bool:
        """Return ``True`` for the constant monomial ``1``."""
        return not self

    def variables(self) -> Iterator[int]:
        """Iterate over the variable indices in ascending order."""
        return iter(sorted(self))

    def sort_key(self) -> tuple[int, ...]:
        """Key realising the lexicographic order induced by the variable order.

        Variable indices are compared from the largest downwards, so a
        monomial containing a higher variable is larger than any monomial
        over strictly lower variables — exactly the property required for
        gate polynomials whose leading monomial must be the gate output.
        """
        return tuple(sorted(self, reverse=True))

    def evaluate(self, assignment) -> int:
        """Evaluate under a Boolean assignment (mapping or sequence)."""
        for var in self:
            if not assignment[var]:
                return 0
        return 1

    # -- formatting -----------------------------------------------------------

    def to_str(self, names=None) -> str:
        """Render as ``a*b*c`` using ``names`` (or raw indices)."""
        if not self:
            return "1"
        ordered = sorted(self, reverse=True)
        if names is None:
            return "*".join(f"x{v}" for v in ordered)
        return "*".join(str(names(v)) if callable(names) else str(names[v])
                        for v in ordered)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Monomial({sorted(self)})"


Monomial.ONE = Monomial()
