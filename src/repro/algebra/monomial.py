"""Monomials over Boolean variables, packed into integer bitmasks.

In the Boolean domain every variable satisfies ``x^2 = x`` (the ideal
``<x^2 - x>`` is built into the representation, as in the paper), so a
monomial is fully described by the *set* of variables it contains.  A
:class:`Monomial` encodes that set as an arbitrary-precision integer
bitmask: bit ``v`` is set iff variable ``v`` occurs in the monomial.  The
empty monomial (mask ``0``) is the constant ``1``.

The bitmask encoding turns every algebraic operation into one machine-level
integer operation:

========================= ======================
multiplication / lcm      ``a | b``
gcd                       ``a & b``
divisibility              ``a & b == a``
exact division            ``a & ~b``
relative primality        ``a & b == 0``
total degree              ``popcount(a)``
lex comparison            integer comparison
========================= ======================

The last row is the key to the fast core: for multilinear monomials the
lexicographic order induced by ``x_n > x_{n-1} > ... > x_0`` coincides with
the numeric order of the bitmasks (the highest differing variable decides
both comparisons), so leading-monomial selection needs no tuple keys.

:class:`Monomial` keeps the public API of the earlier ``frozenset``-based
implementation, including iteration over variable indices, containment
tests, and equality/hash compatibility with ``frozenset`` instances over
the same variables.  The :class:`~repro.algebra.polynomial.Polynomial`
layer bypasses the wrapper entirely and stores raw masks.
"""

from __future__ import annotations

from typing import Iterable, Iterator


def mask_of(variables: Iterable[int]) -> int:
    """Pack an iterable of variable indices into a bitmask."""
    if isinstance(variables, Monomial):
        return variables._mask
    mask = 0
    for var in variables:
        mask |= 1 << var
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_of(mask: int) -> list[int]:
    """Set bit positions of ``mask`` as an ascending list.

    Functionally :func:`iter_bits`, but a plain loop into a list beats the
    generator resume cost on the hot paths that visit every variable.
    """
    out = []
    while mask:
        low = mask & -mask
        mask ^= low
        out.append(low.bit_length() - 1)
    return out


def union_mask(masks: Iterable[int]) -> int:
    """OR-union of an iterable of bitmasks (the support of a term map)."""
    support = 0
    for mask in masks:
        support |= mask
    return support


def any_submask(candidates: Iterable[int], mask: int) -> bool:
    """Return ``True`` if any candidate bitmask is a submask of ``mask``.

    For multilinear monomials "submask" is divisibility, so this answers
    whether ``mask`` is a multiple of any candidate — the monotonicity
    shortcut of the vanishing-rule cache: a monomial divisible by a known
    vanishing monomial vanishes too.
    """
    for candidate in candidates:
        if candidate & mask == candidate:
            return True
    return False


class Monomial:
    """An immutable product of distinct Boolean variables.

    Variables are integer indices into a
    :class:`repro.algebra.ring.PolynomialRing`, stored as set bits of an
    integer mask.  Multiplication is bitwise OR (Boolean idempotence),
    division clears bits, and divisibility is the submask relation.
    """

    __slots__ = ("_mask", "_hash")

    ONE: "Monomial"

    def __init__(self, variables: Iterable[int] = ()) -> None:
        self._mask = mask_of(variables)
        self._hash = None

    @classmethod
    def from_mask(cls, mask: int) -> "Monomial":
        """Wrap an already-packed bitmask (no validation)."""
        mono = object.__new__(cls)
        mono._mask = mask
        mono._hash = None
        return mono

    @property
    def mask(self) -> int:
        """The packed bitmask (bit ``v`` set iff variable ``v`` occurs)."""
        return self._mask

    # -- algebraic operations -------------------------------------------------

    def __mul__(self, other: "Monomial") -> "Monomial":
        """Product of two monomials (``x^2`` collapses to ``x``)."""
        return Monomial.from_mask(self._mask | mask_of(other))

    def divides(self, other: "Monomial") -> bool:
        """Return ``True`` if this monomial divides ``other``."""
        mask = self._mask
        return mask & mask_of(other) == mask

    def __truediv__(self, other: "Monomial") -> "Monomial":
        """Exact division; ``other`` must divide ``self``."""
        other_mask = mask_of(other)
        if other_mask & self._mask != other_mask:
            raise ValueError(f"{other!r} does not divide {self!r}")
        return Monomial.from_mask(self._mask & ~other_mask)

    def lcm(self, other: "Monomial") -> "Monomial":
        """Least common multiple (bitwise OR for multilinear monomials)."""
        return Monomial.from_mask(self._mask | mask_of(other))

    def gcd(self, other: "Monomial") -> "Monomial":
        """Greatest common divisor (bitwise AND)."""
        return Monomial.from_mask(self._mask & mask_of(other))

    def relatively_prime(self, other: "Monomial") -> bool:
        """Return ``True`` if the two monomials share no variable (Lemma 1)."""
        return self._mask & mask_of(other) == 0

    # -- set protocol ---------------------------------------------------------

    def __iter__(self) -> Iterator[int]:
        return iter_bits(self._mask)

    def __len__(self) -> int:
        return self._mask.bit_count()

    def __contains__(self, var: int) -> bool:
        return var >= 0 and (self._mask >> var) & 1 == 1

    def __bool__(self) -> bool:
        return self._mask != 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Monomial):
            return self._mask == other._mask
        if isinstance(other, (frozenset, set)):
            # Compatibility with the historical frozenset representation.
            try:
                return self._mask == mask_of(other)
            except (TypeError, ValueError):
                return False
        return NotImplemented

    def __hash__(self) -> int:
        # Hash-compatible with ``frozenset`` over the same variables, so
        # monomials keep working as drop-in dict/set keys next to sets.  The
        # hash is computed lazily and cached; the polynomial hot paths key
        # their term dicts by raw masks and never hash Monomial objects.
        cached = self._hash
        if cached is None:
            cached = self._hash = hash(frozenset(iter_bits(self._mask)))
        return cached

    # -- queries --------------------------------------------------------------

    @property
    def degree(self) -> int:
        """Total degree, i.e. the number of distinct variables."""
        return self._mask.bit_count()

    @property
    def is_constant(self) -> bool:
        """Return ``True`` for the constant monomial ``1``."""
        return self._mask == 0

    def variables(self) -> Iterator[int]:
        """Iterate over the variable indices in ascending order."""
        return iter_bits(self._mask)

    def sort_key(self) -> tuple[int, ...]:
        """Key realising the lexicographic order induced by the variable order.

        Variable indices are compared from the largest downwards, so a
        monomial containing a higher variable is larger than any monomial
        over strictly lower variables — exactly the property required for
        gate polynomials whose leading monomial must be the gate output.
        For raw masks the same order is plain integer comparison; this tuple
        form is kept for API compatibility and custom orders.
        """
        return tuple(sorted(iter_bits(self._mask), reverse=True))

    def evaluate(self, assignment) -> int:
        """Evaluate under a Boolean assignment (mapping or sequence)."""
        for var in iter_bits(self._mask):
            if not assignment[var]:
                return 0
        return 1

    # -- formatting -----------------------------------------------------------

    def to_str(self, names=None) -> str:
        """Render as ``a*b*c`` using ``names`` (or raw indices)."""
        if not self._mask:
            return "1"
        ordered = sorted(iter_bits(self._mask), reverse=True)
        if names is None:
            return "*".join(f"x{v}" for v in ordered)
        return "*".join(str(names(v)) if callable(names) else str(names[v])
                        for v in ordered)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Monomial({list(iter_bits(self._mask))})"


Monomial.ONE = Monomial()
