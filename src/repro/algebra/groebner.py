"""Gröbner-basis primitives: S-polynomials, division, Buchberger's algorithm.

The verification flow never needs to *compute* a Gröbner basis for circuit
models — by construction the gate polynomials already form one (Definition 2)
— but the general machinery is provided for completeness, for the paper's
running examples and for testing the by-construction claim.

Coefficients are integers; leading coefficients of circuit polynomials are
always ``±1`` so all divisions stay in ``Z``.  The general routines check
this and raise :class:`~repro.errors.AlgebraError` otherwise.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algebra.ordering import MonomialOrder, LEX
from repro.algebra.polynomial import Polynomial
from repro.errors import AlgebraError


def spoly(p: Polynomial, g: Polynomial, order: MonomialOrder = LEX) -> Polynomial:
    """S-polynomial ``Spoly(p, g)`` (Definition 1).

    ``Spoly(p, g) = (L / lt(p)) * p - (L / lt(g)) * g`` with
    ``L = lcm(lm(p), lm(g))``.  Requires the leading coefficients to divide
    each other's contribution in ``Z``; for the unit leading coefficients used
    throughout the circuit models this is always the case.
    """
    lm_p, lc_p = p.leading_term(order)
    lm_g, lc_g = g.leading_term(order)
    lcm = lm_p.lcm(lm_g)
    if abs(lc_p) == 1 and abs(lc_g) == 1:
        # 1 / (±1) = ±1, so the exact rational S-polynomial stays integral.
        left = p.multiply_term(lc_p, lcm / lm_p)
        right = g.multiply_term(lc_g, lcm / lm_g)
        return left - right
    # General integer coefficients: scale both sides by the leading
    # coefficients (lc_p * lc_g times the rational S-polynomial).
    left = p.multiply_term(lc_g, lcm / lm_p)
    right = g.multiply_term(lc_p, lcm / lm_g)
    return left - right


def leading_monomials_relatively_prime(polys: Sequence[Polynomial],
                                       order: MonomialOrder = LEX) -> bool:
    """Check the pairwise relative primality of leading monomials (Lemma 1)."""
    leads = [p.leading_monomial(order) for p in polys if not p.is_zero]
    for i, lm_i in enumerate(leads):
        for lm_j in leads[i + 1:]:
            if not lm_i.relatively_prime(lm_j):
                return False
    return True


def divide(p: Polynomial, divisors: Sequence[Polynomial],
           order: MonomialOrder = LEX,
           max_steps: int | None = None) -> tuple[list[Polynomial], Polynomial]:
    """Multivariate division of ``p`` by an ordered list of divisors.

    Returns ``(quotients, remainder)`` with
    ``p = sum(q_i * divisors_i) + remainder`` and no monomial of the
    remainder divisible by any divisor's leading monomial
    (``p --G-->+ r`` in the paper's notation).
    """
    quotients = [Polynomial.zero() for _ in divisors]
    remainder = Polynomial.zero()
    work = p
    leads = [d.leading_term(order) for d in divisors]
    steps = 0
    while not work.is_zero:
        if max_steps is not None and steps > max_steps:
            raise AlgebraError("division exceeded the maximum number of steps")
        steps += 1
        lm_w, lc_w = work.leading_term(order)
        for i, (lm_d, lc_d) in enumerate(leads):
            if lm_d.divides(lm_w) and lc_w % lc_d == 0:
                factor_coeff = lc_w // lc_d
                factor_mono = lm_w / lm_d
                quotients[i] = quotients[i] + Polynomial.term(factor_coeff, factor_mono)
                work = work - divisors[i].multiply_term(factor_coeff, factor_mono)
                break
        else:
            remainder = remainder + Polynomial.term(lc_w, lm_w)
            work = work - Polynomial.term(lc_w, lm_w)
    return quotients, remainder


def reduce(p: Polynomial, divisors: Sequence[Polynomial],
           order: MonomialOrder = LEX,
           max_steps: int | None = None) -> Polynomial:
    """Remainder of dividing ``p`` by ``divisors`` (quotients discarded)."""
    _, remainder = divide(p, divisors, order, max_steps=max_steps)
    return remainder


def is_groebner_basis(polys: Sequence[Polynomial], order: MonomialOrder = LEX,
                      structural_only: bool = False) -> bool:
    """Check whether ``polys`` is a Gröbner basis.

    With ``structural_only=True`` only the relative-primality criterion of
    Definition 2 is checked (sufficient by Lemma 1 / Buchberger's first
    criterion).  Otherwise every S-polynomial is reduced and checked for a
    zero remainder — exponential, only meant for small test systems.
    """
    polys = [p for p in polys if not p.is_zero]
    if leading_monomials_relatively_prime(polys, order):
        return True
    if structural_only:
        return False
    for i, p in enumerate(polys):
        for g in polys[i + 1:]:
            s = spoly(p, g, order)
            if not reduce(s, polys, order).is_zero:
                return False
    return True


def buchberger(generators: Iterable[Polynomial], order: MonomialOrder = LEX,
               max_basis_size: int = 256) -> list[Polynomial]:
    """Buchberger's algorithm for small ideals (test/demo use only).

    Repeatedly reduces S-polynomials and adds non-zero remainders to the
    basis until every S-polynomial reduces to zero.  ``max_basis_size``
    bounds run-away growth.
    """
    basis = [p for p in generators if not p.is_zero]
    pairs = [(i, j) for i in range(len(basis)) for j in range(i + 1, len(basis))]
    while pairs:
        i, j = pairs.pop()
        lm_i = basis[i].leading_monomial(order)
        lm_j = basis[j].leading_monomial(order)
        if lm_i.relatively_prime(lm_j):
            continue  # Buchberger's first criterion (Lemma 1)
        remainder = reduce(spoly(basis[i], basis[j], order), basis, order)
        if remainder.is_zero:
            continue
        basis.append(remainder)
        if len(basis) > max_basis_size:
            raise AlgebraError("Buchberger basis exceeded the size limit")
        new_index = len(basis) - 1
        pairs.extend((k, new_index) for k in range(new_index))
    return basis
