"""Sparse multilinear polynomial algebra over Boolean variables.

This subpackage implements the computer-algebra substrate used by the
membership-testing verification algorithms: monomials over Boolean variables
(``x^2`` is reduced to ``x``), polynomials with arbitrary-precision integer
coefficients, lexicographic monomial orderings induced by a variable order,
S-polynomials and Gröbner-basis utilities (Buchberger's algorithm, division,
basis checks).

Monomials are encoded as packed integer *bitmasks* (bit ``v`` set iff
variable ``v`` occurs), which turns multiplication/lcm into ``|``, gcd into
``&``, divisibility into a submask test, and — crucially — the lex order
into plain integer comparison.  :class:`~repro.algebra.polynomial.Polynomial`
stores its term map as ``dict[int, int]`` (mask -> coefficient), so the two
hot operations of the verification flow (term-wise addition and
single-variable substitution) are pure integer dict merges with no
intermediate set or wrapper objects.  The :class:`Monomial` wrapper keeps
the historical set-like API (iteration, containment, equality/hash
compatibility with ``frozenset``) for everything off the hot path.
"""

from repro.algebra.monomial import Monomial
from repro.algebra.ordering import MonomialOrder, lex_key
from repro.algebra.polynomial import Polynomial
from repro.algebra.ring import PolynomialRing
from repro.algebra.substitution import SubstitutionEngine
from repro.algebra.groebner import (
    buchberger,
    divide,
    is_groebner_basis,
    leading_monomials_relatively_prime,
    spoly,
)

__all__ = [
    "Monomial",
    "MonomialOrder",
    "Polynomial",
    "PolynomialRing",
    "SubstitutionEngine",
    "buchberger",
    "divide",
    "is_groebner_basis",
    "leading_monomials_relatively_prime",
    "lex_key",
    "spoly",
]
