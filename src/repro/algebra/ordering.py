"""Monomial orderings.

The verification flow uses a *lexicographic* order induced by a total order
on the variables: variables are numbered so that a gate output always has a
larger index than any of its (transitive) inputs — the "reverse topological
level" order of the paper.  Under this order the leading monomial of every
gate polynomial is the single gate-output variable, which makes the circuit
model a Gröbner basis by construction (Definition 2 / Lemma 1).
"""

from __future__ import annotations

from typing import Callable

from repro.algebra.monomial import Monomial


def lex_key(monomial: Monomial) -> tuple[int, ...]:
    """Sort key realising lex order for multilinear monomials.

    For multilinear (Boolean) monomials, comparing the descending tuples of
    variable indices element-wise is equivalent to comparing exponent vectors
    lexicographically with ``x_n > x_{n-1} > ... > x_0``.
    """
    return monomial.sort_key()


def deglex_key(monomial: Monomial) -> tuple:
    """Sort key for degree-lexicographic order (ties broken by lex)."""
    return (monomial.degree, monomial.sort_key())


class MonomialOrder:
    """A monomial order given by a key function (larger key = larger monomial)."""

    __slots__ = ("name", "_key")

    def __init__(self, name: str = "lex",
                 key: Callable[[Monomial], tuple] | None = None) -> None:
        if key is None:
            key = {"lex": lex_key, "deglex": deglex_key}.get(name)
            if key is None:
                raise ValueError(f"unknown monomial order {name!r}")
        self.name = name
        self._key = key

    def key(self, monomial: Monomial) -> tuple:
        """Return the comparison key of ``monomial``."""
        return self._key(monomial)

    def greater(self, a: Monomial, b: Monomial) -> bool:
        """Return ``True`` if ``a > b`` in this order."""
        return self._key(a) > self._key(b)

    def max(self, monomials) -> Monomial:
        """Return the largest monomial of a non-empty iterable."""
        return max(monomials, key=self._key)

    def sorted(self, monomials, reverse: bool = True) -> list[Monomial]:
        """Sort monomials, largest first by default (paper's convention)."""
        return sorted(monomials, key=self._key, reverse=reverse)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MonomialOrder({self.name!r})"


LEX = MonomialOrder("lex")
DEGLEX = MonomialOrder("deglex")
