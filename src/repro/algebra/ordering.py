"""Monomial orderings.

The verification flow uses a *lexicographic* order induced by a total order
on the variables: variables are numbered so that a gate output always has a
larger index than any of its (transitive) inputs — the "reverse topological
level" order of the paper.  Under this order the leading monomial of every
gate polynomial is the single gate-output variable, which makes the circuit
model a Gröbner basis by construction (Definition 2 / Lemma 1).

With the bitmask monomial encoding the lex order is simply the numeric
order of the packed masks (the highest differing variable decides both), so
each :class:`MonomialOrder` carries an optional *mask key* used by the
polynomial layer to compare raw masks without building Monomial wrappers.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.algebra.monomial import Monomial


def lex_key(monomial: Monomial) -> tuple[int, ...]:
    """Sort key realising lex order for multilinear monomials.

    For multilinear (Boolean) monomials, comparing the descending tuples of
    variable indices element-wise is equivalent to comparing exponent vectors
    lexicographically with ``x_n > x_{n-1} > ... > x_0``.
    """
    return monomial.sort_key()


def deglex_key(monomial: Monomial) -> tuple:
    """Sort key for degree-lexicographic order (ties broken by lex)."""
    return (monomial.degree, monomial.sort_key())


def lex_mask_key(mask: int) -> int:
    """Mask-level lex key: the packed bitmask compares like the lex order."""
    return mask


def deglex_mask_key(mask: int) -> tuple[int, int]:
    """Mask-level deglex key: degree (popcount) first, lex mask second."""
    return (mask.bit_count(), mask)


class MonomialOrder:
    """A monomial order given by a key function (larger key = larger monomial).

    ``mask_key``, when available, is the same order expressed on raw
    bitmasks; orders constructed with a custom ``key`` fall back to wrapping
    masks in :class:`Monomial` instances.
    """

    __slots__ = ("name", "_key", "_mask_key")

    def __init__(self, name: str = "lex",
                 key: Callable[[Monomial], tuple] | None = None,
                 mask_key: Callable[[int], object] | None = None) -> None:
        if key is None:
            key = {"lex": lex_key, "deglex": deglex_key}.get(name)
            if key is None:
                raise ValueError(f"unknown monomial order {name!r}")
            if mask_key is None:
                mask_key = {"lex": lex_mask_key,
                            "deglex": deglex_mask_key}[name]
        self.name = name
        self._key = key
        self._mask_key = mask_key

    def key(self, monomial: Monomial) -> tuple:
        """Return the comparison key of ``monomial``."""
        return self._key(monomial)

    def mask_key(self, mask: int) -> object:
        """Comparison key of a raw bitmask."""
        if self._mask_key is not None:
            return self._mask_key(mask)
        return self._key(Monomial.from_mask(mask))

    def greater(self, a: Monomial, b: Monomial) -> bool:
        """Return ``True`` if ``a > b`` in this order."""
        return self._key(a) > self._key(b)

    def max(self, monomials) -> Monomial:
        """Return the largest monomial of a non-empty iterable."""
        return max(monomials, key=self._key)

    def max_mask(self, masks: Iterable[int]) -> int:
        """Return the largest raw bitmask of a non-empty iterable."""
        if self._mask_key is lex_mask_key:
            return max(masks)
        return max(masks, key=self.mask_key)

    def sorted(self, monomials, reverse: bool = True) -> list[Monomial]:
        """Sort monomials, largest first by default (paper's convention)."""
        return sorted(monomials, key=self._key, reverse=reverse)

    def sorted_mask_items(self, items: Iterable[tuple[int, int]],
                          reverse: bool = True) -> list[tuple[int, int]]:
        """Sort ``(mask, coefficient)`` pairs, largest monomial first."""
        return sorted(items, key=lambda kv: self.mask_key(kv[0]),
                      reverse=reverse)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MonomialOrder({self.name!r})"


LEX = MonomialOrder("lex")
DEGLEX = MonomialOrder("deglex")
