"""Sparse multilinear polynomials with integer coefficients.

A :class:`Polynomial` is a finite sum of terms ``c * M`` where ``c`` is a
Python integer (arbitrary precision, as needed for the ``2^(2n)`` weights of
multiplier specifications) and ``M`` is a :class:`~repro.algebra.monomial.Monomial`
over Boolean variables.  All operations keep the representation multilinear,
i.e. the Boolean ideal ``<x^2 - x>`` is applied implicitly.

Internally the term map is a ``dict[int, int]`` from packed monomial
bitmasks (see :mod:`repro.algebra.monomial`) to coefficients.  The two hot
operations of the verification flow — term-wise addition and single-variable
substitution — are pure integer-key dict merges with bitwise monomial
arithmetic, with no intermediate set or Monomial objects.  The public API
still accepts and returns :class:`Monomial` instances; the raw-mask view is
available through :meth:`term_masks` / :meth:`support_mask` for callers that
want to stay on the fast path (e.g. the vanishing-monomial rules).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.algebra.monomial import Monomial, iter_bits, mask_of
from repro.algebra.ordering import MonomialOrder, LEX
from repro.algebra.substitution import SubstitutionEngine
from repro.errors import AlgebraError


class Polynomial:
    """An immutable sparse polynomial ``c1*M1 + ... + ct*Mt``.

    Terms with zero coefficient are never stored.  The class is designed for
    the two hot operations of the verification flow: term-wise addition and
    substitution of a single variable by another polynomial.
    """

    __slots__ = ("_terms", "_support")

    def __init__(self, terms: Mapping[Monomial, int] | None = None) -> None:
        clean: dict[int, int] = {}
        if terms:
            for mono, coeff in terms.items():
                if coeff:
                    mask = mask_of(mono)
                    new = clean.get(mask, 0) + coeff
                    if new:
                        clean[mask] = new
                    else:
                        clean.pop(mask, None)
        self._terms = clean
        self._support = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def zero(cls) -> "Polynomial":
        """The zero polynomial."""
        return cls()

    @classmethod
    def constant(cls, value: int) -> "Polynomial":
        """The constant polynomial ``value``."""
        if value == 0:
            return cls._raw({})
        return cls._raw({0: value})

    @classmethod
    def variable(cls, var: int, coefficient: int = 1) -> "Polynomial":
        """The polynomial ``coefficient * x_var``."""
        if coefficient == 0:
            return cls._raw({})
        return cls._raw({1 << var: coefficient})

    @classmethod
    def term(cls, coefficient: int, variables: Iterable[int]) -> "Polynomial":
        """A single term ``coefficient * prod(variables)``."""
        if coefficient == 0:
            return cls._raw({})
        return cls._raw({mask_of(variables): coefficient})

    @classmethod
    def from_terms(cls, terms: Iterable[tuple[int, Iterable[int]]]) -> "Polynomial":
        """Build from ``(coefficient, variables)`` pairs, summing duplicates."""
        acc: dict[int, int] = {}
        for coeff, variables in terms:
            mask = mask_of(variables)
            acc[mask] = acc.get(mask, 0) + coeff
        return cls._raw({m: c for m, c in acc.items() if c})

    @classmethod
    def from_term_masks(cls, terms: Mapping[int, int]) -> "Polynomial":
        """Build from a mask-keyed term map (zero coefficients are dropped)."""
        if any(not coeff for coeff in terms.values()):
            terms = {m: c for m, c in terms.items() if c}
        return cls._raw(dict(terms))

    # -- basic queries --------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        """Return ``True`` if this is the zero polynomial."""
        return not self._terms

    @property
    def is_constant(self) -> bool:
        """Return ``True`` if the polynomial has no variables."""
        return all(mask == 0 for mask in self._terms)

    @property
    def num_terms(self) -> int:
        """Number of monomials with non-zero coefficient (``#M`` per poly)."""
        return len(self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    def __bool__(self) -> bool:
        return bool(self._terms)

    def terms(self) -> Iterator[tuple[Monomial, int]]:
        """Iterate over ``(monomial, coefficient)`` pairs (unordered)."""
        return ((Monomial.from_mask(mask), coeff)
                for mask, coeff in self._terms.items())

    def term_masks(self) -> Iterator[tuple[int, int]]:
        """Iterate over raw ``(bitmask, coefficient)`` pairs (unordered)."""
        return iter(self._terms.items())

    def masks(self) -> Iterator[int]:
        """Iterate over the raw monomial bitmasks (unordered)."""
        return iter(self._terms)

    def mask_view(self):
        """Set-like view of the raw monomial bitmasks (supports set algebra)."""
        return self._terms.keys()

    def term_view(self):
        """Re-iterable ``(bitmask, coefficient)`` view of the term map.

        Unlike :meth:`term_masks` (a one-shot iterator) the view can be
        walked repeatedly, so it can feed substitution kernels that expand
        a replacement once per affected term without a defensive copy.
        """
        return self._terms.items()

    def monomials(self) -> Iterator[Monomial]:
        """Iterate over the monomials (unordered)."""
        return (Monomial.from_mask(mask) for mask in self._terms)

    def coefficient(self, monomial: Monomial | Iterable[int]) -> int:
        """Coefficient of ``monomial`` (0 if absent)."""
        return self._terms.get(mask_of(monomial), 0)

    def constant_term(self) -> int:
        """Coefficient of the constant monomial ``1``."""
        return self._terms.get(0, 0)

    def support_mask(self) -> int:
        """Bitmask of all variables appearing in the polynomial (cached)."""
        support = self._support
        if support is None:
            support = 0
            for mask in self._terms:
                support |= mask
            self._support = support
        return support

    def support(self) -> set[int]:
        """Set of variables appearing in the polynomial (``Vars(p)``)."""
        return set(iter_bits(self.support_mask()))

    def max_monomial_degree(self) -> int:
        """Largest number of variables in any monomial (``#VM`` statistic)."""
        if not self._terms:
            return 0
        return max(mask.bit_count() for mask in self._terms)

    def contains_variable(self, var: int) -> bool:
        """Return ``True`` if ``var`` occurs in some monomial."""
        return (self.support_mask() >> var) & 1 == 1

    # -- leading term ---------------------------------------------------------

    def leading_monomial(self, order: MonomialOrder = LEX) -> Monomial:
        """``lm(p)`` — the largest monomial w.r.t. ``order``."""
        if not self._terms:
            raise AlgebraError("the zero polynomial has no leading monomial")
        return Monomial.from_mask(order.max_mask(self._terms.keys()))

    def leading_coefficient(self, order: MonomialOrder = LEX) -> int:
        """``lc(p)`` — the coefficient of the leading monomial."""
        return self._terms[self.leading_monomial(order).mask]

    def leading_term(self, order: MonomialOrder = LEX) -> tuple[Monomial, int]:
        """``lt(p)`` as a ``(monomial, coefficient)`` pair."""
        mono = self.leading_monomial(order)
        return mono, self._terms[mono.mask]

    # -- arithmetic -----------------------------------------------------------

    def __neg__(self) -> "Polynomial":
        return Polynomial._raw({m: -c for m, c in self._terms.items()})

    def __add__(self, other: "Polynomial | int") -> "Polynomial":
        if isinstance(other, int):
            other = Polynomial.constant(other)
        if len(self._terms) < len(other._terms):
            small, big = self._terms, dict(other._terms)
        else:
            small, big = other._terms, dict(self._terms)
        for mask, coeff in small.items():
            new = big.get(mask, 0) + coeff
            if new:
                big[mask] = new
            else:
                big.pop(mask, None)
        return Polynomial._raw(big)

    __radd__ = __add__

    def __sub__(self, other: "Polynomial | int") -> "Polynomial":
        if isinstance(other, int):
            other = Polynomial.constant(other)
        return self + (-other)

    def __rsub__(self, other: int) -> "Polynomial":
        return Polynomial.constant(other) + (-self)

    def __mul__(self, other: "Polynomial | int") -> "Polynomial":
        if isinstance(other, int):
            if other == 0:
                return Polynomial.zero()
            if other == 1:
                return self
            return Polynomial._raw({m: c * other for m, c in self._terms.items()})
        acc: dict[int, int] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                prod = m1 | m2
                new = acc.get(prod, 0) + c1 * c2
                if new:
                    acc[prod] = new
                else:
                    acc.pop(prod, None)
        return Polynomial._raw(acc)

    __rmul__ = __mul__

    def multiply_term(self, coefficient: int, monomial: Monomial) -> "Polynomial":
        """Multiply by a single term ``coefficient * monomial``."""
        if coefficient == 0:
            return Polynomial.zero()
        factor = mask_of(monomial)
        acc: dict[int, int] = {}
        for mask, coeff in self._terms.items():
            prod = mask | factor
            new = acc.get(prod, 0) + coeff * coefficient
            if new:
                acc[prod] = new
            else:
                acc.pop(prod, None)
        return Polynomial._raw(acc)

    # -- substitution (the hot path of GB reduction / rewriting) --------------

    def substitute(self, var: int, replacement: "Polynomial") -> "Polynomial":
        """Substitute ``var := replacement`` and return the new polynomial.

        This realises one division (S-polynomial) step against a gate
        polynomial ``-var + tail`` whose leading monomial is the single
        variable ``var``: every occurrence of ``var`` in a monomial is
        replaced by the tail polynomial, with Boolean idempotence applied.
        The loop itself lives in the shared
        :class:`~repro.algebra.substitution.SubstitutionEngine` kernel,
        which the reduction and rewriting passes drive incrementally.
        """
        if self.support_mask() & (1 << var) == 0:
            return self
        engine = SubstitutionEngine(self._terms, 1 << var)
        engine.substitute(var, list(replacement._terms.items()))
        return Polynomial._raw(engine.terms)

    def substitute_many(self, replacements: Mapping[int, "Polynomial"]) -> "Polynomial":
        """Substitute several variables one after another (arbitrary order)."""
        result = self
        for var, poly in replacements.items():
            result = result.substitute(var, poly)
        return result

    # -- coefficient filtering -------------------------------------------------

    def drop_coefficient_multiples(self, modulus: int) -> "Polynomial":
        """Remove terms whose coefficient is a multiple of ``modulus``.

        This implements the paper's ``r <- r mod 2^(2n)`` step for multiplier
        specifications: terms with coefficients that are multiples of
        ``2^(2n)`` are removed from the remainder.
        """
        if modulus <= 0:
            raise AlgebraError("modulus must be positive")
        if modulus & (modulus - 1) == 0:
            # Power-of-two modulus (the ``2^(2n)`` case): a bitwise AND with
            # ``modulus - 1`` is much cheaper than ``%`` on big coefficients.
            low_bits = modulus - 1
            return Polynomial._raw(
                {m: c for m, c in self._terms.items() if c & low_bits})
        return Polynomial._raw(
            {m: c for m, c in self._terms.items() if c % modulus != 0})

    def reduce_coefficients(self, modulus: int) -> "Polynomial":
        """Reduce every coefficient into the symmetric range modulo ``modulus``."""
        if modulus <= 0:
            raise AlgebraError("modulus must be positive")
        acc: dict[int, int] = {}
        half = modulus // 2
        for mask, coeff in self._terms.items():
            red = coeff % modulus
            if red > half:
                red -= modulus
            if red:
                acc[mask] = red
        return Polynomial._raw(acc)

    def filter_monomials(self, keep: Callable[[Monomial], bool]) -> tuple["Polynomial", int]:
        """Keep only monomials for which ``keep`` returns ``True``.

        Returns the filtered polynomial and the number of removed terms
        (used to count cancelled vanishing monomials, ``#CVM``).
        """
        return self.filter_term_masks(lambda mask: keep(Monomial.from_mask(mask)))

    def filter_term_masks(self, keep: Callable[[int], bool]) -> tuple["Polynomial", int]:
        """Mask-level :meth:`filter_monomials` (no Monomial wrappers)."""
        kept: dict[int, int] = {}
        removed = 0
        for mask, coeff in self._terms.items():
            if keep(mask):
                kept[mask] = coeff
            else:
                removed += 1
        if removed == 0:
            return self, 0
        return Polynomial._raw(kept), removed

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, assignment: Mapping[int, int]) -> int:
        """Evaluate under a Boolean assignment of the support variables."""
        total = 0
        for mask, coeff in self._terms.items():
            value = coeff
            for var in iter_bits(mask):
                if not assignment[var]:
                    value = 0
                    break
            total += value
        return total

    # -- comparison / formatting ----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            if other == 0:
                return not self._terms
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    def sorted_terms(self, order: MonomialOrder = LEX) -> list[tuple[Monomial, int]]:
        """Terms sorted leading-first according to ``order``."""
        return [(Monomial.from_mask(mask), coeff)
                for mask, coeff in order.sorted_mask_items(self._terms.items())]

    def to_str(self, names=None, order: MonomialOrder = LEX) -> str:
        """Render as a human-readable sum, leading term first."""
        if not self._terms:
            return "0"
        parts: list[str] = []
        for mono, coeff in self.sorted_terms(order):
            if mono.is_constant:
                text = str(abs(coeff))
            else:
                mono_str = mono.to_str(names)
                text = mono_str if abs(coeff) == 1 else f"{abs(coeff)}*{mono_str}"
            sign = "-" if coeff < 0 else "+"
            if not parts:
                parts.append(f"-{text}" if coeff < 0 else text)
            else:
                parts.append(f" {sign} {text}")
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Polynomial({self.to_str()})"

    # -- internal -------------------------------------------------------------

    @classmethod
    def _raw(cls, terms: dict[int, int]) -> "Polynomial":
        """Wrap an already-clean mask-keyed term dict without re-normalising."""
        poly = object.__new__(cls)
        poly._terms = terms
        poly._support = None
        return poly


ZERO = Polynomial.zero()
ONE = Polynomial.constant(1)
