"""Sparse multilinear polynomials with integer coefficients.

A :class:`Polynomial` is a finite sum of terms ``c * M`` where ``c`` is a
Python integer (arbitrary precision, as needed for the ``2^(2n)`` weights of
multiplier specifications) and ``M`` is a :class:`~repro.algebra.monomial.Monomial`
over Boolean variables.  All operations keep the representation multilinear,
i.e. the Boolean ideal ``<x^2 - x>`` is applied implicitly.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from repro.algebra.monomial import Monomial
from repro.algebra.ordering import MonomialOrder, LEX
from repro.errors import AlgebraError


class Polynomial:
    """An immutable sparse polynomial ``c1*M1 + ... + ct*Mt``.

    Terms with zero coefficient are never stored.  The class is designed for
    the two hot operations of the verification flow: term-wise addition and
    substitution of a single variable by another polynomial.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Monomial, int] | None = None) -> None:
        clean: dict[Monomial, int] = {}
        if terms:
            for mono, coeff in terms.items():
                if coeff:
                    if not isinstance(mono, Monomial):
                        mono = Monomial(mono)
                    clean[mono] = clean.get(mono, 0) + coeff
                    if clean[mono] == 0:
                        del clean[mono]
        self._terms = clean

    # -- constructors ---------------------------------------------------------

    @classmethod
    def zero(cls) -> "Polynomial":
        """The zero polynomial."""
        return cls()

    @classmethod
    def constant(cls, value: int) -> "Polynomial":
        """The constant polynomial ``value``."""
        if value == 0:
            return cls()
        return cls({Monomial.ONE: value})

    @classmethod
    def variable(cls, var: int, coefficient: int = 1) -> "Polynomial":
        """The polynomial ``coefficient * x_var``."""
        return cls({Monomial((var,)): coefficient})

    @classmethod
    def term(cls, coefficient: int, variables: Iterable[int]) -> "Polynomial":
        """A single term ``coefficient * prod(variables)``."""
        return cls({Monomial(variables): coefficient})

    @classmethod
    def from_terms(cls, terms: Iterable[tuple[int, Iterable[int]]]) -> "Polynomial":
        """Build from ``(coefficient, variables)`` pairs, summing duplicates."""
        acc: dict[Monomial, int] = {}
        for coeff, variables in terms:
            mono = Monomial(variables)
            acc[mono] = acc.get(mono, 0) + coeff
        return cls(acc)

    # -- basic queries --------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        """Return ``True`` if this is the zero polynomial."""
        return not self._terms

    @property
    def is_constant(self) -> bool:
        """Return ``True`` if the polynomial has no variables."""
        return all(m.is_constant for m in self._terms)

    @property
    def num_terms(self) -> int:
        """Number of monomials with non-zero coefficient (``#M`` per poly)."""
        return len(self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    def __bool__(self) -> bool:
        return bool(self._terms)

    def terms(self) -> Iterator[tuple[Monomial, int]]:
        """Iterate over ``(monomial, coefficient)`` pairs (unordered)."""
        return iter(self._terms.items())

    def monomials(self) -> Iterator[Monomial]:
        """Iterate over the monomials (unordered)."""
        return iter(self._terms.keys())

    def coefficient(self, monomial: Monomial | Iterable[int]) -> int:
        """Coefficient of ``monomial`` (0 if absent)."""
        if not isinstance(monomial, Monomial):
            monomial = Monomial(monomial)
        return self._terms.get(monomial, 0)

    def constant_term(self) -> int:
        """Coefficient of the constant monomial ``1``."""
        return self._terms.get(Monomial.ONE, 0)

    def support(self) -> set[int]:
        """Set of variables appearing in the polynomial (``Vars(p)``)."""
        out: set[int] = set()
        for mono in self._terms:
            out.update(mono)
        return out

    def max_monomial_degree(self) -> int:
        """Largest number of variables in any monomial (``#VM`` statistic)."""
        if not self._terms:
            return 0
        return max(len(m) for m in self._terms)

    def contains_variable(self, var: int) -> bool:
        """Return ``True`` if ``var`` occurs in some monomial."""
        return any(var in mono for mono in self._terms)

    # -- leading term ---------------------------------------------------------

    def leading_monomial(self, order: MonomialOrder = LEX) -> Monomial:
        """``lm(p)`` — the largest monomial w.r.t. ``order``."""
        if not self._terms:
            raise AlgebraError("the zero polynomial has no leading monomial")
        return order.max(self._terms.keys())

    def leading_coefficient(self, order: MonomialOrder = LEX) -> int:
        """``lc(p)`` — the coefficient of the leading monomial."""
        return self._terms[self.leading_monomial(order)]

    def leading_term(self, order: MonomialOrder = LEX) -> tuple[Monomial, int]:
        """``lt(p)`` as a ``(monomial, coefficient)`` pair."""
        mono = self.leading_monomial(order)
        return mono, self._terms[mono]

    # -- arithmetic -----------------------------------------------------------

    def __neg__(self) -> "Polynomial":
        return Polynomial._raw({m: -c for m, c in self._terms.items()})

    def __add__(self, other: "Polynomial | int") -> "Polynomial":
        if isinstance(other, int):
            other = Polynomial.constant(other)
        if len(self._terms) < len(other._terms):
            small, big = self._terms, dict(other._terms)
        else:
            small, big = other._terms, dict(self._terms)
        for mono, coeff in small.items():
            new = big.get(mono, 0) + coeff
            if new:
                big[mono] = new
            else:
                big.pop(mono, None)
        return Polynomial._raw(big)

    __radd__ = __add__

    def __sub__(self, other: "Polynomial | int") -> "Polynomial":
        if isinstance(other, int):
            other = Polynomial.constant(other)
        return self + (-other)

    def __rsub__(self, other: int) -> "Polynomial":
        return Polynomial.constant(other) + (-self)

    def __mul__(self, other: "Polynomial | int") -> "Polynomial":
        if isinstance(other, int):
            if other == 0:
                return Polynomial.zero()
            if other == 1:
                return self
            return Polynomial._raw({m: c * other for m, c in self._terms.items()})
        acc: dict[Monomial, int] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                prod = Monomial(frozenset.__or__(m1, m2))
                new = acc.get(prod, 0) + c1 * c2
                if new:
                    acc[prod] = new
                else:
                    acc.pop(prod, None)
        return Polynomial._raw(acc)

    __rmul__ = __mul__

    def multiply_term(self, coefficient: int, monomial: Monomial) -> "Polynomial":
        """Multiply by a single term ``coefficient * monomial``."""
        if coefficient == 0:
            return Polynomial.zero()
        acc: dict[Monomial, int] = {}
        for mono, coeff in self._terms.items():
            prod = Monomial(frozenset.__or__(mono, monomial))
            new = acc.get(prod, 0) + coeff * coefficient
            if new:
                acc[prod] = new
            else:
                acc.pop(prod, None)
        return Polynomial._raw(acc)

    # -- substitution (the hot path of GB reduction / rewriting) --------------

    def substitute(self, var: int, replacement: "Polynomial") -> "Polynomial":
        """Substitute ``var := replacement`` and return the new polynomial.

        This realises one division (S-polynomial) step against a gate
        polynomial ``-var + tail`` whose leading monomial is the single
        variable ``var``: every occurrence of ``var`` in a monomial is
        replaced by the tail polynomial, with Boolean idempotence applied.
        """
        untouched: dict[Monomial, int] = {}
        acc: dict[Monomial, int] = {}
        rep_terms = replacement._terms
        for mono, coeff in self._terms.items():
            if var not in mono:
                untouched[mono] = untouched.get(mono, 0) + coeff
                continue
            rest = Monomial(frozenset.difference(mono, (var,)))
            for rep_mono, rep_coeff in rep_terms.items():
                prod = Monomial(frozenset.__or__(rest, rep_mono))
                new = acc.get(prod, 0) + coeff * rep_coeff
                if new:
                    acc[prod] = new
                else:
                    acc.pop(prod, None)
        for mono, coeff in untouched.items():
            new = acc.get(mono, 0) + coeff
            if new:
                acc[mono] = new
            else:
                acc.pop(mono, None)
        return Polynomial._raw(acc)

    def substitute_many(self, replacements: Mapping[int, "Polynomial"]) -> "Polynomial":
        """Substitute several variables one after another (arbitrary order)."""
        result = self
        for var, poly in replacements.items():
            result = result.substitute(var, poly)
        return result

    # -- coefficient filtering -------------------------------------------------

    def drop_coefficient_multiples(self, modulus: int) -> "Polynomial":
        """Remove terms whose coefficient is a multiple of ``modulus``.

        This implements the paper's ``r <- r mod 2^(2n)`` step for multiplier
        specifications: terms with coefficients that are multiples of
        ``2^(2n)`` are removed from the remainder.
        """
        if modulus <= 0:
            raise AlgebraError("modulus must be positive")
        return Polynomial._raw(
            {m: c for m, c in self._terms.items() if c % modulus != 0})

    def reduce_coefficients(self, modulus: int) -> "Polynomial":
        """Reduce every coefficient into the symmetric range modulo ``modulus``."""
        if modulus <= 0:
            raise AlgebraError("modulus must be positive")
        acc: dict[Monomial, int] = {}
        half = modulus // 2
        for mono, coeff in self._terms.items():
            red = coeff % modulus
            if red > half:
                red -= modulus
            if red:
                acc[mono] = red
        return Polynomial._raw(acc)

    def filter_monomials(self, keep: Callable[[Monomial], bool]) -> tuple["Polynomial", int]:
        """Keep only monomials for which ``keep`` returns ``True``.

        Returns the filtered polynomial and the number of removed terms
        (used to count cancelled vanishing monomials, ``#CVM``).
        """
        kept: dict[Monomial, int] = {}
        removed = 0
        for mono, coeff in self._terms.items():
            if keep(mono):
                kept[mono] = coeff
            else:
                removed += 1
        if removed == 0:
            return self, 0
        return Polynomial._raw(kept), removed

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, assignment: Mapping[int, int]) -> int:
        """Evaluate under a Boolean assignment of the support variables."""
        total = 0
        for mono, coeff in self._terms.items():
            value = coeff
            for var in mono:
                if not assignment[var]:
                    value = 0
                    break
            total += value
        return total

    # -- comparison / formatting ----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            if other == 0:
                return not self._terms
            other = Polynomial.constant(other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    def sorted_terms(self, order: MonomialOrder = LEX) -> list[tuple[Monomial, int]]:
        """Terms sorted leading-first according to ``order``."""
        return sorted(self._terms.items(), key=lambda kv: order.key(kv[0]),
                      reverse=True)

    def to_str(self, names=None, order: MonomialOrder = LEX) -> str:
        """Render as a human-readable sum, leading term first."""
        if not self._terms:
            return "0"
        parts: list[str] = []
        for mono, coeff in self.sorted_terms(order):
            if mono.is_constant:
                text = str(abs(coeff))
            else:
                mono_str = mono.to_str(names)
                text = mono_str if abs(coeff) == 1 else f"{abs(coeff)}*{mono_str}"
            sign = "-" if coeff < 0 else "+"
            if not parts:
                parts.append(f"-{text}" if coeff < 0 else text)
            else:
                parts.append(f" {sign} {text}")
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Polynomial({self.to_str()})"

    # -- internal -------------------------------------------------------------

    @classmethod
    def _raw(cls, terms: dict[Monomial, int]) -> "Polynomial":
        """Wrap an already-clean term dict without re-normalising."""
        poly = object.__new__(cls)
        poly._terms = terms
        return poly


ZERO = Polynomial.zero()
ONE = Polynomial.constant(1)
