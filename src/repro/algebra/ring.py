"""Polynomial ring bookkeeping: variable names and their total order.

A :class:`PolynomialRing` maps symbolic signal names to integer variable
indices.  The *index* doubles as the position in the variable order used by
the lexicographic monomial order: a larger index means a larger variable.
The circuit modelling layer assigns indices so that every gate output is
larger than all of its transitive inputs (reverse topological order), which
makes the extracted gate polynomials a Gröbner basis by construction.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.algebra.monomial import Monomial
from repro.algebra.polynomial import Polynomial
from repro.errors import AlgebraError


class PolynomialRing:
    """A ring ``Z[x_0, ..., x_{n-1}]`` over named Boolean variables."""

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._names: list[str] = []
        self._index: dict[str, int] = {}
        for name in names:
            self.add_variable(name)

    # -- variable management --------------------------------------------------

    @classmethod
    def from_ordered(cls, names: Iterable[str]) -> "PolynomialRing":
        """Build a ring from an already-ordered name sequence in one shot.

        Equivalent to adding the names one by one, without the per-variable
        duplicate probing — model extraction creates thousands of variables
        at once from a validated topological order.
        """
        ring = cls()
        ring._names = ordered = list(names)
        ring._index = {name: index for index, name in enumerate(ordered)}
        if len(ring._index) != len(ordered):
            raise AlgebraError("duplicate variable names")
        return ring

    def add_variable(self, name: str) -> int:
        """Append ``name`` as the new largest variable and return its index."""
        if name in self._index:
            raise AlgebraError(f"variable {name!r} already exists")
        index = len(self._names)
        self._names.append(name)
        self._index[name] = index
        return index

    def extend(self, names: Iterable[str]) -> list[int]:
        """Add several variables in the given (ascending) order."""
        return [self.add_variable(name) for name in names]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._names)

    @property
    def num_variables(self) -> int:
        """Number of variables in the ring."""
        return len(self._names)

    def index(self, name: str) -> int:
        """Index (order position) of a variable name."""
        try:
            return self._index[name]
        except KeyError:
            raise AlgebraError(f"unknown variable {name!r}") from None

    def name(self, index: int) -> str:
        """Name of the variable with the given index."""
        try:
            return self._names[index]
        except IndexError:
            raise AlgebraError(f"unknown variable index {index}") from None

    def names(self) -> Iterator[str]:
        """Iterate over variable names in ascending order of index."""
        return iter(self._names)

    def indices(self, names: Iterable[str]) -> list[int]:
        """Map several names to indices."""
        return [self.index(name) for name in names]

    # -- polynomial construction ----------------------------------------------

    def variable(self, name: str, coefficient: int = 1) -> Polynomial:
        """The polynomial ``coefficient * name``."""
        return Polynomial.variable(self.index(name), coefficient)

    def monomial(self, names: Iterable[str]) -> Monomial:
        """Monomial over the given variable names."""
        return Monomial(self.index(name) for name in names)

    def polynomial(self, terms: Iterable[tuple[int, Iterable[str]]]) -> Polynomial:
        """Build a polynomial from ``(coefficient, variable-names)`` terms."""
        return Polynomial.from_terms(
            (coeff, (self.index(n) for n in names)) for coeff, names in terms)

    def render(self, poly: Polynomial) -> str:
        """Pretty-print a polynomial with this ring's variable names."""
        return poly.to_str(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PolynomialRing({len(self._names)} variables)"
