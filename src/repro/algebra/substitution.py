"""The occurrence-indexed incremental substitution engine.

Every step of the membership-testing flow — Gröbner-basis reduction
(Algorithm 1), the rewriting passes (Algorithms 2/3) and the vanishing-rule
filtering that runs between their substitutions — is at heart the same
operation: replace a single variable by its defining tail inside a working
set of terms.  This module provides that one kernel.

A :class:`SubstitutionEngine` owns a mask-keyed term map (``dict[int, int]``
from packed monomial bitmasks to integer coefficients, see
:mod:`repro.algebra.monomial`) together with an incrementally maintained
*occurrence index*: for every candidate variable, the set of term masks that
currently contain it.  Substituting ``x := tail`` therefore enumerates only
the terms that actually contain ``x`` (one index lookup) instead of scanning
the whole term map — the per-substitution cost drops from ``O(#terms)`` to
``O(#occurrences of x)``, which is the dominant asymptotic improvement
available to the reduction of wide multipliers where the remainder holds
thousands of terms but each variable appears in a handful of them.

The index is *adaptive* in both directions.  Maintaining it costs a few
dictionary operations per candidate variable of every created or cancelled
term, which is pure overhead while the term map is small enough that a
linear scan is essentially free — so the engine runs in scan mode below
:data:`INDEX_THRESHOLD` terms (tracking only a cheap superset of the live
support, so substituting an absent variable is a single bit test) and
builds the index when the map outgrows the threshold.  And because a term
population *dense* in candidate variables (e.g. the MT-FO remainder, whose
terms each carry many live fanout variables) makes the upkeep cost more
than the scans it avoids, every indexed substitution meters its index
operations against the avoided scan and the engine demotes itself back to
scan mode when the upkeep keeps losing.  Rewriting tails stay small and
never pay for the index; the MT-LR reduction remainder of a wide
multiplier (sparse in candidates — mostly primary inputs) crosses the
threshold early and runs indexed to the end.

Only variables inside the engine's ``index_mask`` are substitution
candidates (primary inputs, for example, are never substituted during GB
reduction), so the indexed bookkeeping per created term is proportional to
the number of *candidate* variables it contains, not its total degree.
Once a variable has been substituted it can be *retired* — dropped from the
candidate set — because the consumer-first substitution orders used by the
verification flow guarantee an eliminated variable is never re-introduced.

Optional per-substitution services, enabled per engine:

* **vanishing-rule filtering** — terms are tested against a
  vanishing-monomial oracle (any object with ``is_vanishing_mask(mask)``, a
  ``removed_count`` attribute and an optional public ``cache`` memo, i.e.
  :class:`repro.verification.vanishing.VanishingRules`) and cancelled on the
  spot.  In indexed mode only newly created terms are tested — vanishing is
  a property of the monomial mask alone, so terms that survived an earlier
  test never vanish later.
* **coefficient-modulus dropping** — terms whose coefficient became a
  multiple of the specification modulus (``2^(2n)`` for multipliers) are
  removed after every substitution.
* **growth-limited (transactional) substitution** — the anti-blow-up guard
  of common rewriting: when the substitution would grow the term map beyond
  its limit, the step is discarded (scan mode builds the candidate out of
  place; indexed mode rolls the journal back) and the engine reports the
  rejection so the caller can keep the variable in the model instead.
"""

from __future__ import annotations

from typing import Iterable, Mapping

#: Term-map size at which the occurrence index starts paying for itself;
#: below it a linear scan per substitution is cheaper than index upkeep.
INDEX_THRESHOLD = 64

#: Average candidate variables per term above which the index is refused:
#: upkeep scales with candidate bits per created term, so dense populations
#: (MT-FO remainders sit far above this; MT-LR remainders far below) are
#: served better by linear scans.
INDEX_DENSITY_LIMIT = 2.0


class SubstitutionEngine:
    """One working term map plus its variable→terms occurrence index.

    Parameters
    ----------
    terms:
        Initial term map: a ``Mapping`` or iterable of
        ``(mask, coefficient)`` pairs; the engine takes a private copy.
    index_mask:
        Bitmask of the substitution-candidate variables.  Substituting a
        variable outside the mask is reported as absent, so callers must
        include every variable they intend to substitute.
    vanishing:
        Optional vanishing-monomial oracle (duck-typed
        ``is_vanishing_mask``/``removed_count``/``cache``); when present,
        vanishing terms are removed after every substitution and the
        removals accumulate into ``vanishing.removed_count`` (the ``#CVM``
        statistic).
    coefficient_modulus:
        Optional modulus; terms whose coefficient becomes a multiple of it
        are dropped after every substitution.  Power-of-two moduli use a
        bitwise-AND fast path.

    The cumulative counters (`substitutions`, `affected_terms`,
    `vanishing_removed`, `modulus_removed`, `rejected_substitutions`,
    `peak_terms`) survive :meth:`reset` so one engine can report statistics
    for a whole rewriting pass that processes many tails.
    """

    __slots__ = ("terms", "vanishing", "_occ", "_indexed", "_index_mask",
                 "_support", "_modulus", "_low_bits", "_index_debt",
                 "_reindex_floor", "substitutions", "affected_terms",
                 "vanishing_removed", "modulus_removed",
                 "rejected_substitutions", "peak_terms")

    def __init__(self,
                 terms: Mapping[int, int] | Iterable[tuple[int, int]] = (),
                 index_mask: int = 0, *,
                 vanishing=None,
                 coefficient_modulus: int | None = None) -> None:
        self.vanishing = vanishing
        self._modulus = coefficient_modulus
        # Power-of-two moduli (the ``2^(2n)`` of multiplier specs) reduce the
        # multiple-of-modulus test to a bitwise AND on the low bits.
        self._low_bits = (coefficient_modulus - 1
                          if coefficient_modulus is not None
                          and coefficient_modulus & (coefficient_modulus - 1) == 0
                          else None)
        self.substitutions = 0
        self.affected_terms = 0
        self.vanishing_removed = 0
        self.modulus_removed = 0
        self.rejected_substitutions = 0
        self.peak_terms = 0
        self.terms: dict[int, int] = {}
        self._occ: dict[int, set[int]] = {}
        self._indexed = False
        self._index_mask = 0
        self._support = 0
        self.reset(terms, index_mask)

    # -- loading / lifecycle ---------------------------------------------------

    def reset(self, terms: Mapping[int, int] | Iterable[tuple[int, int]],
              index_mask: int) -> None:
        """Load a fresh term map and rebuild the index (or support superset).

        The cumulative statistics counters are *not* cleared, so a rewriting
        pass can reuse one engine across many tails and report pass-level
        totals.  The previous term dict is abandoned (callers that wrapped it
        in a :class:`~repro.algebra.polynomial.Polynomial` keep sole
        ownership).
        """
        self.terms = dict(terms)
        self._index_mask = index_mask
        self._index_debt = 0.0
        self._reindex_floor = INDEX_THRESHOLD
        if index_mask and len(self.terms) >= INDEX_THRESHOLD:
            self._build_index()
        else:
            self._occ = {}
            self._indexed = False
            support = 0
            for mask in self.terms:
                support |= mask
            self._support = support

    def _build_index(self) -> None:
        """Build the occurrence index — or refuse, if the population is dense.

        The candidate-bit density is measured in the same pass that would
        build the buckets; refusing costs one popcount per term and raises
        the re-engage floor so the probe is not repeated on every
        substitution.
        """
        terms = self.terms
        index_mask = self._index_mask
        support = 0
        total_candidate_bits = 0
        for mask in terms:
            support |= mask
            total_candidate_bits += (mask & index_mask).bit_count()
        if terms and total_candidate_bits > INDEX_DENSITY_LIMIT * len(terms):
            self._occ = {}
            self._indexed = False
            self._index_debt = 0.0
            self._support = support
            self._reindex_floor = max(self._reindex_floor, 4 * len(terms))
            return
        occ: dict[int, set[int]] = {}
        for mask in terms:
            candidates = mask & index_mask
            while candidates:
                low = candidates & -candidates
                candidates ^= low
                var = low.bit_length() - 1
                bucket = occ.get(var)
                if bucket is None:
                    occ[var] = {mask}
                else:
                    bucket.add(mask)
        self._occ = occ
        self._indexed = True
        self._index_debt = 0.0

    def _drop_index(self) -> None:
        """Fall back to scan mode after the index proved uneconomical.

        Dense term populations (e.g. the MT-FO remainder, whose terms carry
        many live fanout variables each) make the per-term index upkeep cost
        more than the linear scans it avoids.  The re-engage floor rises so
        the engine does not thrash between modes.
        """
        self._occ = {}
        self._indexed = False
        self._index_debt = 0.0
        self._reindex_floor = max(self._reindex_floor, 4 * len(self.terms))
        support = 0
        for mask in self.terms:
            support |= mask
        self._support = support

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.terms)

    @property
    def indexed(self) -> bool:
        """Whether the occurrence index is currently engaged."""
        return self._indexed

    def occurrences(self, var: int) -> int:
        """Number of terms currently containing the candidate variable."""
        if self._indexed:
            bucket = self._occ.get(var)
            return len(bucket) if bucket else 0
        bit = 1 << var
        return sum(1 for mask in self.terms if mask & bit)

    def contains(self, var: int) -> bool:
        """Return ``True`` if the candidate variable occurs in some term."""
        if self._indexed:
            return bool(self._occ.get(var))
        bit = 1 << var
        return any(mask & bit for mask in self.terms)

    def active_variables(self) -> list[int]:
        """Candidate variables with at least one occurrence, ascending."""
        if self._indexed:
            return sorted(var for var, bucket in self._occ.items() if bucket)
        support = 0
        for mask in self.terms:
            support |= mask
        self._support = support
        active = []
        candidates = support & self._index_mask
        while candidates:
            low = candidates & -candidates
            candidates ^= low
            active.append(low.bit_length() - 1)
        return active

    def support_mask(self) -> int:
        """Bitmask of all variables over the current terms (full scan)."""
        support = 0
        for mask in self.terms:
            support |= mask
        return support

    # -- index maintenance -----------------------------------------------------

    def unindex(self, var: int) -> None:
        """Stop tracking a variable (it was decided to keep, not substitute)."""
        self._index_mask &= ~(1 << var)
        if self._indexed:
            self._occ.pop(var, None)

    # -- vanishing sweep -------------------------------------------------------

    @staticmethod
    def find_vanishing(masks: Iterable[int], vanishing) -> list[int]:
        """Masks from ``masks`` the oracle reports as vanishing.

        The oracle's public ``cache`` (mask → verdict memo) is probed inline
        when available, so re-sweeping already-tested terms costs one dict
        lookup each.  Shared by :meth:`prune_vanishing`, the scan-mode
        substitution path, and the polynomial-level filtering of
        :meth:`repro.verification.vanishing.VanishingRules.remove_vanishing`.
        """
        is_vanishing_mask = vanishing.is_vanishing_mask
        cache = getattr(vanishing, "cache", None)
        if cache is None:
            return [mask for mask in masks if is_vanishing_mask(mask)]
        cache_get = cache.get
        doomed = []
        for mask in masks:
            verdict = cache_get(mask)
            if verdict is None:
                verdict = is_vanishing_mask(mask)
            if verdict:
                doomed.append(mask)
        return doomed

    def prune_vanishing(self) -> int:
        """Remove every vanishing monomial currently in the term map.

        This is the full sweep, run right after :meth:`reset`; afterwards
        the engine keeps the map vanishing-free after every substitution.
        Returns the number of removed terms and accumulates it into
        ``vanishing.removed_count``.
        """
        vanishing = self.vanishing
        if vanishing is None:
            return 0
        terms = self.terms
        doomed = self.find_vanishing(terms, vanishing)
        if doomed:
            for mask in doomed:
                del terms[mask]
            if self._indexed:
                occ = self._occ
                index_mask = self._index_mask
                for mask in doomed:
                    candidates = mask & index_mask
                    while candidates:
                        low = candidates & -candidates
                        candidates ^= low
                        bucket = occ.get(low.bit_length() - 1)
                        if bucket is not None:
                            bucket.discard(mask)
        vanishing.removed_count += len(doomed)
        self.vanishing_removed += len(doomed)
        return len(doomed)

    # -- the substitution kernel -----------------------------------------------

    def substitute(self, var: int, replacement: list[tuple[int, int]],
                   growth_limit: int | None = None,
                   retire: bool = False) -> int:
        """Substitute ``var := replacement`` in place; return #affected terms.

        ``replacement`` is a reusable sequence of ``(mask, coefficient)``
        pairs of the tail polynomial.  In indexed mode only the terms listed
        in the occurrence index under ``var`` are visited; in scan mode the
        (small) term map is scanned, guarded by a support-superset bit test
        so substituting an absent variable costs ``O(1)``.

        With ``retire=True`` the variable is dropped from the candidate set
        after the substitution — valid whenever the caller's substitution
        order guarantees the variable cannot be re-introduced (true for both
        the reduction schedule and the rewriting passes).

        With a ``growth_limit``, the substitution is transactional: if the
        resulting term count exceeds ``max(growth_limit, 4 * previous
        count)`` the step is discarded (terms, index, and statistics —
        including any vanishing removals found while evaluating the
        candidate — are untouched) and ``-1`` is returned so the caller can
        keep the variable instead.  (The verification flow never combines a
        growth limit with a vanishing oracle — common rewriting runs
        without the oracle — so full rollback is the defining semantics,
        not a compatibility constraint.)
        """
        if self._indexed:
            result = self._substitute_indexed(var, replacement, growth_limit,
                                              retire)
        else:
            result = self._substitute_scan(var, replacement, growth_limit,
                                           retire)
            if (result > 0 and not self._indexed and self._index_mask
                    and len(self.terms) >= self._reindex_floor):
                self._build_index()
        if result > 0:
            self.substitutions += 1
            self.affected_terms += result
            size = len(self.terms)
            if size > self.peak_terms:
                self.peak_terms = size
        elif result < 0:
            self.rejected_substitutions += 1
        return result

    def _substitute_scan(self, var: int, replacement: list[tuple[int, int]],
                         growth_limit: int | None, retire: bool) -> int:
        bit = 1 << var
        # ``_support`` is a superset of the live support (bits are never
        # cleared); a stale bit only costs one scan that finds no terms.
        if not self._support & bit:
            if retire:
                self._index_mask &= ~bit
            return 0
        terms = self.terms
        affected = [(mask, coeff) for mask, coeff in terms.items()
                    if mask & bit]
        if not affected:
            # The bit was stale; re-tighten the support superset so later
            # stale variables do not trigger another full scan each.
            support = 0
            for mask in terms:
                support |= mask
            self._support = support
            if retire:
                self._index_mask &= ~bit
            return 0
        size_before = len(terms)
        keep = ~bit
        support = self._support & keep
        modulus = self._modulus

        if growth_limit is None:
            for mask, _ in affected:
                del terms[mask]
            target = terms
        else:
            # Transactional: build the candidate out of place so a rejected
            # step leaves the working map untouched.
            target = {mask: coeff for mask, coeff in terms.items()
                      if not mask & bit}
        get = target.get
        touched: list[int] | None = [] if modulus is not None else None
        if touched is None:
            for mask, coeff in affected:
                rest = mask & keep
                for rep_mask, rep_coeff in replacement:
                    prod = rest | rep_mask
                    new = get(prod, 0) + coeff * rep_coeff
                    if new:
                        target[prod] = new
                        support |= prod
                    else:
                        del target[prod]
        else:
            append = touched.append
            for mask, coeff in affected:
                rest = mask & keep
                for rep_mask, rep_coeff in replacement:
                    prod = rest | rep_mask
                    new = get(prod, 0) + coeff * rep_coeff
                    if new:
                        target[prod] = new
                        support |= prod
                        append(prod)
                    else:
                        del target[prod]

        vanishing = self.vanishing
        if vanishing is not None:
            doomed = self.find_vanishing(target, vanishing)
            for mask in doomed:
                del target[mask]
        else:
            doomed = ()
        removed_modulus = 0
        if touched is not None:
            # Only the touched coefficients changed; untouched terms were
            # already filtered when they last changed.
            low_bits = self._low_bits
            if low_bits is not None:
                for prod in touched:
                    coeff = get(prod)
                    if coeff is not None and not coeff & low_bits:
                        del target[prod]
                        removed_modulus += 1
            else:
                for prod in touched:
                    coeff = get(prod)
                    if coeff is not None and coeff % modulus == 0:
                        del target[prod]
                        removed_modulus += 1

        if growth_limit is not None:
            if len(target) > max(growth_limit, 4 * size_before):
                return -1
            self.terms = target
        if doomed:
            vanishing.removed_count += len(doomed)
            self.vanishing_removed += len(doomed)
        self.modulus_removed += removed_modulus
        self._support = support
        if retire:
            self._index_mask &= ~bit
        return len(affected)

    def _substitute_indexed(self, var: int, replacement: list[tuple[int, int]],
                            growth_limit: int | None, retire: bool) -> int:
        occ = self._occ
        bucket = occ.get(var)
        if not bucket:
            if retire:
                self.unindex(var)
            return 0
        terms = self.terms
        size_before = len(terms)
        pop = terms.pop
        affected = [(mask, pop(mask)) for mask in bucket]

        # ``journal`` records the pre-step coefficient (``None`` = absent) of
        # every key the step writes: it drives the index update, the
        # created-term vanishing tests, the modulus filtering, and — for
        # growth-limited substitutions — the rollback.  ``created`` lists the
        # keys that did not exist before the step.
        journal: dict[int, int | None] = dict(affected)
        created: list[int] = []

        keep = ~(1 << var)
        get = terms.get
        for mask, coeff in affected:
            rest = mask & keep
            for rep_mask, rep_coeff in replacement:
                prod = rest | rep_mask
                old = get(prod)
                if prod not in journal:
                    journal[prod] = old
                    if old is None:
                        created.append(prod)
                if old is None:
                    # Coefficients are never stored as zero, so the product
                    # of two of them cannot cancel on creation.
                    terms[prod] = coeff * rep_coeff
                else:
                    new = old + coeff * rep_coeff
                    if new:
                        terms[prod] = new
                    else:
                        del terms[prod]

        # Vanishing-rule filtering of the newly created terms.  Terms that
        # already existed have survived an earlier test (vanishing depends
        # only on the mask), so they are skipped.
        removed_vanishing = 0
        vanishing = self.vanishing
        if vanishing is not None and created:
            is_vanishing_mask = vanishing.is_vanishing_mask
            for prod in created:
                if prod in terms and is_vanishing_mask(prod):
                    del terms[prod]
                    removed_vanishing += 1

        # Modulus filtering of the touched coefficients; untouched terms were
        # already filtered when they last changed.
        removed_modulus = 0
        modulus = self._modulus
        if modulus is not None:
            low_bits = self._low_bits
            if low_bits is not None:
                for prod in journal:
                    coeff = get(prod)
                    if coeff is not None and not coeff & low_bits:
                        del terms[prod]
                        removed_modulus += 1
            else:
                for prod in journal:
                    coeff = get(prod)
                    if coeff is not None and coeff % modulus == 0:
                        del terms[prod]
                        removed_modulus += 1

        if growth_limit is not None and len(terms) > max(growth_limit,
                                                         4 * size_before):
            # Roll the whole step back: restore every journaled key.
            for key, old in journal.items():
                if old is None:
                    terms.pop(key, None)
                else:
                    terms[key] = old
            return -1

        # Commit: bring the occurrence index in line with the journal,
        # metering the upkeep (``index_ops``) against the full scan the
        # index saved (``len(terms)``) so a term population too dense in
        # candidate variables demotes the engine back to scan mode.
        index_ops = len(journal)
        index_mask = self._index_mask
        if retire:
            index_mask &= ~(1 << var)
            self._index_mask = index_mask
            occ.pop(var, None)
        if index_mask:
            for key, old in journal.items():
                if old is None:
                    if key in terms:
                        candidates = key & index_mask
                        index_ops += candidates.bit_count()
                        while candidates:
                            low = candidates & -candidates
                            candidates ^= low
                            slot = low.bit_length() - 1
                            entry = occ.get(slot)
                            if entry is None:
                                occ[slot] = {key}
                            else:
                                entry.add(key)
                elif key not in terms:
                    candidates = key & index_mask
                    index_ops += candidates.bit_count()
                    while candidates:
                        low = candidates & -candidates
                        candidates ^= low
                        entry = occ.get(low.bit_length() - 1)
                        if entry is not None:
                            entry.discard(key)

        if removed_vanishing:
            vanishing.removed_count += removed_vanishing
            self.vanishing_removed += removed_vanishing
        self.modulus_removed += removed_modulus

        size = len(terms)
        if index_ops > size:
            # Upkeep cost exceeded the avoided scan; a few such steps in a
            # row mean the index is a net loss for this population.
            self._index_debt += index_ops / size - 1.0 if size else 1.0
            if self._index_debt > 4.0:
                self._drop_index()
        else:
            self._index_debt = 0.0
        return len(affected)
