"""The occurrence-indexed incremental substitution engine.

Every step of the membership-testing flow — Gröbner-basis reduction
(Algorithm 1), the rewriting passes (Algorithms 2/3) and the vanishing-rule
filtering that runs between their substitutions — is at heart the same
operation: replace a single variable by its defining tail inside a working
set of terms.  This module provides that one kernel.

A :class:`SubstitutionEngine` owns a mask-keyed term map (``dict[int, int]``
from packed monomial bitmasks to integer coefficients, see
:mod:`repro.algebra.monomial`) together with an incrementally maintained
*occurrence index*: for every candidate variable, the set of term masks that
currently contain it.  Substituting ``x := tail`` therefore enumerates only
the terms that actually contain ``x`` (one index lookup) instead of scanning
the whole term map — the per-substitution cost drops from ``O(#terms)`` to
``O(#occurrences of x)``, which is the dominant asymptotic improvement
available to the reduction of wide multipliers where the remainder holds
thousands of terms but each variable appears in a handful of them.

The index is *adaptive* in both directions.  Maintaining it costs a few
dictionary operations per candidate variable of every created or cancelled
term, which is pure overhead while the term map is small enough that a
linear scan is essentially free — so the engine runs in scan mode below
:data:`INDEX_THRESHOLD` terms (tracking only a cheap superset of the live
support, so substituting an absent variable is a single bit test) and
builds the index when the map outgrows the threshold.  And because a term
population *dense* in candidate variables (e.g. the MT-FO remainder, whose
terms each carry many live fanout variables) makes the upkeep cost more
than the scans it avoids, every indexed substitution meters its index
operations against the avoided scan and the engine demotes itself back to
scan mode when the upkeep keeps losing.  Rewriting tails stay small and
never pay for the index; the MT-LR reduction remainder of a wide
multiplier (sparse in candidates — mostly primary inputs) crosses the
threshold early and runs indexed to the end.

Only variables inside the engine's ``index_mask`` are substitution
candidates (primary inputs, for example, are never substituted during GB
reduction), so the indexed bookkeeping per created term is proportional to
the number of *candidate* variables it contains, not its total degree.
Once a variable has been substituted it can be *retired* — dropped from the
candidate set — because the consumer-first substitution orders used by the
verification flow guarantee an eliminated variable is never re-introduced.

Optional per-substitution services, enabled per engine:

* **vanishing-rule filtering** — terms are tested against a
  vanishing-monomial oracle (any object with ``is_vanishing_mask(mask)``, a
  ``removed_count`` attribute and an optional public ``cache`` memo, i.e.
  :class:`repro.verification.vanishing.VanishingRules`) and cancelled on the
  spot.  In indexed mode only newly created terms are tested — vanishing is
  a property of the monomial mask alone, so terms that survived an earlier
  test never vanish later.
* **coefficient-modulus dropping** — terms whose coefficient became a
  multiple of the specification modulus (``2^(2n)`` for multipliers) are
  removed after every substitution.
* **growth-limited (transactional) substitution** — the anti-blow-up guard
  of common rewriting: when the substitution would grow the term map beyond
  its limit, the step is discarded (scan mode builds the candidate out of
  place; indexed mode rolls the journal back) and the engine reports the
  rejection so the caller can keep the variable in the model instead.

Beyond the single-variable kernel, :meth:`SubstitutionEngine.substitute_batch`
inlines a whole ready level of the substitution order in one pass.  Its
semantics are exactly the equivalent sequence of single-variable
:meth:`~SubstitutionEngine.substitute` calls (same term evolution, same
vanishing/modulus filtering per step, same statistics), but the fused
indexed path defers all occurrence-index deletions to one commit at the end
of the batch: terms destroyed mid-batch are never unlinked from their
buckets (a liveness filter at consumption time replaces the eager delete),
terms created mid-batch are linked only under the batch variables still
awaiting substitution, and — because every batch variable is retired — the
per-step bucket teardown disappears entirely.
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping, Sequence

from repro.algebra.monomial import union_mask

#: Term-map size at which the occurrence index starts paying for itself;
#: below it a linear scan per substitution is cheaper than index upkeep.
INDEX_THRESHOLD = 64

#: Average candidate variables per term above which the index is refused:
#: upkeep scales with candidate bits per created term, so dense populations
#: (MT-FO remainders sit far above this; MT-LR remainders far below) are
#: served better by linear scans.
INDEX_DENSITY_LIMIT = 2.0


class SubstitutionEngine:
    """One working term map plus its variable→terms occurrence index.

    Parameters
    ----------
    terms:
        Initial term map: a ``Mapping`` or iterable of
        ``(mask, coefficient)`` pairs; the engine takes a private copy.
    index_mask:
        Bitmask of the substitution-candidate variables.  Substituting a
        variable outside the mask is reported as absent, so callers must
        include every variable they intend to substitute.
    vanishing:
        Optional vanishing-monomial oracle (duck-typed
        ``is_vanishing_mask``/``removed_count``/``cache``); when present,
        vanishing terms are removed after every substitution and the
        removals accumulate into ``vanishing.removed_count`` (the ``#CVM``
        statistic).
    coefficient_modulus:
        Optional modulus; terms whose coefficient becomes a multiple of it
        are dropped after every substitution.  Power-of-two moduli use a
        bitwise-AND fast path.

    The cumulative counters (`substitutions`, `affected_terms`,
    `vanishing_removed`, `modulus_removed`, `rejected_substitutions`,
    `peak_terms`) survive :meth:`reset` so one engine can report statistics
    for a whole rewriting pass that processes many tails.
    """

    __slots__ = ("terms", "vanishing", "_occ", "_indexed", "_index_mask",
                 "_support", "_modulus", "_low_bits", "_index_debt",
                 "_reindex_floor", "substitutions", "affected_terms",
                 "vanishing_removed", "modulus_removed",
                 "rejected_substitutions", "peak_terms", "batches",
                 "batch_steps")

    def __init__(self,
                 terms: Mapping[int, int] | Iterable[tuple[int, int]] = (),
                 index_mask: int = 0, *,
                 vanishing=None,
                 coefficient_modulus: int | None = None) -> None:
        self.vanishing = vanishing
        self._modulus = coefficient_modulus
        # Power-of-two moduli (the ``2^(2n)`` of multiplier specs) reduce the
        # multiple-of-modulus test to a bitwise AND on the low bits.
        self._low_bits = (coefficient_modulus - 1
                          if coefficient_modulus is not None
                          and coefficient_modulus & (coefficient_modulus - 1) == 0
                          else None)
        self.substitutions = 0
        self.affected_terms = 0
        self.vanishing_removed = 0
        self.modulus_removed = 0
        self.rejected_substitutions = 0
        self.peak_terms = 0
        self.batches = 0
        self.batch_steps = 0
        self.terms: dict[int, int] = {}
        self._occ: dict[int, set[int]] = {}
        self._indexed = False
        self._index_mask = 0
        self._support = 0
        self.reset(terms, index_mask)

    # -- loading / lifecycle ---------------------------------------------------

    def reset(self, terms: Mapping[int, int] | Iterable[tuple[int, int]],
              index_mask: int, support_mask: int | None = None) -> None:
        """Load a fresh term map and rebuild the index (or support superset).

        The cumulative statistics counters are *not* cleared, so a rewriting
        pass can reuse one engine across many tails and report pass-level
        totals.  The previous term dict is abandoned (callers that wrapped it
        in a :class:`~repro.algebra.polynomial.Polynomial` keep sole
        ownership).  ``support_mask`` lets callers that already know the
        loaded map's support (e.g. a polynomial's cached support) skip the
        recomputation scan.
        """
        self.terms = dict(terms)
        self._index_mask = index_mask
        self._index_debt = 0.0
        self._reindex_floor = INDEX_THRESHOLD
        if index_mask and len(self.terms) >= INDEX_THRESHOLD:
            self._build_index()
        elif support_mask is not None:
            self._occ = {}
            self._indexed = False
            self._support = support_mask
        else:
            self._occ = {}
            self._indexed = False
            self._support = union_mask(self.terms)

    def _build_index(self) -> None:
        """Build the occurrence index — or refuse, if the population is dense.

        The candidate-bit density is measured in the same pass that would
        build the buckets; refusing costs one popcount per term and raises
        the re-engage floor so the probe is not repeated on every
        substitution.
        """
        terms = self.terms
        index_mask = self._index_mask
        support = 0
        total_candidate_bits = 0
        for mask in terms:
            support |= mask
            total_candidate_bits += (mask & index_mask).bit_count()
        if terms and total_candidate_bits > INDEX_DENSITY_LIMIT * len(terms):
            self._occ = {}
            self._indexed = False
            self._index_debt = 0.0
            self._support = support
            self._reindex_floor = max(self._reindex_floor, 4 * len(terms))
            return
        occ: dict[int, set[int]] = {}
        for mask in terms:
            candidates = mask & index_mask
            while candidates:
                low = candidates & -candidates
                candidates ^= low
                var = low.bit_length() - 1
                bucket = occ.get(var)
                if bucket is None:
                    occ[var] = {mask}
                else:
                    bucket.add(mask)
        self._occ = occ
        self._indexed = True
        self._index_debt = 0.0
        # The support computed by the density probe is committed on *every*
        # exit: ``candidate_superset`` and the load-time vanishing sweep
        # read it regardless of the indexing mode.
        self._support = support

    def _drop_index(self) -> None:
        """Fall back to scan mode after the index proved uneconomical.

        Dense term populations (e.g. the MT-FO remainder, whose terms carry
        many live fanout variables each) make the per-term index upkeep cost
        more than the linear scans it avoids.  The re-engage floor rises so
        the engine does not thrash between modes.
        """
        self._occ = {}
        self._indexed = False
        self._index_debt = 0.0
        self._reindex_floor = max(self._reindex_floor, 4 * len(self.terms))
        self._support = union_mask(self.terms)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.terms)

    @property
    def indexed(self) -> bool:
        """Whether the occurrence index is currently engaged."""
        return self._indexed

    def occurrences(self, var: int) -> int:
        """Number of terms currently containing the candidate variable."""
        if self._indexed:
            bucket = self._occ.get(var)
            return len(bucket) if bucket else 0
        bit = 1 << var
        return sum(1 for mask in self.terms if mask & bit)

    def contains(self, var: int) -> bool:
        """Return ``True`` if the candidate variable occurs in some term."""
        if self._indexed:
            return bool(self._occ.get(var))
        bit = 1 << var
        return any(mask & bit for mask in self.terms)

    def active_variables(self) -> list[int]:
        """Candidate variables with at least one occurrence, ascending."""
        if self._indexed:
            return sorted(var for var, bucket in self._occ.items() if bucket)
        support = self._support = union_mask(self.terms)
        active = []
        candidates = support & self._index_mask
        while candidates:
            low = candidates & -candidates
            candidates ^= low
            active.append(low.bit_length() - 1)
        return active

    def support_mask(self) -> int:
        """Bitmask of all variables over the current terms (full scan)."""
        return union_mask(self.terms)

    def candidate_superset(self) -> int:
        """Superset of the candidate variables possibly present — no scan.

        Built from the support superset, so a set bit may be stale (its
        variable already cancelled out); substituting such a variable is a
        cheap no-op.  Every substituted-and-retired (or unindexed) variable
        leaves the mask, so callers looping until the mask empties always
        terminate.
        """
        return self._support & self._index_mask

    # -- index maintenance -----------------------------------------------------

    def unindex(self, var: int) -> None:
        """Stop tracking a variable (it was decided to keep, not substitute)."""
        self._index_mask &= ~(1 << var)
        if self._indexed:
            self._occ.pop(var, None)

    # -- vanishing sweep -------------------------------------------------------

    @staticmethod
    def find_vanishing(masks: Iterable[int], vanishing) -> list[int]:
        """Masks from ``masks`` the oracle reports as vanishing.

        The oracle's public ``cache`` (mask → verdict memo) is probed inline
        when available, so re-sweeping already-tested terms costs one dict
        lookup each.  Shared by :meth:`prune_vanishing`, the scan-mode
        substitution path, and the polynomial-level filtering of
        :meth:`repro.verification.vanishing.VanishingRules.remove_vanishing`.
        """
        is_vanishing_mask = vanishing.is_vanishing_mask
        cache = getattr(vanishing, "cache", None)
        if cache is None:
            return [mask for mask in masks if is_vanishing_mask(mask)]
        # Masks disjoint from the oracle's relevance support cannot vanish;
        # one AND skips both the probe and the call for them.
        relevant = getattr(vanishing, "relevant_mask", -1)
        cache_get = cache.get
        doomed = []
        probe_hits = 0
        for mask in masks:
            if not mask & relevant:
                continue
            verdict = cache_get(mask)
            if verdict is None:
                verdict = is_vanishing_mask(mask)
            else:
                probe_hits += 1
            if verdict:
                doomed.append(mask)
        if probe_hits and hasattr(vanishing, "cache_hits"):
            vanishing.cache_hits += probe_hits
        return doomed

    def prune_vanishing(self) -> int:
        """Remove every vanishing monomial currently in the term map.

        This is the full sweep, run right after :meth:`reset`; afterwards
        the engine keeps the map vanishing-free after every substitution.
        Returns the number of removed terms and accumulates it into
        ``vanishing.removed_count``.
        """
        vanishing = self.vanishing
        if vanishing is None:
            return 0
        relevant = getattr(vanishing, "relevant_mask", None)
        if relevant is not None and not self._support & relevant:
            # No loaded term touches a contradiction-relevant variable
            # (``_support`` is a superset of the live support): nothing to do.
            return 0
        terms = self.terms
        doomed = self.find_vanishing(terms, vanishing)
        if doomed:
            for mask in doomed:
                del terms[mask]
            if self._indexed:
                occ = self._occ
                index_mask = self._index_mask
                for mask in doomed:
                    candidates = mask & index_mask
                    while candidates:
                        low = candidates & -candidates
                        candidates ^= low
                        bucket = occ.get(low.bit_length() - 1)
                        if bucket is not None:
                            bucket.discard(mask)
        vanishing.removed_count += len(doomed)
        self.vanishing_removed += len(doomed)
        return len(doomed)

    # -- the substitution kernel -----------------------------------------------

    def substitute(self, var: int, replacement: list[tuple[int, int]],
                   growth_limit: int | None = None,
                   retire: bool = False) -> int:
        """Substitute ``var := replacement`` in place; return #affected terms.

        ``replacement`` is a reusable sequence of ``(mask, coefficient)``
        pairs of the tail polynomial.  In indexed mode only the terms listed
        in the occurrence index under ``var`` are visited; in scan mode the
        (small) term map is scanned, guarded by a support-superset bit test
        so substituting an absent variable costs ``O(1)``.

        With ``retire=True`` the variable is dropped from the candidate set
        after the substitution — valid whenever the caller's substitution
        order guarantees the variable cannot be re-introduced (true for both
        the reduction schedule and the rewriting passes).

        With a ``growth_limit``, the substitution is transactional: if the
        resulting term count exceeds ``max(growth_limit, 4 * previous
        count)`` the step is discarded (terms, index, and statistics —
        including any vanishing removals found while evaluating the
        candidate — are untouched) and ``-1`` is returned so the caller can
        keep the variable instead.  (The verification flow never combines a
        growth limit with a vanishing oracle — common rewriting runs
        without the oracle — so full rollback is the defining semantics,
        not a compatibility constraint.)
        """
        if self._indexed:
            result = self._substitute_indexed(var, replacement, growth_limit,
                                              retire)
        else:
            result = self._substitute_scan(var, replacement, growth_limit,
                                           retire)
            if (result > 0 and not self._indexed and self._index_mask
                    and len(self.terms) >= self._reindex_floor):
                self._build_index()
        if result > 0:
            self.substitutions += 1
            self.affected_terms += result
            size = len(self.terms)
            if size > self.peak_terms:
                self.peak_terms = size
        elif result < 0:
            self.rejected_substitutions += 1
        return result

    def _substitute_scan(self, var: int, replacement: list[tuple[int, int]],
                         growth_limit: int | None, retire: bool) -> int:
        bit = 1 << var
        # ``_support`` is a superset of the live support (bits are never
        # cleared); a stale bit only costs one scan that finds no terms.
        if not self._support & bit:
            if retire:
                self._index_mask &= ~bit
            return 0
        terms = self.terms
        # Keys-only scan: the coefficients of the (few) affected terms are
        # fetched on extraction instead of tuple-unpacking every term.
        hit_masks = [mask for mask in terms if mask & bit]
        if not hit_masks:
            # The bit was stale; re-tighten the support superset so later
            # stale variables do not trigger another full scan each.
            self._support = union_mask(terms)
            if retire:
                self._index_mask &= ~bit
            return 0
        size_before = len(terms)
        keep = ~bit
        support = self._support & keep
        modulus = self._modulus

        if growth_limit is None:
            pop = terms.pop
            affected = [(mask, pop(mask)) for mask in hit_masks]
            target = terms
        else:
            # Transactional: build the candidate out of place so a rejected
            # step leaves the working map untouched.
            affected = [(mask, terms[mask]) for mask in hit_masks]
            target = {mask: coeff for mask, coeff in terms.items()
                      if not mask & bit}
        get = target.get
        vanishing = self.vanishing
        touched: list[int] | None = [] if modulus is not None else None
        created: list[int] | None = [] if vanishing is not None else None
        if created is not None:
            # Track the created terms so the vanishing filter below only
            # tests them: a term that survived an earlier test (at load
            # time, via :meth:`prune_vanishing`, or when a previous step
            # created it) never vanishes later — vanishing depends on the
            # mask alone.  This mirrors the indexed path.
            make = created.append
            touch = touched.append if touched is not None else None
            for mask, coeff in affected:
                rest = mask & keep
                for rep_mask, rep_coeff in replacement:
                    prod = rest | rep_mask
                    old = get(prod)
                    if old is None:
                        # Coefficients are never stored as zero, so the
                        # product of two of them cannot cancel on creation.
                        target[prod] = coeff * rep_coeff
                        support |= prod
                        make(prod)
                    else:
                        new = old + coeff * rep_coeff
                        if new:
                            target[prod] = new
                        else:
                            del target[prod]
                    if touch is not None:
                        touch(prod)
        elif touched is None:
            for mask, coeff in affected:
                rest = mask & keep
                for rep_mask, rep_coeff in replacement:
                    prod = rest | rep_mask
                    new = get(prod, 0) + coeff * rep_coeff
                    if new:
                        target[prod] = new
                        support |= prod
                    else:
                        del target[prod]
        else:
            append = touched.append
            for mask, coeff in affected:
                rest = mask & keep
                for rep_mask, rep_coeff in replacement:
                    prod = rest | rep_mask
                    new = get(prod, 0) + coeff * rep_coeff
                    if new:
                        target[prod] = new
                        support |= prod
                        append(prod)
                    else:
                        del target[prod]

        removed_vanishing = 0
        if created:
            # ``created`` can list a mask twice (created, cancelled,
            # recreated); the liveness check keeps the removal count exact.
            # ``relevant`` rejects monomials that cannot vanish with one AND
            # (every mask passes for oracles without a relevance mask).
            is_vanishing_mask = vanishing.is_vanishing_mask
            relevant = getattr(vanishing, "relevant_mask", -1)
            for prod in created:
                if prod & relevant and prod in target and is_vanishing_mask(prod):
                    del target[prod]
                    removed_vanishing += 1
        removed_modulus = 0
        if touched is not None:
            # Only the touched coefficients changed; untouched terms were
            # already filtered when they last changed.
            low_bits = self._low_bits
            if low_bits is not None:
                for prod in touched:
                    coeff = get(prod)
                    if coeff is not None and not coeff & low_bits:
                        del target[prod]
                        removed_modulus += 1
            else:
                for prod in touched:
                    coeff = get(prod)
                    if coeff is not None and coeff % modulus == 0:
                        del target[prod]
                        removed_modulus += 1

        if growth_limit is not None:
            if len(target) > max(growth_limit, 4 * size_before):
                return -1
            self.terms = target
        if removed_vanishing:
            vanishing.removed_count += removed_vanishing
            self.vanishing_removed += removed_vanishing
        self.modulus_removed += removed_modulus
        self._support = support
        if retire:
            self._index_mask &= ~bit
        return len(affected)

    def _substitute_indexed(self, var: int, replacement: list[tuple[int, int]],
                            growth_limit: int | None, retire: bool) -> int:
        occ = self._occ
        bucket = occ.get(var)
        if not bucket:
            if retire:
                self.unindex(var)
            return 0
        terms = self.terms
        size_before = len(terms)
        pop = terms.pop
        affected = [(mask, pop(mask)) for mask in bucket]

        # ``journal`` records the pre-step coefficient (``None`` = absent) of
        # every key the step writes: it drives the index update, the
        # created-term vanishing tests, the modulus filtering, and — for
        # growth-limited substitutions — the rollback.  ``created`` lists the
        # keys that did not exist before the step.
        journal: dict[int, int | None] = dict(affected)
        created: list[int] = []

        keep = ~(1 << var)
        get = terms.get
        for mask, coeff in affected:
            rest = mask & keep
            for rep_mask, rep_coeff in replacement:
                prod = rest | rep_mask
                old = get(prod)
                if prod not in journal:
                    journal[prod] = old
                    if old is None:
                        created.append(prod)
                if old is None:
                    # Coefficients are never stored as zero, so the product
                    # of two of them cannot cancel on creation.
                    terms[prod] = coeff * rep_coeff
                else:
                    new = old + coeff * rep_coeff
                    if new:
                        terms[prod] = new
                    else:
                        del terms[prod]

        # Vanishing-rule filtering of the newly created terms.  Terms that
        # already existed have survived an earlier test (vanishing depends
        # only on the mask), so they are skipped.
        removed_vanishing = 0
        vanishing = self.vanishing
        if vanishing is not None and created:
            is_vanishing_mask = vanishing.is_vanishing_mask
            relevant = getattr(vanishing, "relevant_mask", -1)
            for prod in created:
                if prod & relevant and prod in terms and is_vanishing_mask(prod):
                    del terms[prod]
                    removed_vanishing += 1

        # Modulus filtering of the touched coefficients; untouched terms were
        # already filtered when they last changed.
        removed_modulus = 0
        modulus = self._modulus
        if modulus is not None:
            low_bits = self._low_bits
            if low_bits is not None:
                for prod in journal:
                    coeff = get(prod)
                    if coeff is not None and not coeff & low_bits:
                        del terms[prod]
                        removed_modulus += 1
            else:
                for prod in journal:
                    coeff = get(prod)
                    if coeff is not None and coeff % modulus == 0:
                        del terms[prod]
                        removed_modulus += 1

        if growth_limit is not None and len(terms) > max(growth_limit,
                                                         4 * size_before):
            # Roll the whole step back: restore every journaled key.
            for key, old in journal.items():
                if old is None:
                    terms.pop(key, None)
                else:
                    terms[key] = old
            return -1

        # Commit: bring the occurrence index in line with the journal,
        # metering the upkeep (``index_ops``) against the full scan the
        # index saved (``len(terms)``) so a term population too dense in
        # candidate variables demotes the engine back to scan mode.
        index_ops = len(journal)
        index_mask = self._index_mask
        if retire:
            index_mask &= ~(1 << var)
            self._index_mask = index_mask
            occ.pop(var, None)
        if index_mask:
            for key, old in journal.items():
                if old is None:
                    if key in terms:
                        candidates = key & index_mask
                        index_ops += candidates.bit_count()
                        while candidates:
                            low = candidates & -candidates
                            candidates ^= low
                            slot = low.bit_length() - 1
                            entry = occ.get(slot)
                            if entry is None:
                                occ[slot] = {key}
                            else:
                                entry.add(key)
                elif key not in terms:
                    candidates = key & index_mask
                    index_ops += candidates.bit_count()
                    while candidates:
                        low = candidates & -candidates
                        candidates ^= low
                        entry = occ.get(low.bit_length() - 1)
                        if entry is not None:
                            entry.discard(key)

        if removed_vanishing:
            vanishing.removed_count += removed_vanishing
            self.vanishing_removed += removed_vanishing
        self.modulus_removed += removed_modulus

        size = len(terms)
        if index_ops > size:
            # Upkeep cost exceeded the avoided scan; a few such steps in a
            # row mean the index is a net loss for this population.
            self._index_debt += index_ops / size - 1.0 if size else 1.0
            if self._index_debt > 4.0:
                self._drop_index()
        else:
            self._index_debt = 0.0
        return len(affected)

    # -- the batched substitution kernel -----------------------------------------

    def substitute_batch(self, items: Sequence[tuple[int, list[tuple[int, int]]]],
                         growth_limit: int | None = None,
                         retire: bool = False,
                         term_limit: int | None = None,
                         deadline: float | None = None,
                         ) -> tuple[list[tuple[int, int]], str | None]:
        """Substitute a whole level ``[(var, replacement), ...]`` in order.

        Semantically this is *exactly* the equivalent sequence of
        single-variable :meth:`substitute` calls — the same term-map
        evolution, the same per-step vanishing filtering of created terms
        and modulus filtering of touched coefficients, the same growth-guard
        rollback per step, and the same statistics — so callers can batch
        any contiguous run of their substitution order without changing
        results.  The payoff is the fused indexed path (engaged when the
        index is live, every variable is retired, and no growth limit
        applies): one journal spans the whole batch, terms destroyed
        mid-batch are never unlinked from their occurrence buckets (a
        liveness filter when a bucket is consumed replaces the eager
        per-step deletes), and created terms are linked only under batch
        variables still awaiting substitution — for a fully retiring batch
        the index teardown vanishes altogether.

        Returns ``(results, tripped)``: one ``(affected, size_after)`` pair
        per processed item (``affected`` is the :meth:`substitute` return
        value, ``size_after`` the term count right after that step), and a
        trip marker — ``"terms"`` when ``term_limit`` was exceeded right
        after a term-affecting step, ``"deadline"`` when ``deadline`` (a
        :func:`time.perf_counter` instant) had passed after one, ``None``
        when every item was processed.  The checks run at exactly the
        points where the sequential loops used to check their budgets, so
        callers translate a trip marker straight into their blow-up error.
        """
        self.batches += 1
        results: list[tuple[int, int]] = []
        tripped: str | None = None
        position = 0
        total = len(items)
        scan_fusible = True
        while position < total and tripped is None:
            if growth_limit is None and retire and position < total - 1:
                if self._indexed:
                    position, tripped = self._substitute_batch_indexed(
                        items, position, results, term_limit, deadline)
                    # On a clean return the index demoted itself mid-run
                    # and the scan path below finishes the batch.
                    continue
                if (scan_fusible and len(self.terms) < INDEX_THRESHOLD
                        and total - position > 2):
                    # For one or two variables the two plain scans beat the
                    # bucket partitioning; the fused path wins from three on.
                    before = position
                    position, tripped = self._substitute_batch_scan(
                        items, position, results, term_limit, deadline)
                    if position < total and tripped is None:
                        # The partition refused (population dense in batch
                        # variables) or the per-step meter bailed: finish
                        # this batch on the per-step path.
                        scan_fusible = False
                    if position > before or tripped is not None:
                        continue
            var, replacement = items[position]
            affected = self.substitute(var, replacement, growth_limit, retire)
            position += 1
            self.batch_steps += 1
            results.append((affected, len(self.terms)))
            if affected > 0:
                if (term_limit is not None
                        and len(self.terms) > term_limit):
                    tripped = "terms"
                elif (deadline is not None
                        and time.perf_counter() > deadline):
                    tripped = "deadline"
        return results, tripped

    def _substitute_batch_indexed(self, items, start: int,
                                  results: list[tuple[int, int]],
                                  term_limit: int | None,
                                  deadline: float | None,
                                  ) -> tuple[int, str | None]:
        """Fused indexed run over ``items[start:]`` (retiring, no growth limit).

        Returns ``(position, tripped)`` — the position after the last
        processed item and the budget trip marker (see
        :meth:`substitute_batch`).  A clean return before ``len(items)``
        means the engine demoted itself to scan mode and the dispatcher
        takes over.
        """
        occ = self._occ
        terms = self.terms
        vanishing = self.vanishing
        vanishing_relevant = (-1 if vanishing is None
                              else getattr(vanishing, "relevant_mask", -1))
        modulus = self._modulus
        low_bits = self._low_bits
        batch_mask = 0
        for var, _ in items[start:]:
            batch_mask |= 1 << var
        # Keys written during the batch only need reconciling with the
        # occurrence index for candidate variables that survive the batch;
        # every batch variable is retired, so its buckets never need repair.
        # The journal records pre-batch *existence* (``True`` = the key was
        # live before the batch) — all the commit needs — and only for keys
        # carrying surviving-candidate bits.  Both verification callers
        # have ``commit_mask == 0`` (the reduction retires every candidate;
        # a rewriting batch covers every candidate present in the tail), so
        # the journal stays empty on the hot paths.
        commit_mask = self._index_mask & ~batch_mask
        journal: dict[int, bool] = {}
        removed_vanishing_total = 0
        removed_modulus_total = 0
        tripped: str | None = None
        position = start
        total = len(items)

        while position < total:
            var, replacement = items[position]
            bit = 1 << var
            position += 1
            self.batch_steps += 1
            batch_mask &= ~bit
            self._index_mask &= ~bit
            bucket = occ.pop(var, None)
            if bucket:
                # The liveness filter replaces the deferred bucket deletes:
                # keys destroyed earlier in the batch are still listed here
                # and pop with a default resolves liveness and extraction in
                # one lookup.
                pop = terms.pop
                affected = [(key, coeff) for key in bucket
                            if (coeff := pop(key, None)) is not None]
                step_ops = len(bucket)
            else:
                affected = []
            if not affected:
                results.append((0, len(terms)))
                continue

            created: list[int] = []
            keep = ~bit
            get = terms.get
            # ``flagged`` collects keys whose coefficient was a modulus
            # multiple *at some write*; only those few need the final
            # re-check, instead of every written key.  (A key is a multiple
            # after the step iff its last write flagged it.)
            flagged: list[int] | None = [] if modulus is not None else None
            if commit_mask:
                for key, _ in affected:
                    if key & commit_mask and key not in journal:
                        journal[key] = True
            if flagged is None:
                for mask, coeff in affected:
                    rest = mask & keep
                    for rep_mask, rep_coeff in replacement:
                        prod = rest | rep_mask
                        old = get(prod)
                        if old is None:
                            # Coefficients are never stored as zero, so the
                            # product of two of them cannot cancel on creation.
                            terms[prod] = coeff * rep_coeff
                            created.append(prod)
                            if (commit_mask and prod & commit_mask
                                    and prod not in journal):
                                # Journaled at creation, before any cancel
                                # in the same step can masquerade as a
                                # pre-batch deletion.
                                journal[prod] = False
                        else:
                            new = old + coeff * rep_coeff
                            if new:
                                terms[prod] = new
                            else:
                                del terms[prod]
                                if (commit_mask and prod & commit_mask
                                        and prod not in journal):
                                    journal[prod] = True
            elif low_bits is not None:
                flag = flagged.append
                for mask, coeff in affected:
                    rest = mask & keep
                    for rep_mask, rep_coeff in replacement:
                        prod = rest | rep_mask
                        old = get(prod)
                        if old is None:
                            value = coeff * rep_coeff
                            terms[prod] = value
                            created.append(prod)
                            if (commit_mask and prod & commit_mask
                                    and prod not in journal):
                                journal[prod] = False
                            if not value & low_bits:
                                flag(prod)
                        else:
                            new = old + coeff * rep_coeff
                            if new:
                                terms[prod] = new
                                if not new & low_bits:
                                    flag(prod)
                            else:
                                del terms[prod]
                                if (commit_mask and prod & commit_mask
                                        and prod not in journal):
                                    journal[prod] = True
            else:
                flag = flagged.append
                for mask, coeff in affected:
                    rest = mask & keep
                    for rep_mask, rep_coeff in replacement:
                        prod = rest | rep_mask
                        old = get(prod)
                        if old is None:
                            value = coeff * rep_coeff
                            terms[prod] = value
                            created.append(prod)
                            if (commit_mask and prod & commit_mask
                                    and prod not in journal):
                                journal[prod] = False
                            if value % modulus == 0:
                                flag(prod)
                        else:
                            new = old + coeff * rep_coeff
                            if new:
                                terms[prod] = new
                                if new % modulus == 0:
                                    flag(prod)
                            else:
                                del terms[prod]
                                if (commit_mask and prod & commit_mask
                                        and prod not in journal):
                                    journal[prod] = True

            # Link created keys under the batch variables still awaiting
            # substitution (their buckets are consumed later) and journal
            # the ones relevant to surviving candidates.  A key created
            # for the second time (created, cancelled, recreated) is
            # already listed — the set semantics of the buckets absorb it.
            for prod in created:
                candidates = prod & batch_mask
                step_ops += candidates.bit_count() + 1
                while candidates:
                    low = candidates & -candidates
                    candidates ^= low
                    slot = low.bit_length() - 1
                    entry = occ.get(slot)
                    if entry is None:
                        occ[slot] = {prod}
                    else:
                        entry.add(prod)

            # Per-step vanishing filtering of the created terms, exactly as
            # the single-variable kernel does it.
            removed_vanishing = 0
            if vanishing is not None and created:
                is_vanishing_mask = vanishing.is_vanishing_mask
                for prod in created:
                    if (prod & vanishing_relevant and prod in terms
                            and is_vanishing_mask(prod)):
                        del terms[prod]
                        removed_vanishing += 1
                if removed_vanishing:
                    removed_vanishing_total += removed_vanishing

            # Per-step modulus filtering: only flagged keys can still be
            # multiples, and the final coefficient decides.
            if flagged:
                if low_bits is not None:
                    for prod in flagged:
                        coeff = get(prod)
                        if coeff is not None and not coeff & low_bits:
                            del terms[prod]
                            removed_modulus_total += 1
                            if (commit_mask and prod & commit_mask
                                    and prod not in journal):
                                journal[prod] = True
                else:
                    for prod in flagged:
                        coeff = get(prod)
                        if coeff is not None and coeff % modulus == 0:
                            del terms[prod]
                            removed_modulus_total += 1
                            if (commit_mask and prod & commit_mask
                                    and prod not in journal):
                                journal[prod] = True

            size = len(terms)
            self.substitutions += 1
            self.affected_terms += len(affected)
            if size > self.peak_terms:
                self.peak_terms = size
            results.append((len(affected), size))

            if term_limit is not None and size > term_limit:
                tripped = "terms"
                break
            if deadline is not None and time.perf_counter() > deadline:
                tripped = "deadline"
                break
            # The same per-step upkeep-vs-avoided-scan meter as the
            # sequential indexed kernel: populations that turn dense in
            # candidate variables demote the engine to scan mode quickly.
            if step_ops > size:
                self._index_debt += step_ops / size - 1.0 if size else 1.0
                if self._index_debt > 4.0:
                    break
            else:
                self._index_debt = 0.0

        if removed_vanishing_total:
            vanishing.removed_count += removed_vanishing_total
            self.vanishing_removed += removed_vanishing_total
        self.modulus_removed += removed_modulus_total
        self._commit_batch(journal, commit_mask, batch_mask)
        if position < total and tripped is None and self._indexed:
            self._drop_index()
        return position, tripped

    def _substitute_batch_scan(self, items, start: int,
                               results: list[tuple[int, int]],
                               term_limit: int | None,
                               deadline: float | None,
                               ) -> tuple[int, str | None]:
        """Fused scan-mode run over ``items[start:]`` (retiring, no growth limit).

        One scan over the (small) term map partitions the live terms over
        every batch variable at once — replacing the per-variable full scans
        of the sequential path — and created terms are appended to the
        buckets of variables still awaiting substitution.  Liveness is
        re-checked when a bucket is consumed, so no delete bookkeeping is
        ever performed.  Semantics per step are exactly those of
        :meth:`substitute`.
        """
        terms = self.terms
        vanishing = self.vanishing
        vanishing_relevant = (-1 if vanishing is None
                              else getattr(vanishing, "relevant_mask", -1))
        modulus = self._modulus
        low_bits = self._low_bits
        batch_mask = 0
        for var, _ in items[start:]:
            batch_mask |= 1 << var
        buckets: dict[int, list[int]] = {}
        support = 0
        total_candidate_bits = 0
        for mask in terms:
            support |= mask
            candidates = mask & batch_mask
            total_candidate_bits += candidates.bit_count()
            while candidates:
                low = candidates & -candidates
                candidates ^= low
                slot = low.bit_length() - 1
                entry = buckets.get(slot)
                if entry is None:
                    buckets[slot] = [mask]
                else:
                    entry.append(mask)
        if (terms and total_candidate_bits
                > INDEX_DENSITY_LIMIT * len(terms)):
            # Dense in batch variables (the MT-FO/naive populations): the
            # per-created bucket upkeep would cost more than the plain
            # scans it replaces — refuse, and let the dispatcher run the
            # per-step path for the rest of the batch.
            return start, None
        tripped: str | None = None
        position = start
        total = len(items)

        while position < total:
            var, replacement = items[position]
            bit = 1 << var
            position += 1
            self.batch_steps += 1
            batch_mask &= ~bit
            self._index_mask &= ~bit
            bucket = buckets.pop(var, None)
            if not bucket:
                results.append((0, len(terms)))
                continue
            pop = terms.pop
            affected = [(key, coeff) for key in bucket
                        if (coeff := pop(key, None)) is not None]
            if not affected:
                results.append((0, len(terms)))
                continue
            step_ops = len(bucket)

            created: list[int] = []
            keep = ~bit
            get = terms.get
            # Flag-at-write modulus tracking, as in the indexed kernel.
            flagged: list[int] | None = [] if modulus is not None else None
            if flagged is None:
                for mask, coeff in affected:
                    rest = mask & keep
                    for rep_mask, rep_coeff in replacement:
                        prod = rest | rep_mask
                        old = get(prod)
                        if old is None:
                            # Coefficients are never stored as zero, so the
                            # product of two of them cannot cancel on creation.
                            terms[prod] = coeff * rep_coeff
                            created.append(prod)
                        else:
                            new = old + coeff * rep_coeff
                            if new:
                                terms[prod] = new
                            else:
                                del terms[prod]
            elif low_bits is not None:
                flag = flagged.append
                for mask, coeff in affected:
                    rest = mask & keep
                    for rep_mask, rep_coeff in replacement:
                        prod = rest | rep_mask
                        old = get(prod)
                        if old is None:
                            value = coeff * rep_coeff
                            terms[prod] = value
                            created.append(prod)
                            if not value & low_bits:
                                flag(prod)
                        else:
                            new = old + coeff * rep_coeff
                            if new:
                                terms[prod] = new
                                if not new & low_bits:
                                    flag(prod)
                            else:
                                del terms[prod]
            else:
                flag = flagged.append
                for mask, coeff in affected:
                    rest = mask & keep
                    for rep_mask, rep_coeff in replacement:
                        prod = rest | rep_mask
                        old = get(prod)
                        if old is None:
                            value = coeff * rep_coeff
                            terms[prod] = value
                            created.append(prod)
                            if value % modulus == 0:
                                flag(prod)
                        else:
                            new = old + coeff * rep_coeff
                            if new:
                                terms[prod] = new
                                if new % modulus == 0:
                                    flag(prod)
                            else:
                                del terms[prod]

            for prod in created:
                support |= prod
                candidates = prod & batch_mask
                step_ops += candidates.bit_count() + 1
                while candidates:
                    low = candidates & -candidates
                    candidates ^= low
                    slot = low.bit_length() - 1
                    entry = buckets.get(slot)
                    if entry is None:
                        buckets[slot] = [prod]
                    else:
                        entry.append(prod)

            removed_vanishing = 0
            if vanishing is not None and created:
                is_vanishing_mask = vanishing.is_vanishing_mask
                for prod in created:
                    if (prod & vanishing_relevant and prod in terms
                            and is_vanishing_mask(prod)):
                        del terms[prod]
                        removed_vanishing += 1
                if removed_vanishing:
                    vanishing.removed_count += removed_vanishing
                    self.vanishing_removed += removed_vanishing

            if flagged:
                if low_bits is not None:
                    for prod in flagged:
                        coeff = get(prod)
                        if coeff is not None and not coeff & low_bits:
                            del terms[prod]
                            self.modulus_removed += 1
                else:
                    for prod in flagged:
                        coeff = get(prod)
                        if coeff is not None and coeff % modulus == 0:
                            del terms[prod]
                            self.modulus_removed += 1

            size = len(terms)
            self.substitutions += 1
            self.affected_terms += len(affected)
            if size > self.peak_terms:
                self.peak_terms = size
            results.append((len(affected), size))

            if term_limit is not None and size > term_limit:
                tripped = "terms"
                break
            if deadline is not None and time.perf_counter() > deadline:
                tripped = "deadline"
                break
            # The same upkeep-vs-avoided-scan meter as the indexed kernels:
            # a population turning dense mid-batch bails to per-step scans.
            if step_ops > size:
                self._index_debt += step_ops / size - 1.0 if size else 1.0
                if self._index_debt > 4.0:
                    self._index_debt = 0.0
                    break
            else:
                self._index_debt = 0.0

        self._support = support
        if (tripped is None and self._index_mask
                and len(terms) >= self._reindex_floor):
            self._build_index()
        return position, tripped

    def _commit_batch(self, journal: dict[int, bool], commit_mask: int,
                      remaining_mask: int) -> None:
        """Reconcile the occurrence index after a fused batch run.

        ``journal`` records pre-batch existence of every written key that
        touches a surviving candidate variable; buckets of those variables
        gain the keys that now exist and drop the ones that no longer do.
        ``remaining_mask`` covers batch variables left unprocessed by an
        early exit — their buckets were augmented batch-locally and may
        list destroyed keys, so they are rebuilt from liveness before
        regular single-variable substitutions resume.
        """
        occ = self._occ
        terms = self.terms
        if commit_mask and journal:
            for key, existed in journal.items():
                if not existed:
                    if key in terms:
                        candidates = key & commit_mask
                        while candidates:
                            low = candidates & -candidates
                            candidates ^= low
                            slot = low.bit_length() - 1
                            entry = occ.get(slot)
                            if entry is None:
                                occ[slot] = {key}
                            else:
                                entry.add(key)
                elif key not in terms:
                    candidates = key & commit_mask
                    while candidates:
                        low = candidates & -candidates
                        candidates ^= low
                        entry = occ.get(low.bit_length() - 1)
                        if entry is not None:
                            entry.discard(key)
        if remaining_mask:
            while remaining_mask:
                low = remaining_mask & -remaining_mask
                remaining_mask ^= low
                slot = low.bit_length() - 1
                bucket = occ.get(slot)
                if bucket:
                    occ[slot] = {key for key in bucket if key in terms}
