"""Independent certificate checker.

Deliberately minimal trusted base: this module imports only the algebra
primitive (:class:`~repro.algebra.polynomial.Polynomial`) plus the shared
error type — no verification engine, no vanishing tables, no netlist or
model code.  It re-derives every claim in a certificate from scratch:

1. **hash** — the content hash matches the canonical body serialization.
2. **structure** — required keys, types, and variable-index ranges.
3. **order** — every tail references only lower-indexed variables and no
   primary input owns a tail (acyclicity by construction).
4. **schedule** — the substitution schedule is an exact permutation of
   the model's lead variables (a dropped or duplicated step is reported
   with its index).
5. **vanishing** — each recorded cancellation replays to the exact zero
   polynomial through its cone of gate tails.
6. **model** — the rewritten model agrees with the gate-level circuit on
   every primary-input assignment (exhaustive up to 12 inputs, otherwise
   64 deterministic samples derived from the netlist hash).
7. **replay** — substituting the schedule into the specification
   polynomial reproduces the recorded remainder (coefficients compared
   modulo the ring modulus, which the engine may apply at different
   points of the reduction).
8. **remainder/verdict** — the remainder mentions only primary inputs
   and is zero exactly when the verdict claims ``verified``.

Any violation raises :class:`~repro.errors.CertificateError` carrying the
stage name and, where meaningful, the 0-based step index.
"""

from __future__ import annotations

import hashlib
import json

from repro.algebra.polynomial import Polynomial
from repro.errors import CertificateError

#: Guard on intermediate replay size (far above any honest certificate).
REPLAY_TERM_LIMIT = 2_000_000

_REQUIRED = {"method": str, "circuit": str, "specification": str,
             "verdict": str, "netlist_sha256": str, "variables": list,
             "inputs": list, "outputs": list, "gates": list, "model": list,
             "schedule": list, "spec_terms": list, "remainder": list,
             "vanishing": list}


def _fail(message: str, stage: str, step: int | None = None) -> None:
    raise CertificateError(message, stage=stage, step=step)


def _decode_terms(encoded, what: str, num_vars: int) -> dict[int, int]:
    terms: dict[int, int] = {}
    for entry in encoded:
        if (not isinstance(entry, list) or len(entry) != 2
                or not isinstance(entry[0], int) or isinstance(entry[0], bool)
                or not isinstance(entry[1], int) or isinstance(entry[1], bool)):
            _fail(f"{what}: malformed term entry {entry!r}", "structure")
        mask, coeff = entry
        if mask < 0 or mask >> num_vars:
            _fail(f"{what}: mask {mask:#x} outside the variable table",
                  "structure")
        if coeff == 0 or mask in terms:
            _fail(f"{what}: zero coefficient or duplicate mask {mask:#x}",
                  "structure")
        terms[mask] = coeff
    return terms


def _decode_tails(encoded, what: str, num_vars: int,
                  input_mask: int) -> dict[int, Polynomial]:
    tails: dict[int, Polynomial] = {}
    for entry in encoded:
        if not isinstance(entry, list) or len(entry) != 2 \
                or not isinstance(entry[0], int):
            _fail(f"{what}: malformed tail entry", "structure")
        var, terms = entry
        if var < 0 or var >= num_vars or var in tails:
            _fail(f"{what}: bad or duplicate lead variable {var}", "structure")
        if (1 << var) & input_mask:
            _fail(f"{what}: primary input {var} owns a tail", "order")
        poly = Polynomial.from_term_masks(_decode_terms(terms, what, num_vars))
        if poly.support_mask() >> var:
            _fail(f"{what}: tail of variable {var} references a "
                  "not-lower-indexed variable", "order")
        tails[var] = poly
    return tails


def _normalized(poly: Polynomial, modulus: int | None) -> dict[int, int]:
    if modulus is None:
        return dict(poly.term_masks())
    return {mask: coeff % modulus for mask, coeff in poly.term_masks()
            if coeff % modulus}


def _sample_assignments(inputs: list[int], seed: str, count: int):
    """``count`` deterministic assignments derived from the netlist hash."""
    for index in range(count):
        bits = b""
        block = 0
        while len(bits) * 8 < len(inputs):
            bits += hashlib.sha256(
                f"{seed}:{index}:{block}".encode("utf-8")).digest()
            block += 1
        word = int.from_bytes(bits, "big")
        yield {var: (word >> position) & 1
               for position, var in enumerate(inputs)}


def check_certificate(document: dict) -> dict:
    """Check one certificate document; raise ``CertificateError`` on failure.

    Returns a small summary dict (verdict, hash, step and rule counts,
    model-check mode) for reporting; the return value carries no trust —
    a certificate is valid iff this function does not raise.
    """
    if not isinstance(document, dict) or document.get("format") != "repro-certificate":
        _fail("not a repro-certificate document", "structure")
    if document.get("version") != 1:
        _fail(f"unsupported certificate version {document.get('version')!r}",
              "structure")
    body = document.get("body")
    if not isinstance(body, dict):
        _fail("certificate body must be a JSON object", "structure")
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    if document.get("sha256") != digest:
        _fail("content hash mismatch: certificate body was altered", "hash")

    for key, kind in _REQUIRED.items():
        if not isinstance(body.get(key), kind):
            _fail(f"missing or mistyped body key {key!r}", "structure")
    modulus = body.get("modulus")
    if modulus is not None and (not isinstance(modulus, int) or modulus < 2):
        _fail(f"bad modulus {modulus!r}", "structure")
    if body["verdict"] not in ("verified", "refuted"):
        _fail(f"unknown verdict {body['verdict']!r}", "structure")
    num_vars = len(body["variables"])
    inputs = body["inputs"]
    if not all(isinstance(var, int) and 0 <= var < num_vars for var in inputs):
        _fail("inputs outside the variable table", "structure")
    input_mask = 0
    for var in inputs:
        input_mask |= 1 << var

    gates = _decode_tails(body["gates"], "gates", num_vars, input_mask)
    model = _decode_tails(body["model"], "model", num_vars, input_mask)
    spec = Polynomial.from_term_masks(
        _decode_terms(body["spec_terms"], "spec_terms", num_vars))
    remainder = Polynomial.from_term_masks(
        _decode_terms(body["remainder"], "remainder", num_vars))
    if set(inputs) | set(gates) != set(range(num_vars)):
        _fail("variables are neither inputs nor gate outputs", "structure")
    if not set(model) <= set(gates):
        _fail("model lead variables are not gate outputs", "structure")

    # Stage: schedule — exact permutation of the model leads.
    schedule = body["schedule"]
    seen: set[int] = set()
    for step, var in enumerate(schedule):
        if not isinstance(var, int) or var not in model:
            _fail(f"schedule step {step} names {var!r}, which has no model "
                  "polynomial", "schedule", step)
        if var in seen:
            _fail(f"schedule step {step} substitutes variable {var} twice",
                  "schedule", step)
        seen.add(var)
    if seen != set(model):
        missing = sorted(set(model) - seen)
        _fail(f"schedule omits model variables {missing} "
              f"(step {len(schedule)} missing)", "schedule", len(schedule))

    # Stage: vanishing — each cancellation replays to exactly zero.
    for step, entry in enumerate(body["vanishing"]):
        if not isinstance(entry, list) or len(entry) != 2:
            _fail(f"vanishing rule {step} is malformed", "vanishing", step)
        mask, cone = entry
        if not isinstance(mask, int) or mask < 0 or mask >> num_vars \
                or not isinstance(cone, list):
            _fail(f"vanishing rule {step} is malformed", "vanishing", step)
        poly = Polynomial.from_term_masks({mask: 1})
        for var in sorted(set(cone), reverse=True):
            if var not in gates:
                _fail(f"vanishing rule {step} cites non-gate variable {var}",
                      "vanishing", step)
            poly = poly.substitute(var, gates[var])
            if poly.num_terms > REPLAY_TERM_LIMIT:
                _fail(f"vanishing rule {step} blew past the replay guard",
                      "vanishing", step)
        if not poly.is_zero:
            _fail(f"vanishing rule {step} (mask {mask:#x}) does not expand "
                  "to zero", "vanishing", step)

    # Stage: model — gate circuit and rewritten model agree pointwise.
    if len(inputs) <= 12:
        mode = "exhaustive"
        assignments = ({var: (index >> position) & 1
                        for position, var in enumerate(inputs)}
                       for index in range(1 << len(inputs)))
    else:
        mode = "sampled"
        assignments = _sample_assignments(inputs, body["netlist_sha256"], 64)
    order = sorted(gates)
    for assignment in assignments:
        values = dict(assignment)
        for var in order:
            value = gates[var].evaluate(values)
            if value not in (0, 1):
                _fail(f"gate {var} evaluates outside the Boolean domain",
                      "model")
            values[var] = value
        for step, var in enumerate(schedule):
            if model[var].evaluate(values) != values[var]:
                _fail(f"model polynomial of variable {var} disagrees with "
                      f"the circuit (schedule step {step})", "model", step)

    # Stage: replay — the schedule reproduces the recorded remainder.
    replayed = spec
    if modulus is not None:
        replayed = replayed.drop_coefficient_multiples(modulus)
    for step, var in enumerate(schedule):
        replayed = replayed.substitute(var, model[var])
        if modulus is not None:
            replayed = replayed.drop_coefficient_multiples(modulus)
        if replayed.num_terms > REPLAY_TERM_LIMIT:
            _fail(f"replay blew past {REPLAY_TERM_LIMIT} terms at step {step}",
                  "replay", step)
    if _normalized(replayed, modulus) != _normalized(remainder, modulus):
        _fail("replayed remainder disagrees with the recorded remainder",
              "replay", len(schedule))

    # Stage: remainder/verdict — the remainder decides the claim.
    if remainder.support_mask() & ~input_mask:
        _fail("remainder mentions non-input variables", "remainder")
    is_zero = not _normalized(remainder, modulus)
    if is_zero != (body["verdict"] == "verified"):
        _fail(f"verdict {body['verdict']!r} contradicts the remainder",
              "verdict")
    return {"verdict": body["verdict"], "sha256": document["sha256"],
            "steps": len(schedule), "vanishing_rules": len(body["vanishing"]),
            "model_check": mode, "circuit": body["circuit"],
            "method": body["method"]}
