"""Checkable proof certificates for the algebraic verification pipeline.

A certificate freezes the reduction journal of one ``verify(...)`` run —
the gate-level Gröbner basis, the rewritten model, the substitution
schedule, every vanishing-rule application, and the final remainder —
into a canonical, content-hashed JSON document.

Two halves, deliberately separated:

:mod:`repro.certify.certificate`
    The emitter.  Runs next to the engine, may import anything, and is
    responsible for *binding* the certificate to the circuit (netlist
    hash, canonical serialization, content hash) and for justifying each
    vanishing-monomial cancellation with a replayable cone proof.

:mod:`repro.certify.checker`
    The independent checker.  Imports only :mod:`repro.algebra`
    primitives — no engine, no vanishing tables — and replays the
    certificate step by step, rejecting any corrupted step with a
    stage- and step-indexed :class:`~repro.errors.CertificateError`.
"""

from repro.certify.certificate import (
    CERTIFICATE_FORMAT,
    CERTIFICATE_VERSION,
    build_certificate,
    canonical_json,
    certificate_hash,
    load_certificate,
    write_certificate,
)
from repro.certify.checker import check_certificate

__all__ = [
    "CERTIFICATE_FORMAT",
    "CERTIFICATE_VERSION",
    "build_certificate",
    "canonical_json",
    "certificate_hash",
    "check_certificate",
    "load_certificate",
    "write_certificate",
]
