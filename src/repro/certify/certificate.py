"""Certificate emitter: serialize a reduction journal into a checkable document.

The emitter side of :mod:`repro.certify`.  It consumes the raw journal
captured by ``verify(..., certificate=True)`` (on
:attr:`~repro.verification.result.VerificationResult.certificate_data`)
and produces the wire document::

    {
      "format": "repro-certificate",
      "version": 1,
      "sha256": "<hex digest of the canonical body>",
      "body": { ... }
    }

The body is serialized canonically — ``json.dumps(body, sort_keys=True,
separators=(",", ":"))`` — so the content hash is reproducible across
runs, platforms and Python versions.  Polynomials are encoded as
``[[mask, coefficient], ...]`` term lists sorted by monomial bitmask;
variables are indices into the ``variables`` name table (the model's
deterministic ascending-topological numbering, primary inputs first, so
every tail references only lower-indexed variables).

Every vanishing-monomial cancellation recorded by the engine is justified
with a *cone proof*: a minimal set of gate variables such that expanding
the monomial through their gate tails (in descending variable order)
reaches the zero polynomial exactly.  The checker replays exactly that
expansion, so no vanishing table, implied-literal machinery or witness
cache is needed on the checking side.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.algebra.polynomial import Polynomial
from repro.errors import CertificateError

CERTIFICATE_FORMAT = "repro-certificate"
CERTIFICATE_VERSION = 1

#: Term-count guard on the cone-proof expansion (a certificate should
#: never need anywhere near this; guards emitter bugs, not adversaries).
_CONE_TERM_LIMIT = 100_000


def canonical_json(body: dict) -> str:
    """The canonical serialization the content hash is computed over."""
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def certificate_hash(body: dict) -> str:
    """SHA-256 hex digest of the canonical body serialization."""
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


def _encode_polynomial(poly: Polynomial) -> list[list[int]]:
    """``[[mask, coefficient], ...]`` sorted by monomial bitmask."""
    return [[mask, coeff] for mask, coeff in sorted(poly.term_masks())]


def _encode_tails(tails: dict[int, Polynomial]) -> list[list]:
    return [[var, _encode_polynomial(tails[var])] for var in sorted(tails)]


def _justify_vanishing(mask: int, gate_tails: dict[int, Polynomial],
                       input_mask: int) -> list[int]:
    """A cone of gate variables whose expansion proves ``mask`` vanishes.

    Starts from the non-input variables of the monomial and widens: if the
    expansion through the current cone is not identically zero, every
    non-input variable still present in the result joins the cone and the
    expansion is replayed.  Expansion substitutes in descending variable
    order — tails only reference lower-indexed variables, so one
    descending pass expands the monomial fully within the cone.
    """
    cone = {var for var in _mask_vars(mask) if not (1 << var) & input_mask}
    while True:
        poly = Polynomial.from_term_masks({mask: 1})
        for var in sorted(cone, reverse=True):
            poly = poly.substitute(var, gate_tails[var])
            if poly.num_terms > _CONE_TERM_LIMIT:
                raise CertificateError(
                    f"cone proof for mask {mask:#x} exceeded "
                    f"{_CONE_TERM_LIMIT} terms", stage="vanishing")
        if poly.is_zero:
            return sorted(cone)
        widened = {var for var in poly.support()
                   if not (1 << var) & input_mask and var in gate_tails}
        if widened <= cone:
            raise CertificateError(
                f"recorded vanishing mask {mask:#x} could not be justified "
                "by gate-cone expansion", stage="vanishing")
        cone |= widened


def _mask_vars(mask: int):
    var = 0
    while mask:
        if mask & 1:
            yield var
        mask >>= 1
        var += 1


def build_certificate(result) -> dict:
    """Build the wrapped certificate document from a verification result.

    ``result`` must come from ``verify(..., certificate=True)``; its
    :attr:`certificate_data` journal is serialized, every vanishing mask
    is justified with a cone proof, and the finished document is run
    through the independent checker once (a self-check: an emitter bug
    must never produce a certificate that fails downstream).
    """
    data = result.certificate_data
    if data is None:
        raise CertificateError(
            "result carries no certificate journal; run "
            "verify(..., certificate=True)", stage="structure")
    from repro.circuit.verilog import write_verilog

    model = data["model"]
    netlist = data["netlist"]
    spec = data["spec"]
    input_mask = 0
    for var in model.input_vars:
        input_mask |= 1 << var
    vanishing = [[mask, _justify_vanishing(mask, model.tails, input_mask)]
                 for mask in data["vanishing_masks"]]
    body = {
        "method": data["method"],
        "circuit": netlist.name,
        "specification": spec.description,
        "modulus": spec.modulus,
        "verdict": "verified" if data["verified"] else "refuted",
        "netlist_sha256": hashlib.sha256(
            write_verilog(netlist).encode("utf-8")).hexdigest(),
        "variables": list(model.ring.names()),
        "inputs": sorted(model.input_vars),
        "outputs": list(model.output_vars),
        "gates": _encode_tails(model.tails),
        "model": _encode_tails(data["tails"]),
        "schedule": list(data["schedule"]),
        "spec_terms": _encode_polynomial(spec.polynomial),
        "remainder": _encode_polynomial(data["remainder"]),
        "vanishing": vanishing,
    }
    document = {
        "format": CERTIFICATE_FORMAT,
        "version": CERTIFICATE_VERSION,
        "sha256": certificate_hash(body),
        "body": body,
    }
    from repro.certify.checker import check_certificate
    check_certificate(document)
    return document


def write_certificate(document: dict, path: str | Path) -> None:
    """Write a certificate document to ``path`` (stable, human-diffable)."""
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")


def load_certificate(path: str | Path) -> dict:
    """Load a certificate document; structural validation is the checker's job."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise CertificateError(f"cannot read certificate {path}: {error}",
                               stage="structure") from error
    if not isinstance(document, dict):
        raise CertificateError("certificate document must be a JSON object",
                               stage="structure")
    return document
