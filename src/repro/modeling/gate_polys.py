"""Translation of logic gates into polynomials over the Boolean domain.

Each gate with output ``z`` and inputs ``a, b, ...`` is modelled as
``g := -z + tail`` where ``tail`` is the unique multilinear polynomial that
agrees with the gate function on Boolean inputs (Section II-B, Step 1 of the
paper):

====== =============================
NOT    ``1 - a``
AND    ``a*b``
OR     ``a + b - a*b``
XOR    ``a + b - 2*a*b``
====== =============================

Multi-input gates are folded two inputs at a time; the inverting variants are
``1 - tail`` of their non-inverting counterpart.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.polynomial import Polynomial
from repro.circuit.gates import Gate, GateType
from repro.errors import ModelingError


def _and_terms(input_vars: Sequence[int]) -> dict[int, int]:
    mask = 0
    for var in input_vars:
        mask |= 1 << var
    return {mask: 1}


def _fold(terms: dict[int, int], var: int, cross_coeff: int) -> dict[int, int]:
    """One De Morgan fold step: ``r + v + cross_coeff * r * v``.

    ``cross_coeff`` is ``-1`` for OR and ``-2`` for XOR; Boolean idempotence
    is applied through the bitwise OR of the term masks.
    """
    bit = 1 << var
    acc = dict(terms)
    acc[bit] = acc.get(bit, 0) + 1
    for mask, coeff in terms.items():
        prod = mask | bit
        new = acc.get(prod, 0) + cross_coeff * coeff
        if new:
            acc[prod] = new
        else:
            del acc[prod]
    return acc


def _fold_tail(input_vars: Sequence[int], cross_coeff: int) -> dict[int, int]:
    terms = {1 << input_vars[0]: 1}
    for var in input_vars[1:]:
        terms = _fold(terms, var, cross_coeff)
    return terms


def _complement(terms: dict[int, int]) -> dict[int, int]:
    acc = {mask: -coeff for mask, coeff in terms.items()}
    new = acc.get(0, 0) + 1
    if new:
        acc[0] = new
    else:
        del acc[0]
    return acc


def gate_tail(gate_type: GateType, input_vars: Sequence[int]) -> Polynomial:
    """Polynomial in the gate inputs that equals the gate function.

    The returned polynomial is the ``tail`` of the gate polynomial
    ``-z + tail``; substituting a gate-output variable during Gröbner-basis
    reduction replaces it by exactly this polynomial.  Tails are built
    directly as mask-keyed term maps — model extraction creates one per gate,
    which made the generic polynomial arithmetic a measurable startup cost.
    """
    if len(input_vars) == 2 and input_vars[0] != input_vars[1]:
        # Direct term maps for the two-input gates — the overwhelmingly
        # common case of synthesized netlists — skip the fold machinery.
        a, b = 1 << input_vars[0], 1 << input_vars[1]
        if gate_type is GateType.AND:
            return Polynomial._raw({a | b: 1})
        if gate_type is GateType.XOR:
            return Polynomial._raw({a: 1, b: 1, a | b: -2})
        if gate_type is GateType.OR:
            return Polynomial._raw({a: 1, b: 1, a | b: -1})
        if gate_type is GateType.NAND:
            return Polynomial._raw({0: 1, a | b: -1})
        if gate_type is GateType.XNOR:
            return Polynomial._raw({0: 1, a: -1, b: -1, a | b: 2})
        if gate_type is GateType.NOR:
            return Polynomial._raw({0: 1, a: -1, b: -1, a | b: 1})
    if gate_type is GateType.CONST0:
        return Polynomial.zero()
    if gate_type is GateType.CONST1:
        return Polynomial.constant(1)
    if not input_vars:
        raise ModelingError(f"gate type {gate_type.value!r} requires inputs")
    if gate_type is GateType.BUF:
        return Polynomial.variable(input_vars[0])
    if gate_type is GateType.NOT:
        return Polynomial._raw(
            _complement({1 << input_vars[0]: 1}))
    if gate_type is GateType.AND:
        return Polynomial._raw(_and_terms(input_vars))
    if gate_type is GateType.NAND:
        return Polynomial._raw(_complement(_and_terms(input_vars)))
    if gate_type is GateType.OR:
        return Polynomial._raw(_fold_tail(input_vars, -1))
    if gate_type is GateType.NOR:
        return Polynomial._raw(
            _complement(_fold_tail(input_vars, -1)))
    if gate_type is GateType.XOR:
        return Polynomial._raw(_fold_tail(input_vars, -2))
    if gate_type is GateType.XNOR:
        return Polynomial._raw(
            _complement(_fold_tail(input_vars, -2)))
    raise ModelingError(f"unsupported gate type {gate_type!r}")


def gate_polynomial(output_var: int, gate_type: GateType,
                    input_vars: Sequence[int]) -> Polynomial:
    """Full gate polynomial ``-z + tail`` with leading variable ``z``."""
    return Polynomial.variable(output_var, -1) + gate_tail(gate_type, input_vars)


def gate_polynomial_for(gate: Gate, var_index) -> Polynomial:
    """Gate polynomial for a netlist gate, mapping signal names with ``var_index``."""
    return gate_polynomial(var_index(gate.output), gate.gate_type,
                           [var_index(s) for s in gate.inputs])
