"""Translation of logic gates into polynomials over the Boolean domain.

Each gate with output ``z`` and inputs ``a, b, ...`` is modelled as
``g := -z + tail`` where ``tail`` is the unique multilinear polynomial that
agrees with the gate function on Boolean inputs (Section II-B, Step 1 of the
paper):

====== =============================
NOT    ``1 - a``
AND    ``a*b``
OR     ``a + b - a*b``
XOR    ``a + b - 2*a*b``
====== =============================

Multi-input gates are folded two inputs at a time; the inverting variants are
``1 - tail`` of their non-inverting counterpart.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.polynomial import Polynomial
from repro.circuit.gates import Gate, GateType
from repro.errors import ModelingError


def _and_tail(inputs: Sequence[Polynomial]) -> Polynomial:
    result = inputs[0]
    for operand in inputs[1:]:
        result = result * operand
    return result


def _or_tail(inputs: Sequence[Polynomial]) -> Polynomial:
    result = inputs[0]
    for operand in inputs[1:]:
        result = result + operand - result * operand
    return result


def _xor_tail(inputs: Sequence[Polynomial]) -> Polynomial:
    result = inputs[0]
    for operand in inputs[1:]:
        result = result + operand - 2 * (result * operand)
    return result


def gate_tail(gate_type: GateType, input_vars: Sequence[int]) -> Polynomial:
    """Polynomial in the gate inputs that equals the gate function.

    The returned polynomial is the ``tail`` of the gate polynomial
    ``-z + tail``; substituting a gate-output variable during Gröbner-basis
    reduction replaces it by exactly this polynomial.
    """
    operands = [Polynomial.variable(v) for v in input_vars]
    if gate_type is GateType.CONST0:
        return Polynomial.zero()
    if gate_type is GateType.CONST1:
        return Polynomial.constant(1)
    if not operands:
        raise ModelingError(f"gate type {gate_type.value!r} requires inputs")
    if gate_type is GateType.BUF:
        return operands[0]
    if gate_type is GateType.NOT:
        return Polynomial.constant(1) - operands[0]
    if gate_type is GateType.AND:
        return _and_tail(operands)
    if gate_type is GateType.NAND:
        return Polynomial.constant(1) - _and_tail(operands)
    if gate_type is GateType.OR:
        return _or_tail(operands)
    if gate_type is GateType.NOR:
        return Polynomial.constant(1) - _or_tail(operands)
    if gate_type is GateType.XOR:
        return _xor_tail(operands)
    if gate_type is GateType.XNOR:
        return Polynomial.constant(1) - _xor_tail(operands)
    raise ModelingError(f"unsupported gate type {gate_type!r}")


def gate_polynomial(output_var: int, gate_type: GateType,
                    input_vars: Sequence[int]) -> Polynomial:
    """Full gate polynomial ``-z + tail`` with leading variable ``z``."""
    return Polynomial.variable(output_var, -1) + gate_tail(gate_type, input_vars)


def gate_polynomial_for(gate: Gate, var_index) -> Polynomial:
    """Gate polynomial for a netlist gate, mapping signal names with ``var_index``."""
    return gate_polynomial(var_index(gate.output), gate.gate_type,
                           [var_index(s) for s in gate.inputs])
