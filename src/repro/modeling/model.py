"""The algebraic circuit model: a Gröbner basis extracted from a netlist.

Step 1 of the membership-testing algorithm: every gate becomes a polynomial
``-z + tail`` and the variables are ordered by their reverse topological
level, so every leading monomial is the (single) gate-output variable and
all leading monomials are relatively prime — the model is a Gröbner basis by
construction (Definition 2 of the paper).

The model also keeps the *structural* information needed by the logic
reduction rewriting: for every variable, the gate function and input
variables it was defined by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.algebra.monomial import Monomial
from repro.algebra.ordering import LEX
from repro.algebra.polynomial import Polynomial
from repro.algebra.ring import PolynomialRing
from repro.circuit.analysis import fanout_counts, topological_levels
from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist
from repro.errors import ModelingError
from repro.modeling.gate_polys import gate_tail


@dataclass(frozen=True)
class GateRecord:
    """Structural information attached to a model variable."""

    variable: int
    gate_type: GateType | None          # ``None`` for primary inputs
    inputs: tuple[int, ...]
    level: int

    @property
    def is_input(self) -> bool:
        """Return ``True`` for primary-input variables."""
        return self.gate_type is None


class AlgebraicModel:
    """Gröbner-basis model of a circuit plus its structural metadata."""

    def __init__(self, ring: PolynomialRing, tails: dict[int, Polynomial],
                 records: dict[int, GateRecord], input_vars: list[int],
                 output_vars: list[int], netlist: Netlist | None = None) -> None:
        self.ring = ring
        self.tails = tails
        self.records = records
        self.input_vars = input_vars
        self.output_vars = output_vars
        self.netlist = netlist
        self._input_set = set(input_vars)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_netlist(cls, netlist: Netlist) -> "AlgebraicModel":
        """Extract the algebraic model of a netlist.

        Variables are numbered by ascending topological level (primary
        inputs first), so a larger index means a later (closer to the
        outputs) signal; the induced lex order realises the paper's reverse
        topological substitution order.
        """
        # The topological traversal below raises on combinational loops, so
        # the (redundant) DFS cycle check of ``validate`` is skipped here.
        netlist.validate(check_cycles=False)
        order, levels = topological_levels(netlist)
        # Stable sort by level keeps same-level signals in construction order,
        # which groups sum/carry cells that share inputs next to each other —
        # the secondary criterion of the paper's substitution ordering.
        ordered = sorted(order, key=levels.__getitem__)

        ring = PolynomialRing.from_ordered(ordered)

        # Direct index-map access skips the per-lookup error wrapping of
        # ``ring.index`` — this loop resolves every gate input of the model.
        index_of = ring._index.__getitem__
        is_input = netlist.is_input
        gate_of = netlist.gate_of
        tails: dict[int, Polynomial] = {}
        records: dict[int, GateRecord] = {}
        for signal in ordered:
            var = index_of(signal)
            if is_input(signal):
                records[var] = GateRecord(var, None, (), 0)
                continue
            gate = gate_of(signal)
            input_vars = tuple(map(index_of, gate.inputs))
            records[var] = GateRecord(var, gate.gate_type, input_vars,
                                      levels[signal])
            tails[var] = gate_tail(gate.gate_type, input_vars)

        input_vars = [index_of(s) for s in netlist.inputs]
        output_vars = [index_of(s) for s in netlist.outputs]
        return cls(ring, tails, records, input_vars, output_vars, netlist)

    # -- queries ---------------------------------------------------------------

    @property
    def num_polynomials(self) -> int:
        """Number of gate polynomials in the model (``#P``)."""
        return len(self.tails)

    def is_input_variable(self, var: int) -> bool:
        """Return ``True`` if ``var`` is a primary input."""
        return var in self._input_set

    def variables(self) -> Iterator[int]:
        """All model variables in ascending order."""
        return iter(range(self.ring.num_variables))

    def polynomial(self, var: int) -> Polynomial:
        """Full gate polynomial ``-var + tail`` for a driven variable."""
        if var not in self.tails:
            raise ModelingError(
                f"variable {self.ring.name(var)!r} has no gate polynomial")
        return Polynomial.variable(var, -1) + self.tails[var]

    def polynomials(self) -> list[Polynomial]:
        """All gate polynomials (arbitrary order)."""
        return [self.polynomial(var) for var in self.tails]

    def tail(self, var: int) -> Polynomial:
        """The tail of the gate polynomial with leading variable ``var``."""
        if var not in self.tails:
            raise ModelingError(
                f"variable {self.ring.name(var)!r} has no gate polynomial")
        return self.tails[var]

    def level(self, var: int) -> int:
        """Reverse-topological level of a variable."""
        return self.records[var].level

    def fanout_variables(self) -> set[int]:
        """Variables with more than one reader in the original netlist."""
        if self.netlist is None:
            raise ModelingError("model was built without a netlist reference")
        counts = fanout_counts(self.netlist)
        return {self.ring.index(signal) for signal, count in counts.items()
                if count > 1}

    def xor_variables(self, include_xnor: bool = False) -> set[int]:
        """Input and output variables of XOR (optionally XNOR) gates."""
        kinds = {GateType.XOR}
        if include_xnor:
            kinds.add(GateType.XNOR)
        selected: set[int] = set()
        for var, record in self.records.items():
            if record.gate_type in kinds:
                selected.add(var)
                selected.update(record.inputs)
        return selected

    def word(self, prefix: str, from_outputs: bool = False) -> list[int]:
        """Variable indices of an input (or output) word ``prefix<i>``."""
        if self.netlist is None:
            raise ModelingError("model was built without a netlist reference")
        names = (self.netlist.output_word(prefix) if from_outputs
                 else self.netlist.input_word(prefix))
        if not names:
            raise ModelingError(f"no word with prefix {prefix!r}")
        return [self.ring.index(name) for name in names]

    # -- sanity checks ---------------------------------------------------------

    def check_groebner_by_construction(self) -> bool:
        """Verify Definition 2: every leading monomial is a distinct single variable.

        By construction the leading monomial (w.r.t. the lex order induced by
        the topological variable numbering) of every gate polynomial is its
        output variable, hence all leading monomials are relatively prime.
        """
        seen: set[int] = set()
        for var in self.tails:
            poly = self.polynomial(var)
            lead = poly.leading_monomial(LEX)
            if lead != Monomial((var,)):
                return False
            if var in seen:
                return False
            seen.add(var)
        return True

    def evaluate(self, assignment: dict[int, int]) -> dict[int, int]:
        """Evaluate all variables bottom-up from a primary-input assignment.

        Used by property-based tests to confirm that model polynomials all
        vanish on consistent circuit valuations.
        """
        values = dict(assignment)
        for var in sorted(self.tails):
            values[var] = self.tails[var].evaluate(values) & 1 \
                if self.records[var].gate_type in (GateType.XOR, GateType.XNOR,
                                                   GateType.AND, GateType.OR,
                                                   GateType.NAND, GateType.NOR,
                                                   GateType.NOT, GateType.BUF,
                                                   GateType.CONST0, GateType.CONST1) \
                else self.tails[var].evaluate(values)
        return values

    def describe(self) -> str:
        """Short summary used by the CLI and examples."""
        return (f"model of {self.netlist.name if self.netlist else '<circuit>'}: "
                f"{self.num_polynomials} polynomials over "
                f"{self.ring.num_variables} variables")

    def render_polynomials(self, variables: Iterable[int] | None = None) -> str:
        """Pretty-print (a subset of) the gate polynomials."""
        chosen = sorted(self.tails if variables is None else variables,
                        reverse=True)
        lines = []
        for var in chosen:
            lines.append(f"{self.ring.name(var)}: "
                         f"{self.ring.render(self.polynomial(var))}")
        return "\n".join(lines)
