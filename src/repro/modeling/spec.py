"""Specification polynomials for adders and multipliers.

The specification of an ``n x n`` unsigned multiplier is (paper, Section V):

.. math::

    p_{spec} = \\sum_{i=0}^{2n-1} -2^i s_i
             + \\Big(\\sum_{i=0}^{n-1} 2^i a_i\\Big)
               \\Big(\\sum_{i=0}^{n-1} 2^i b_i\\Big)  \\pmod{2^{2n}}

The ``mod 2^(2n)`` part is realised by removing remainder terms whose
coefficient is a multiple of ``2^(2n)`` — this is what makes the
specification match Booth and redundant-addition architectures whose
internal encodings only agree with the product modulo ``2^(2n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.algebra.polynomial import Polynomial
from repro.errors import ModelingError
from repro.modeling.model import AlgebraicModel


@dataclass(frozen=True)
class Specification:
    """A specification polynomial plus the optional coefficient modulus."""

    polynomial: Polynomial
    modulus: int | None = None
    description: str = ""

    def apply_modulus(self, remainder: Polynomial) -> Polynomial:
        """Drop remainder terms whose coefficients are multiples of the modulus."""
        if self.modulus is None:
            return remainder
        return remainder.drop_coefficient_multiples(self.modulus)


def _weighted_word(variables: Sequence[int], negate: bool = False) -> Polynomial:
    terms = []
    for i, var in enumerate(variables):
        weight = 1 << i
        terms.append((-weight if negate else weight, (var,)))
    return Polynomial.from_terms(terms)


def multiplier_specification(model: AlgebraicModel, a_prefix: str = "a",
                             b_prefix: str = "b", out_prefix: str = "s",
                             use_modulus: bool = True) -> Specification:
    """Build the unsigned-multiplier specification for a circuit model.

    The operand and result words are located by their signal-name prefixes
    (``a``, ``b`` and ``s`` for generated multipliers).
    """
    a_vars = model.word(a_prefix)
    b_vars = model.word(b_prefix)
    s_vars = model.word(out_prefix, from_outputs=True)
    if len(s_vars) < len(a_vars) + len(b_vars):
        raise ModelingError(
            "multiplier output word is narrower than the full product; "
            f"got {len(s_vars)} bits for {len(a_vars)}x{len(b_vars)}")
    operand_a = _weighted_word(a_vars)
    operand_b = _weighted_word(b_vars)
    outputs = _weighted_word(s_vars, negate=True)
    spec_poly = outputs + operand_a * operand_b
    modulus = (1 << len(s_vars)) if use_modulus else None
    return Specification(
        polynomial=spec_poly, modulus=modulus,
        description=(f"{len(a_vars)}x{len(b_vars)} unsigned multiplier"
                     + (f" mod 2^{len(s_vars)}" if use_modulus else "")))


def adder_specification(model: AlgebraicModel, a_prefix: str = "a",
                        b_prefix: str = "b", out_prefix: str = "s",
                        carry_in: str | None = None,
                        use_modulus: bool = False) -> Specification:
    """Build the adder specification ``sum(2^i s_i) = A + B (+ cin)``."""
    a_vars = model.word(a_prefix)
    b_vars = model.word(b_prefix)
    s_vars = model.word(out_prefix, from_outputs=True)
    spec_poly = (_weighted_word(s_vars, negate=True)
                 + _weighted_word(a_vars) + _weighted_word(b_vars))
    if carry_in is not None:
        spec_poly = spec_poly + Polynomial.variable(model.ring.index(carry_in))
    modulus = (1 << len(s_vars)) if use_modulus else None
    return Specification(
        polynomial=spec_poly, modulus=modulus,
        description=f"{len(a_vars)}-bit adder"
                    + (" with carry-in" if carry_in else ""))


def custom_specification(polynomial: Polynomial, modulus: int | None = None,
                         description: str = "custom") -> Specification:
    """Wrap a user-provided specification polynomial."""
    return Specification(polynomial=polynomial, modulus=modulus,
                         description=description)
