"""Algebraic modelling of gate-level circuits (Step 1 of the MT algorithm).

Translates a :class:`~repro.circuit.netlist.Netlist` into the polynomial
world of the paper: every gate output ``x`` with tail ``t`` becomes the
polynomial ``-x + t`` (:func:`~repro.modeling.gate_polys.gate_polynomial`),
and the resulting :class:`~repro.modeling.model.AlgebraicModel` — gate
records in topological order over a shared
:class:`~repro.algebra.ring.PolynomialRing` — is a Gröbner basis by
construction, because every leading monomial is a distinct single
variable.  :mod:`~repro.modeling.spec` builds the word-level
specification polynomials the model is checked against
(``S = A·B (mod 2^2n)`` for multipliers, the carry-complete sum for
adders) as :class:`~repro.modeling.spec.Specification` objects that know
which circuits they apply to.
"""

from repro.modeling.gate_polys import gate_polynomial, gate_tail
from repro.modeling.model import AlgebraicModel, GateRecord
from repro.modeling.spec import (
    adder_specification,
    multiplier_specification,
    Specification,
)

__all__ = [
    "AlgebraicModel",
    "GateRecord",
    "Specification",
    "adder_specification",
    "gate_polynomial",
    "gate_tail",
    "multiplier_specification",
]
