"""Algebraic modelling of gate-level circuits (Step 1 of the MT algorithm)."""

from repro.modeling.gate_polys import gate_polynomial, gate_tail
from repro.modeling.model import AlgebraicModel, GateRecord
from repro.modeling.spec import (
    adder_specification,
    multiplier_specification,
    Specification,
)

__all__ = [
    "AlgebraicModel",
    "GateRecord",
    "Specification",
    "adder_specification",
    "gate_polynomial",
    "gate_tail",
    "multiplier_specification",
]
