"""Architecture catalog and naming scheme.

Multiplier architectures are named as in the paper's benchmark tables:
``<partial products>-<accumulator>-<final adder>``, for example
``SP-AR-RC`` (simple partial products, array accumulation, ripple-carry
final adder) or ``BP-WT-CL`` (Booth partial products, Wallace tree, carry
look-ahead final adder).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CircuitError
from repro.generators.accumulators import ACCUMULATOR_BUILDERS
from repro.generators.adders import ADDER_KINDS
from repro.generators.partial_products import PARTIAL_PRODUCT_BUILDERS

#: Partial-product generator abbreviations used in the paper.
PARTIAL_PRODUCT_KINDS: dict[str, str] = {
    "SP": "simple partial products",
    "BP": "Booth (radix-4) partial products",
}

#: Accumulator abbreviations used in the paper.
ACCUMULATOR_KINDS: dict[str, str] = {
    "AR": "array accumulator",
    "WT": "Wallace tree",
    "DT": "Dadda tree",
    "CT": "(4,2) compressor tree",
    "RT": "redundant addition tree (mapped to the compressor tree, see DESIGN.md)",
}


@dataclass(frozen=True)
class Architecture:
    """A parsed multiplier architecture descriptor."""

    partial_products: str
    accumulator: str
    final_adder: str

    @property
    def name(self) -> str:
        """The paper-style architecture name, e.g. ``"SP-CT-BK"``."""
        return f"{self.partial_products}-{self.accumulator}-{self.final_adder}"

    def describe(self) -> str:
        """Long human-readable description."""
        return (f"{PARTIAL_PRODUCT_KINDS[self.partial_products]}, "
                f"{ACCUMULATOR_KINDS[self.accumulator]}, "
                f"{ADDER_KINDS[self.final_adder]}")


def parse_architecture(name: str) -> Architecture:
    """Parse a ``PP-ACC-ADDER`` architecture name (case insensitive)."""
    parts = name.upper().split("-")
    if len(parts) != 3:
        raise CircuitError(
            f"architecture name {name!r} must have the form PP-ACC-ADDER")
    pp, acc, adder = parts
    if pp not in PARTIAL_PRODUCT_BUILDERS:
        raise CircuitError(f"unknown partial-product generator {pp!r} "
                           f"(expected one of {sorted(PARTIAL_PRODUCT_KINDS)})")
    if acc not in ACCUMULATOR_BUILDERS:
        raise CircuitError(f"unknown accumulator {acc!r} "
                           f"(expected one of {sorted(ACCUMULATOR_KINDS)})")
    if adder not in ADDER_KINDS:
        raise CircuitError(f"unknown final adder {adder!r} "
                           f"(expected one of {sorted(ADDER_KINDS)})")
    return Architecture(pp, acc, adder)


def architecture_names() -> list[str]:
    """All supported architecture names (cartesian product of the features)."""
    names = []
    for pp in PARTIAL_PRODUCT_KINDS:
        for acc in ACCUMULATOR_KINDS:
            for adder in ADDER_KINDS:
                names.append(f"{pp}-{acc}-{adder}")
    return names


#: The architecture grid of Table I (simple partial products).
TABLE1_ARCHITECTURES: tuple[str, ...] = (
    "SP-AR-RC", "SP-WT-CL", "SP-RT-KS", "SP-CT-BK", "SP-DT-HC",
)

#: The architecture grid of Table II (Booth partial products).
TABLE2_ARCHITECTURES: tuple[str, ...] = (
    "BP-AR-RC", "BP-WT-CL", "BP-RT-KS", "BP-CT-BK", "BP-DT-HC",
)

#: The architectures reported in the statistics table (Table III).
TABLE3_ARCHITECTURES: tuple[str, ...] = (
    "BP-WT-CL", "BP-RT-KS", "SP-DT-HC", "SP-CT-BK",
)
