"""Multiplier generator composing partial products, accumulator and final adder.

``generate_multiplier("BP-WT-CL", 8)`` builds an 8x8 unsigned multiplier with
Booth partial products, a Wallace-tree accumulator and a carry look-ahead
final-stage adder.  Inputs are ``a0..a{n-1}`` and ``b0..b{n-1}``, outputs are
``s0..s{2n-1}``, and the circuit computes ``A*B mod 2^(2n)`` (which equals
``A*B`` exactly — the modulo only matters for the *specification* of
redundant architectures, as discussed in the paper's evaluation section).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Netlist
from repro.errors import CircuitError
from repro.generators.accumulators import ACCUMULATOR_BUILDERS, finalize_addends
from repro.generators.adders import ADDER_BUILDERS
from repro.generators.catalog import Architecture, parse_architecture
from repro.generators.partial_products import PARTIAL_PRODUCT_BUILDERS


@dataclass(frozen=True)
class MultiplierSpec:
    """Description of a generated multiplier instance."""

    architecture: Architecture
    width: int

    @property
    def name(self) -> str:
        """Instance name, e.g. ``"SP-AR-RC_8x8"``."""
        return f"{self.architecture.name}_{self.width}x{self.width}"

    @property
    def output_width(self) -> int:
        """Number of product bits (``2n``)."""
        return 2 * self.width

    def reference(self, a: int, b: int) -> int:
        """Reference integer function the circuit must implement."""
        return (a * b) % (1 << self.output_width)


def generate_multiplier(architecture: str | Architecture, width: int) -> Netlist:
    """Generate an unsigned ``width x width`` multiplier netlist.

    ``architecture`` uses the paper's naming scheme (``SP-AR-RC`` etc.);
    see :mod:`repro.generators.catalog` for the supported feature values.
    """
    if width < 2:
        raise CircuitError("multiplier width must be at least 2")
    if isinstance(architecture, str):
        architecture = parse_architecture(architecture)
    spec = MultiplierSpec(architecture, width)

    netlist = Netlist(spec.name)
    a = netlist.add_input_word("a", width)
    b = netlist.add_input_word("b", width)

    pp_builder = PARTIAL_PRODUCT_BUILDERS[architecture.partial_products]
    accumulate = ACCUMULATOR_BUILDERS[architecture.accumulator]
    final_adder = ADDER_BUILDERS[architecture.final_adder]

    columns = pp_builder(netlist, a, b)
    reduced = accumulate(netlist, columns)
    addend0, addend1 = finalize_addends(netlist, reduced)
    sums = final_adder(netlist, addend0, addend1)

    for i in range(spec.output_width):
        netlist.buf(sums[i], f"s{i}")
        netlist.add_output(f"s{i}")
    netlist.validate()
    return netlist


def multiplier_spec(architecture: str | Architecture, width: int) -> MultiplierSpec:
    """Return the :class:`MultiplierSpec` without building the netlist."""
    if isinstance(architecture, str):
        architecture = parse_architecture(architecture)
    return MultiplierSpec(architecture, width)
