"""Basic arithmetic cells: half adders, full adders, (4,2) compressors.

All cells are built from two-input gates using the XOR/AND decomposition that
synthesised netlists exhibit — which is exactly the structure the XOR-AND
vanishing rule of the paper exploits.
"""

from __future__ import annotations

from repro.circuit.netlist import Netlist


def half_adder(netlist: Netlist, a: str, b: str,
               prefix: str | None = None) -> tuple[str, str]:
    """Half adder: returns ``(sum, carry)`` with ``a + b = sum + 2*carry``."""
    hint = prefix or "ha"
    sum_ = netlist.xor(a, b, netlist.fresh_signal(f"{hint}_s"))
    carry = netlist.and_(a, b, netlist.fresh_signal(f"{hint}_c"))
    return sum_, carry


def full_adder(netlist: Netlist, a: str, b: str, cin: str,
               prefix: str | None = None) -> tuple[str, str]:
    """Full adder: returns ``(sum, carry)`` with ``a + b + cin = sum + 2*carry``.

    Uses the propagate/generate decomposition
    ``p = a xor b``, ``g = a and b``, ``sum = p xor cin``,
    ``carry = g or (p and cin)`` — the same five-gate structure as the
    paper's Fig. 1 full adder.
    """
    hint = prefix or "fa"
    p = netlist.xor(a, b, netlist.fresh_signal(f"{hint}_p"))
    g = netlist.and_(a, b, netlist.fresh_signal(f"{hint}_g"))
    sum_ = netlist.xor(p, cin, netlist.fresh_signal(f"{hint}_s"))
    t = netlist.and_(p, cin, netlist.fresh_signal(f"{hint}_t"))
    carry = netlist.or_(g, t, netlist.fresh_signal(f"{hint}_c"))
    return sum_, carry


def compressor_42(netlist: Netlist, x1: str, x2: str, x3: str, x4: str,
                  cin: str | None = None,
                  prefix: str | None = None) -> tuple[str, str, str]:
    """(4,2) compressor: ``x1+x2+x3+x4+cin = sum + 2*(carry + cout)``.

    Implemented as two stacked full adders; ``cout`` only depends on
    ``x1..x3`` so chaining ``cout`` into the next column's ``cin`` within the
    same reduction stage does not create a ripple path.  When ``cin`` is
    ``None`` the second stage degenerates to a half adder.
    """
    hint = prefix or "cp"
    s1, cout = full_adder(netlist, x1, x2, x3, prefix=f"{hint}_u")
    if cin is None:
        sum_, carry = half_adder(netlist, s1, x4, prefix=f"{hint}_l")
    else:
        sum_, carry = full_adder(netlist, s1, x4, cin, prefix=f"{hint}_l")
    return sum_, carry, cout


def majority3(netlist: Netlist, a: str, b: str, c: str,
              prefix: str | None = None) -> str:
    """Majority of three signals (carry function of a full adder)."""
    hint = prefix or "maj"
    ab = netlist.and_(a, b, netlist.fresh_signal(f"{hint}_ab"))
    ac = netlist.and_(a, c, netlist.fresh_signal(f"{hint}_ac"))
    bc = netlist.and_(b, c, netlist.fresh_signal(f"{hint}_bc"))
    t = netlist.or_(ab, ac, netlist.fresh_signal(f"{hint}_t"))
    return netlist.or_(t, bc, netlist.fresh_signal(f"{hint}_o"))


def mux2(netlist: Netlist, sel: str, when1: str, when0: str,
         prefix: str | None = None) -> str:
    """Two-way multiplexer ``sel ? when1 : when0`` built from AND/OR/NOT."""
    hint = prefix or "mux"
    nsel = netlist.not_(sel, netlist.fresh_signal(f"{hint}_n"))
    hi = netlist.and_(sel, when1, netlist.fresh_signal(f"{hint}_hi"))
    lo = netlist.and_(nsel, when0, netlist.fresh_signal(f"{hint}_lo"))
    return netlist.or_(hi, lo, netlist.fresh_signal(f"{hint}_o"))
