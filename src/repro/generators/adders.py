"""Adder generators: ripple-carry, carry look-ahead and parallel-prefix adders.

Two kinds of entry points are provided:

* ``build_*`` functions append an adder to an existing netlist, consuming two
  equal-width bit vectors (LSB first) and returning the sum bits including
  the final carry — these are used as the last-stage adder of the multiplier
  generators;
* ``*_adder(width)`` functions build a standalone adder netlist with primary
  inputs ``a<i>``/``b<i>`` and outputs ``s<i>`` — these are used for the
  parallel-adder blow-up experiments (Section III of the paper).

The parallel-prefix adders (Kogge-Stone ``KS``, Brent-Kung ``BK``,
Han-Carlson ``HC``) and the carry look-ahead adder (``CL``) all expose the
propagate/generate structure (``p = a xor b``, ``g = a and b``) whose
vanishing monomials motivate the paper's logic-reduction rewriting.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.circuit.netlist import Netlist
from repro.errors import CircuitError
from repro.generators.components import full_adder, half_adder


# ---------------------------------------------------------------------------
# Ripple-carry
# ---------------------------------------------------------------------------

def build_ripple_carry(netlist: Netlist, a: Sequence[str], b: Sequence[str],
                       cin: str | None = None, prefix: str = "rc") -> list[str]:
    """Append a ripple-carry adder; returns ``width + 1`` sum bits (LSB first)."""
    _check_operands(a, b)
    sums: list[str] = []
    carry = cin
    for i, (ai, bi) in enumerate(zip(a, b)):
        if carry is None:
            s, carry = half_adder(netlist, ai, bi, prefix=f"{prefix}{i}")
        else:
            s, carry = full_adder(netlist, ai, bi, carry, prefix=f"{prefix}{i}")
        sums.append(s)
    sums.append(carry)
    return sums


# ---------------------------------------------------------------------------
# Carry look-ahead (4-bit blocks, ripple between blocks)
# ---------------------------------------------------------------------------

def build_carry_lookahead(netlist: Netlist, a: Sequence[str], b: Sequence[str],
                          cin: str | None = None, block_size: int = 4,
                          prefix: str = "cla") -> list[str]:
    """Append a block carry look-ahead adder; returns ``width + 1`` sum bits.

    Inside each block the carries are computed by two-level look-ahead logic
    over the propagate (XOR) and generate (AND) signals; blocks are chained
    through their carry-out.
    """
    _check_operands(a, b)
    width = len(a)
    prop = [netlist.xor(a[i], b[i], netlist.fresh_signal(f"{prefix}_p{i}"))
            for i in range(width)]
    gen = [netlist.and_(a[i], b[i], netlist.fresh_signal(f"{prefix}_g{i}"))
           for i in range(width)]

    carries: list[str | None] = [None] * (width + 1)
    carries[0] = cin
    for start in range(0, width, block_size):
        end = min(start + block_size, width)
        block_cin = carries[start]
        for i in range(start, end):
            # c_{i+1} = g_i | p_i g_{i-1} | ... | p_i..p_start * block_cin
            or_terms: list[str] = []
            for k in range(i, start - 1, -1):
                factors = [prop[j] for j in range(i, k, -1)] + [gen[k]]
                or_terms.append(netlist.and_tree(factors) if len(factors) > 1
                                else factors[0])
            if block_cin is not None:
                factors = [prop[j] for j in range(i, start - 1, -1)] + [block_cin]
                or_terms.append(netlist.and_tree(factors))
            carries[i + 1] = netlist.or_tree(
                or_terms, netlist.fresh_signal(f"{prefix}_c{i + 1}"))

    sums: list[str] = []
    for i in range(width):
        if carries[i] is None:
            sums.append(netlist.buf(prop[i], netlist.fresh_signal(f"{prefix}_s{i}")))
        else:
            sums.append(netlist.xor(prop[i], carries[i],
                                    netlist.fresh_signal(f"{prefix}_s{i}")))
    sums.append(carries[width])
    return sums


# ---------------------------------------------------------------------------
# Parallel-prefix adders
# ---------------------------------------------------------------------------

def _prefix_schedule_kogge_stone(width: int) -> list[list[tuple[int, int]]]:
    """Kogge-Stone schedule: distance doubles every stage, all nodes update."""
    stages: list[list[tuple[int, int]]] = []
    distance = 1
    while distance < width:
        stages.append([(i, distance) for i in range(width - 1, distance - 1, -1)])
        distance *= 2
    return stages


def _prefix_schedule_brent_kung(width: int) -> list[list[tuple[int, int]]]:
    """Brent-Kung schedule: logarithmic up-sweep followed by a down-sweep."""
    stages: list[list[tuple[int, int]]] = []
    distance = 1
    while distance < width:
        stage = [(i, distance)
                 for i in range(width - 1, 2 * distance - 2, -1)
                 if (i - (2 * distance - 1)) % (2 * distance) == 0]
        if stage:
            stages.append(stage)
        distance *= 2
    distance //= 2
    while distance >= 1:
        stage = [(i, distance)
                 for i in range(width - 1, 3 * distance - 2, -1)
                 if (i - (3 * distance - 1)) % (2 * distance) == 0]
        if stage:
            stages.append(stage)
        distance //= 2
    return stages


def _prefix_schedule_han_carlson(width: int) -> list[list[tuple[int, int]]]:
    """Han-Carlson schedule: Kogge-Stone on the odd positions plus a fix-up stage."""
    stages: list[list[tuple[int, int]]] = []
    if width > 1:
        stages.append([(i, 1) for i in range(width - 1, 0, -1) if i % 2 == 1])
    distance = 2
    while distance < width:
        stage = [(i, distance)
                 for i in range(width - 1, distance, -1) if i % 2 == 1]
        if stage:
            stages.append(stage)
        distance *= 2
    fixup = [(i, 1) for i in range(width - 1, 1, -1) if i % 2 == 0]
    if fixup:
        stages.append(fixup)
    return stages


_PREFIX_SCHEDULES: dict[str, Callable[[int], list[list[tuple[int, int]]]]] = {
    "KS": _prefix_schedule_kogge_stone,
    "BK": _prefix_schedule_brent_kung,
    "HC": _prefix_schedule_han_carlson,
}


def _build_prefix_adder(netlist: Netlist, a: Sequence[str], b: Sequence[str],
                        schedule_name: str, cin: str | None = None,
                        prefix: str = "ppa") -> list[str]:
    """Shared parallel-prefix adder construction with coverage checking."""
    _check_operands(a, b)
    width = len(a)
    prop = [netlist.xor(a[i], b[i], netlist.fresh_signal(f"{prefix}_p{i}"))
            for i in range(width)]
    gen = [netlist.and_(a[i], b[i], netlist.fresh_signal(f"{prefix}_g{i}"))
           for i in range(width)]

    group_g = list(gen)
    group_p = list(prop)
    cover = [(i, i) for i in range(width)]
    schedule = _PREFIX_SCHEDULES[schedule_name](width)
    for stage_no, stage in enumerate(schedule):
        for i, distance in stage:
            j = i - distance
            hi_i, lo_i = cover[i]
            hi_j, lo_j = cover[j]
            if lo_i != hi_j + 1:
                raise CircuitError(
                    f"{schedule_name} prefix schedule is not adjacent at node {i} "
                    f"stage {stage_no} (covers {cover[i]} and {cover[j]})")
            tag = f"{prefix}_{schedule_name.lower()}{stage_no}_{i}"
            t = netlist.and_(group_p[i], group_g[j],
                             netlist.fresh_signal(f"{tag}_t"))
            group_g[i] = netlist.or_(group_g[i], t,
                                     netlist.fresh_signal(f"{tag}_g"))
            group_p[i] = netlist.and_(group_p[i], group_p[j],
                                      netlist.fresh_signal(f"{tag}_p"))
            cover[i] = (hi_i, lo_j)
    for i in range(width):
        if cover[i] != (i, 0):
            raise CircuitError(
                f"{schedule_name} prefix network incomplete at bit {i}: "
                f"covers {cover[i]}")

    # Carries out of every position, optionally folding in the carry-in.
    carries: list[str] = []
    for i in range(width):
        if cin is None:
            carries.append(group_g[i])
        else:
            t = netlist.and_(group_p[i], cin,
                             netlist.fresh_signal(f"{prefix}_cint{i}"))
            carries.append(netlist.or_(group_g[i], t,
                                       netlist.fresh_signal(f"{prefix}_cin{i}")))

    sums: list[str] = []
    for i in range(width):
        if i == 0:
            if cin is None:
                sums.append(netlist.buf(prop[0],
                                        netlist.fresh_signal(f"{prefix}_s0")))
            else:
                sums.append(netlist.xor(prop[0], cin,
                                        netlist.fresh_signal(f"{prefix}_s0")))
        else:
            sums.append(netlist.xor(prop[i], carries[i - 1],
                                    netlist.fresh_signal(f"{prefix}_s{i}")))
    sums.append(carries[width - 1])
    return sums


def build_kogge_stone(netlist: Netlist, a: Sequence[str], b: Sequence[str],
                      cin: str | None = None, prefix: str = "ks") -> list[str]:
    """Append a Kogge-Stone parallel-prefix adder."""
    return _build_prefix_adder(netlist, a, b, "KS", cin, prefix)


def build_brent_kung(netlist: Netlist, a: Sequence[str], b: Sequence[str],
                     cin: str | None = None, prefix: str = "bk") -> list[str]:
    """Append a Brent-Kung parallel-prefix adder."""
    return _build_prefix_adder(netlist, a, b, "BK", cin, prefix)


def build_han_carlson(netlist: Netlist, a: Sequence[str], b: Sequence[str],
                      cin: str | None = None, prefix: str = "hc") -> list[str]:
    """Append a Han-Carlson parallel-prefix adder."""
    return _build_prefix_adder(netlist, a, b, "HC", cin, prefix)


# ---------------------------------------------------------------------------
# Dispatch tables and standalone adder netlists
# ---------------------------------------------------------------------------

#: Builders keyed by the paper's final-stage-adder abbreviations.
ADDER_BUILDERS: dict[str, Callable[..., list[str]]] = {
    "RC": build_ripple_carry,
    "CL": build_carry_lookahead,
    "KS": build_kogge_stone,
    "BK": build_brent_kung,
    "HC": build_han_carlson,
}

#: Human-readable names of the supported adder kinds.
ADDER_KINDS: dict[str, str] = {
    "RC": "ripple-carry adder",
    "CL": "carry look-ahead adder",
    "KS": "Kogge-Stone adder",
    "BK": "Brent-Kung adder",
    "HC": "Han-Carlson adder",
}


def _check_operands(a: Sequence[str], b: Sequence[str]) -> None:
    if len(a) != len(b):
        raise CircuitError("adder operands must have the same width")
    if not a:
        raise CircuitError("adder operands must have at least one bit")


def _standalone(kind: str, width: int, with_carry_in: bool = False,
                name: str | None = None) -> Netlist:
    """Build a standalone adder netlist with inputs ``a``/``b`` and outputs ``s``."""
    if width < 1:
        raise CircuitError("adder width must be at least 1")
    if kind not in ADDER_BUILDERS:
        raise CircuitError(f"unknown adder kind {kind!r}")
    netlist = Netlist(name or f"{kind.lower()}_adder_{width}")
    a = netlist.add_input_word("a", width)
    b = netlist.add_input_word("b", width)
    cin = netlist.add_input("cin") if with_carry_in else None
    sums = ADDER_BUILDERS[kind](netlist, a, b, cin=cin)
    for i, signal in enumerate(sums):
        if netlist.is_input(signal):
            signal = netlist.buf(signal)
        netlist.buf(signal, f"s{i}")
        netlist.add_output(f"s{i}")
    netlist.validate()
    return netlist


def ripple_carry_adder(width: int, with_carry_in: bool = False) -> Netlist:
    """Standalone ripple-carry adder netlist."""
    return _standalone("RC", width, with_carry_in)


def carry_lookahead_adder(width: int, with_carry_in: bool = False) -> Netlist:
    """Standalone block carry look-ahead adder netlist."""
    return _standalone("CL", width, with_carry_in)


def kogge_stone_adder(width: int, with_carry_in: bool = False) -> Netlist:
    """Standalone Kogge-Stone adder netlist."""
    return _standalone("KS", width, with_carry_in)


def brent_kung_adder(width: int, with_carry_in: bool = False) -> Netlist:
    """Standalone Brent-Kung adder netlist."""
    return _standalone("BK", width, with_carry_in)


def han_carlson_adder(width: int, with_carry_in: bool = False) -> Netlist:
    """Standalone Han-Carlson adder netlist."""
    return _standalone("HC", width, with_carry_in)


def generate_adder(kind: str, width: int, with_carry_in: bool = False) -> Netlist:
    """Generate a standalone adder by its paper abbreviation (RC/CL/KS/BK/HC)."""
    return _standalone(kind.upper(), width, with_carry_in)
