"""Partial-product generators: simple AND matrix and radix-4 Booth recoding.

Both generators return the partial products organised as *columns*:
``columns[k]`` is the list of signals with weight ``2^k``; the accumulator
generators reduce these columns to two addends for the final-stage adder.

The Booth generator implements unsigned radix-4 Booth recoding with
full-width sign encoding: every partial-product row is the bitwise XOR of the
selected magnitude (``1*A`` or ``2*A``) with the row's ``neg`` signal, plus a
``neg`` correction bit in the row's least-significant column.  Summed modulo
``2^(2n)`` the rows equal ``A*B`` — which is exactly why the paper adds the
``mod 2^(2n)`` reduction to the multiplier specification for Booth (and other
redundant) architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuit.netlist import Netlist
from repro.errors import CircuitError

#: Columns of weighted signals; ``columns[k]`` holds all signals of weight ``2^k``.
Columns = list


@dataclass(frozen=True)
class BoothDigit:
    """Control signals of one radix-4 Booth digit."""

    index: int
    one: str
    two: str
    neg: str


def simple_partial_products(netlist: Netlist, a: Sequence[str],
                            b: Sequence[str]) -> Columns:
    """AND-matrix partial products ``pp_ij = a_i AND b_j`` (columns of weight i+j)."""
    if not a or not b:
        raise CircuitError("partial products need non-empty operands")
    width = len(a) + len(b)
    columns: Columns = [[] for _ in range(width)]
    for j, bj in enumerate(b):
        for i, ai in enumerate(a):
            pp = netlist.and_(ai, bj, netlist.fresh_signal(f"pp_{i}_{j}"))
            columns[i + j].append(pp)
    return columns


def booth_digit(netlist: Netlist, b: Sequence[str], index: int) -> BoothDigit:
    """Build the recoding signals of Booth digit ``index``.

    The digit value is ``d = b[2j-1] + b[2j] - 2*b[2j+1]`` with out-of-range
    bits read as 0.  ``one`` selects ``±1*A``, ``two`` selects ``±2*A`` and
    ``neg`` is the sign (``b[2j+1]``).
    """
    def bit(position: int) -> str | None:
        if 0 <= position < len(b):
            return b[position]
        return None

    lo = bit(2 * index - 1)
    mid = bit(2 * index)
    hi = bit(2 * index + 1)
    tag = f"bd{index}"

    if mid is None and lo is None:
        one = netlist.const0(netlist.fresh_signal(f"{tag}_one"))
    elif mid is None:
        one = netlist.buf(lo, netlist.fresh_signal(f"{tag}_one"))
    elif lo is None:
        one = netlist.buf(mid, netlist.fresh_signal(f"{tag}_one"))
    else:
        one = netlist.xor(mid, lo, netlist.fresh_signal(f"{tag}_one"))

    if hi is None and mid is None:
        pair = netlist.const0(netlist.fresh_signal(f"{tag}_pair"))
    elif hi is None:
        pair = netlist.buf(mid, netlist.fresh_signal(f"{tag}_pair"))
    elif mid is None:
        pair = netlist.buf(hi, netlist.fresh_signal(f"{tag}_pair"))
    else:
        pair = netlist.xor(hi, mid, netlist.fresh_signal(f"{tag}_pair"))

    not_one = netlist.not_(one, netlist.fresh_signal(f"{tag}_notone"))
    two = netlist.and_(pair, not_one, netlist.fresh_signal(f"{tag}_two"))

    if hi is None:
        neg = netlist.const0(netlist.fresh_signal(f"{tag}_neg"))
    else:
        neg = netlist.buf(hi, netlist.fresh_signal(f"{tag}_neg"))
    return BoothDigit(index=index, one=one, two=two, neg=neg)


def booth_partial_products(netlist: Netlist, a: Sequence[str],
                           b: Sequence[str]) -> Columns:
    """Radix-4 Booth partial products for unsigned operands.

    Produces ``floor(len(b)/2) + 1`` rows.  Row ``j`` contributes, at columns
    ``2j .. 2n-1``, the bits ``neg_j XOR mag_i`` (``mag`` being the selected
    ``1*A``/``2*A`` magnitude, zero beyond bit ``len(a)``), plus the ``neg_j``
    two's-complement correction bit at column ``2j``.
    """
    if not a or not b:
        raise CircuitError("partial products need non-empty operands")
    n_a = len(a)
    n_b = len(b)
    width = n_a + n_b
    num_digits = n_b // 2 + 1
    columns: Columns = [[] for _ in range(width)]

    for j in range(num_digits):
        digit = booth_digit(netlist, b, j)
        base = 2 * j
        if base >= width:
            continue
        tag = f"bpp{j}"
        for offset in range(width - base):
            column = base + offset
            mag = _booth_magnitude(netlist, a, digit, offset, tag)
            if mag is None:
                # Sign extension region: the row bit is just ``neg``.
                columns[column].append(digit.neg)
            else:
                bit = netlist.xor(mag, digit.neg,
                                  netlist.fresh_signal(f"{tag}_b{offset}"))
                columns[column].append(bit)
        # Two's-complement correction (+1 when the row is negated).
        columns[base].append(digit.neg)
    return columns


def _booth_magnitude(netlist: Netlist, a: Sequence[str], digit: BoothDigit,
                     offset: int, tag: str) -> str | None:
    """Magnitude bit ``offset`` of ``(one ? A : 0) + (two ? 2A : 0)`` selection.

    Returns ``None`` when the bit is structurally zero (beyond ``len(a)``),
    so the caller can treat the row bit as pure sign extension.
    """
    n_a = len(a)
    terms: list[str] = []
    if offset < n_a:
        terms.append(netlist.and_(digit.one, a[offset],
                                  netlist.fresh_signal(f"{tag}_m1_{offset}")))
    if 0 <= offset - 1 < n_a:
        terms.append(netlist.and_(digit.two, a[offset - 1],
                                  netlist.fresh_signal(f"{tag}_m2_{offset}")))
    if not terms:
        return None
    if len(terms) == 1:
        return terms[0]
    return netlist.or_(terms[0], terms[1],
                       netlist.fresh_signal(f"{tag}_m_{offset}"))


def column_heights(columns: Columns) -> list[int]:
    """Number of signals per column (used by tests and reduction statistics)."""
    return [len(column) for column in columns]


PARTIAL_PRODUCT_BUILDERS = {
    "SP": simple_partial_products,
    "BP": booth_partial_products,
}
