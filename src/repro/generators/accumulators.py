"""Partial-product accumulators: array, Wallace, Dadda and (4,2) compressor trees.

An accumulator reduces the weighted columns produced by a partial-product
generator down to (at most) two signals per column; the two resulting
addends are then summed by the final-stage adder.  The four reduction
strategies correspond to the paper's ``AR``, ``WT``, ``DT`` and ``CT``
accumulator types; ``RT`` (redundant-binary tree) is mapped to the
compressor tree as documented in DESIGN.md §3.
"""

from __future__ import annotations

from typing import Callable

from repro.circuit.netlist import Netlist
from repro.errors import CircuitError
from repro.generators.components import compressor_42, full_adder, half_adder

Columns = list


def _max_height(columns: Columns) -> int:
    return max((len(col) for col in columns), default=0)


def _ensure_width(columns: Columns, width: int) -> Columns:
    grown = [list(col) for col in columns]
    while len(grown) < width:
        grown.append([])
    return grown


def reduce_array(netlist: Netlist, columns: Columns, prefix: str = "ar") -> Columns:
    """Array (carry-save, row-by-row) accumulation.

    Repeatedly applies one carry-save level that reduces every column to at
    most its previous height minus one — the linear-depth structure of a
    classical array multiplier.
    """
    width = len(columns)
    current = [list(col) for col in columns]
    stage = 0
    while _max_height(current) > 2:
        nxt: Columns = [[] for _ in range(width + 1)]
        for k, column in enumerate(current):
            queue = list(column)
            # One adder per column per stage (array = linear accumulation).
            if len(queue) >= 3:
                s, c = full_adder(netlist, queue[0], queue[1], queue[2],
                                  prefix=f"{prefix}{stage}_{k}")
                queue = queue[3:]
                nxt[k].append(s)
                nxt[k + 1].append(c)
            elif len(queue) == 2 and k + 1 < width and len(current[k + 1]) > 2:
                s, c = half_adder(netlist, queue[0], queue[1],
                                  prefix=f"{prefix}{stage}_{k}")
                queue = queue[2:]
                nxt[k].append(s)
                nxt[k + 1].append(c)
            nxt[k].extend(queue)
        current = _ensure_width(nxt[:width], width)
        stage += 1
    return current


def reduce_wallace(netlist: Netlist, columns: Columns,
                   prefix: str = "wt") -> Columns:
    """Wallace-tree accumulation: greedy full/half adders in every column."""
    width = len(columns)
    current = [list(col) for col in columns]
    stage = 0
    while _max_height(current) > 2:
        nxt: Columns = [[] for _ in range(width + 1)]
        for k, column in enumerate(current):
            queue = list(column)
            while len(queue) >= 3:
                s, c = full_adder(netlist, queue[0], queue[1], queue[2],
                                  prefix=f"{prefix}{stage}_{k}")
                queue = queue[3:]
                nxt[k].append(s)
                nxt[k + 1].append(c)
            if len(queue) == 2:
                s, c = half_adder(netlist, queue[0], queue[1],
                                  prefix=f"{prefix}{stage}h_{k}")
                queue = queue[2:]
                nxt[k].append(s)
                nxt[k + 1].append(c)
            nxt[k].extend(queue)
        current = _ensure_width(nxt[:width], width)
        stage += 1
    return current


#: Dadda height sequence d_1 = 2, d_{j+1} = floor(1.5 * d_j).
def _dadda_limits(max_height: int) -> list[int]:
    limits = [2]
    while limits[-1] < max_height:
        limits.append(int(limits[-1] * 3 / 2))
    return limits


def reduce_dadda(netlist: Netlist, columns: Columns, prefix: str = "dt") -> Columns:
    """Dadda-tree accumulation: reduce lazily to the next Dadda height limit."""
    width = len(columns)
    current = [list(col) for col in columns]
    height = _max_height(current)
    if height <= 2:
        return current
    limits = [limit for limit in _dadda_limits(height) if limit < height]
    stage = 0
    for target in reversed(limits):
        nxt: Columns = [[] for _ in range(width + 1)]
        for k in range(width):
            queue = list(current[k]) + nxt[k]
            nxt[k] = []
            while len(queue) > target:
                if len(queue) == target + 1:
                    s, c = half_adder(netlist, queue[0], queue[1],
                                      prefix=f"{prefix}{stage}h_{k}")
                    queue = queue[2:] + [s]
                else:
                    s, c = full_adder(netlist, queue[0], queue[1], queue[2],
                                      prefix=f"{prefix}{stage}_{k}")
                    queue = queue[3:] + [s]
                nxt[k + 1].append(c)
            nxt[k] = queue + nxt[k]
        current = _ensure_width(nxt[:width], width)
        stage += 1
    return current


def reduce_compressor_tree(netlist: Netlist, columns: Columns,
                           prefix: str = "ct") -> Columns:
    """(4,2) compressor tree accumulation.

    Each stage compresses groups of four signals per column with (4,2)
    compressors whose intermediate carries (``cout``) feed the next column's
    compressor within the same stage; left-over groups of three use a full
    adder.  Stages repeat until every column holds at most two signals.
    """
    width = len(columns)
    current = [list(col) for col in columns]
    stage = 0
    while _max_height(current) > 2:
        nxt: Columns = [[] for _ in range(width + 1)]
        chained: list[list[str]] = [[] for _ in range(width + 1)]
        for k, column in enumerate(current):
            queue = list(column) + chained[k]
            while len(queue) >= 4:
                cin = None
                sum_, carry, cout = compressor_42(
                    netlist, queue[0], queue[1], queue[2], queue[3], cin,
                    prefix=f"{prefix}{stage}_{k}")
                queue = queue[4:]
                nxt[k].append(sum_)
                nxt[k + 1].append(carry)
                if k + 1 < width:
                    chained[k + 1].append(cout)
                else:
                    nxt[k + 1].append(cout)
            if len(queue) == 3:
                s, c = full_adder(netlist, queue[0], queue[1], queue[2],
                                  prefix=f"{prefix}{stage}f_{k}")
                queue = queue[3:]
                nxt[k].append(s)
                nxt[k + 1].append(c)
            nxt[k].extend(queue)
        # Any chained carries that never fed a compressor keep their weight.
        for k in range(width):
            pass
        current = _ensure_width(nxt[:width], width)
        stage += 1
    return current


def finalize_addends(netlist: Netlist, columns: Columns,
                     prefix: str = "acc") -> tuple[list[str], list[str]]:
    """Split ≤2-high columns into two equal-width addend vectors.

    Columns with fewer than two signals are padded with constant-0 drivers so
    both vectors have the full output width.
    """
    if _max_height(columns) > 2:
        raise CircuitError("columns must be reduced to height <= 2 first")
    first: list[str] = []
    second: list[str] = []
    for k, column in enumerate(columns):
        if len(column) >= 1:
            first.append(column[0])
        else:
            first.append(netlist.const0(netlist.fresh_signal(f"{prefix}_z0_{k}")))
        if len(column) >= 2:
            second.append(column[1])
        else:
            second.append(netlist.const0(netlist.fresh_signal(f"{prefix}_z1_{k}")))
    return first, second


ACCUMULATOR_BUILDERS: dict[str, Callable[[Netlist, Columns], Columns]] = {
    "AR": reduce_array,
    "WT": reduce_wallace,
    "DT": reduce_dadda,
    "CT": reduce_compressor_tree,
    # The paper's redundant-binary addition tree (RT) is substituted by the
    # (4,2) compressor tree; see DESIGN.md §3 for the rationale.
    "RT": reduce_compressor_tree,
}
