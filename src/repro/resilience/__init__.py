"""repro.resilience — fault tolerance for the verification fleet.

The tier above a single verification run: what happens when the run — or
the infrastructure carrying it — fails.  Three pieces, consumed by the
parallel runner, the service façade, the HTTP server, and the client:

* :mod:`repro.resilience.policy` — typed :class:`RetryPolicy`
  (bounded attempts, exponential backoff with deterministic seeded
  jitter, retryable-failure classification: a worker crash, OOM kill, or
  hard wall-clock kill is worth a fresh worker; a Python exception or a
  genuine refutation is not) and the registry-driven
  :class:`FallbackPolicy` (per-backend degradation chains: an algebraic
  budget trip escalates its :class:`~repro.api.request.Budgets` once,
  then falls back to the ``sat-cec`` golden-reference baseline declared
  in :attr:`repro.api.registry.BackendSpec.degrades_to`).  Every extra
  attempt is recorded in the report's ``attempts`` history (report
  schema 4), so cached and certified results stay auditable.

* :mod:`repro.resilience.faults` — a deterministic, seeded
  :class:`FaultPlan` for chaos testing: kill a chosen worker mid-job,
  inject latency, corrupt a result-cache entry at publish time, or drop
  an HTTP connection mid-response.  Plans serialize to JSON and activate
  through the ``REPRO_FAULT_PLAN`` environment variable, so forked
  worker processes and subprocess servers honour them with no API
  changes; cross-process hit accounting lives in a shared state
  directory so "crash the first attempt" means the first attempt
  fleet-wide, not per process.

Nothing in this package retries refutations: a proven mismatch is a
verdict, not a failure, and replaying it could only mask a bug.
"""

from __future__ import annotations

from repro.resilience.faults import Fault, FaultPlan, corrupt_cache_entry
from repro.resilience.policy import (
    FallbackPolicy,
    FallbackStep,
    RetryPolicy,
    attempt_entry,
    classify_row,
    escalate_budgets,
)

__all__ = [
    "Fault",
    "FaultPlan",
    "FallbackPolicy",
    "FallbackStep",
    "RetryPolicy",
    "attempt_entry",
    "classify_row",
    "corrupt_cache_entry",
    "escalate_budgets",
]
