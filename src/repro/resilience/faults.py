"""Deterministic fault injection for chaos-testing the verification fleet.

A :class:`FaultPlan` is a seeded, JSON-serializable script of failures —
"crash the worker running SP-AR-RC/4/mt-lr, once", "drop the first HTTP
response mid-body", "corrupt the next cache entry published".  The code
under test stays fault-free in production: injection points are inert
single calls (``FaultPlan.should(site, key)``) that read the plan from
the ``REPRO_FAULT_PLAN`` environment variable, so forked pool workers
and subprocess servers honour the same plan with no API plumbing.

Determinism has two halves:

* *Which* events fire is decided by (site, key-glob, times) matching —
  no randomness at match time; the seed only parameterizes corruption
  payloads, so a given plan always injects the same bytes.
* *How many* events fire is counted cross-process: each fault claims
  hits through ``O_CREAT | O_EXCL`` marker files in ``state_dir``, so
  "crash once" means once fleet-wide even though the crashing worker is
  respawned with fresh module state.  Plans without a ``state_dir``
  count in-process only (fine for single-process sites like the client).

Injection sites (``Fault.site``):

``worker-crash``
    ``_pool_worker_main`` calls ``os._exit(exit_code)`` before reporting
    the job result — indistinguishable from a segfault/OOM kill.
``worker-latency``
    ``time.sleep(delay_s)`` before running the job — long enough delays
    exercise the hard-timeout/straggler paths.
``cache-corrupt``
    The :class:`~repro.experiments.runner.ResultCache` publish path
    truncates/garbles the entry it just wrote — the *next reader* must
    treat it as a miss and quarantine it.
``disconnect``
    The HTTP server closes the socket after sending roughly half of the
    response body — the client sees a short read.

Keys are hierarchical strings matched with ``fnmatch`` globs: jobs use
``"{architecture}/{width}/{method}"``, HTTP responses use
``"{METHOD} {path}"``, cache entries use the entry filename.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path

from repro.errors import VerificationError

#: Environment variable carrying a serialized plan to worker processes.
ENV_VAR = "REPRO_FAULT_PLAN"

FAULT_SITES = ("worker-crash", "worker-latency", "cache-corrupt",
               "disconnect")


@dataclass(frozen=True)
class Fault:
    """One scripted failure: fire at ``site`` for keys matching ``match``.

    ``times`` bounds how often the fault fires (0 = never, useful for
    muting a fault in a derived plan); ``delay_s`` is the injected
    latency for ``worker-latency`` sites; ``exit_code`` the worker's
    death code for ``worker-crash`` (137 = SIGKILL'd, the OOM-killer
    signature).
    """

    site: str
    match: str = "*"
    times: int = 1
    delay_s: float = 0.0
    exit_code: int = 137

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise VerificationError(
                f"unknown fault site {self.site!r}; "
                f"expected one of {FAULT_SITES}")
        if self.times < 0:
            raise VerificationError("fault times must be >= 0")

    def to_dict(self) -> dict:
        return {"site": self.site, "match": self.match, "times": self.times,
                "delay_s": self.delay_s, "exit_code": self.exit_code}

    @classmethod
    def from_dict(cls, document: dict) -> "Fault":
        unknown = set(document) - {"site", "match", "times", "delay_s",
                                   "exit_code"}
        if unknown:
            raise VerificationError(
                f"unknown fault field(s) {sorted(unknown)}")
        return cls(**document)


@dataclass
class FaultPlan:
    """A seeded script of faults shared across every process in a test.

    Serialize with :meth:`to_json` into :data:`ENV_VAR` (or use
    :meth:`environment`) and every ``FaultPlan.from_environment()`` call
    in any subprocess reconstructs the identical plan.  Hit accounting
    goes through ``state_dir`` when set: fault *i* claims hit *n* by
    exclusively creating ``state_dir/fault-{i}-hit-{n}``, which survives
    worker respawns and is atomic across processes.
    """

    seed: int = 0
    faults: tuple[Fault, ...] = ()
    state_dir: str | None = None
    _local_hits: dict[int, int] = field(default_factory=dict, repr=False)

    def should(self, site: str, key: str) -> Fault | None:
        """The fault to inject at ``site`` for ``key``, or None.

        Claims one hit on the first matching fault that still has budget;
        a plan with no matching live fault returns None at effectively
        zero cost, so injection points are safe to leave in hot paths.
        """
        for index, fault in enumerate(self.faults):
            if fault.site != site or not fnmatchcase(key, fault.match):
                continue
            if self._claim(index, fault.times):
                return fault
        return None

    def _claim(self, index: int, budget: int) -> bool:
        if budget <= 0:
            return False
        if self.state_dir is None:
            used = self._local_hits.get(index, 0)
            if used >= budget:
                return False
            self._local_hits[index] = used + 1
            return True
        directory = Path(self.state_dir)
        for hit in range(budget):
            marker = directory / f"fault-{index}-hit-{hit}"
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False
            os.close(fd)
            return True
        return False

    def payload(self, key: str, length: int = 64) -> bytes:
        """Deterministic garbage for corruption faults (seed- and key-keyed)."""
        stream = b""
        counter = 0
        while len(stream) < length:
            stream += hashlib.sha256(
                repr((self.seed, key, counter)).encode("utf-8")).digest()
            counter += 1
        return stream[:length]

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "faults": [fault.to_dict() for fault in self.faults],
            "state_dir": self.state_dir,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            document = json.loads(text)
        except ValueError as error:
            raise VerificationError(
                f"unparseable fault plan: {error}") from error
        return cls(seed=int(document.get("seed", 0)),
                   faults=tuple(Fault.from_dict(entry)
                                for entry in document.get("faults", ())),
                   state_dir=document.get("state_dir"))

    def environment(self) -> dict:
        """Env-var mapping that activates this plan in child processes."""
        return {ENV_VAR: self.to_json()}

    @classmethod
    def from_environment(cls) -> "FaultPlan | None":
        text = os.environ.get(ENV_VAR)
        if not text:
            return None
        return cls.from_json(text)


# Injection points call active_plan() instead of from_environment() so the
# (site-miss) fast path costs one dict lookup, not a JSON parse per job.
_CACHED: tuple[str | None, FaultPlan | None] = (None, None)


def active_plan() -> FaultPlan | None:
    """The process-wide plan from :data:`ENV_VAR`, parsed at most once per value."""
    global _CACHED
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    if _CACHED[0] != text:
        _CACHED = (text, FaultPlan.from_json(text))
    return _CACHED[1]


def maybe_crash(key: str) -> None:
    """``worker-crash`` injection point — only ever called in pool workers."""
    plan = active_plan()
    if plan is None:
        return
    fault = plan.should("worker-crash", key)
    if fault is not None:
        os._exit(fault.exit_code)


def maybe_delay(key: str) -> None:
    """``worker-latency`` injection point."""
    plan = active_plan()
    if plan is None:
        return
    fault = plan.should("worker-latency", key)
    if fault is not None and fault.delay_s > 0:
        time.sleep(fault.delay_s)


def maybe_corrupt_published_entry(path: Path) -> None:
    """``cache-corrupt`` injection point, called after a cache publish."""
    plan = active_plan()
    if plan is None:
        return
    fault = plan.should("cache-corrupt", path.name)
    if fault is not None:
        corrupt_cache_entry(path, seed=plan.seed)


def corrupt_cache_entry(path: Path, seed: int = 0) -> None:
    """Overwrite a cache entry with deterministic non-JSON garbage.

    Also usable directly from tests that corrupt a chosen entry without
    running a whole plan.  The write is atomic (tmp + replace) so a
    concurrent reader sees either the old entry or the garbage, never a
    half-written hybrid.
    """
    plan = FaultPlan(seed=seed)
    garbage = b"\x00repro-chaos" + plan.payload(path.name)
    temporary = path.with_suffix(f".tmp.{os.getpid()}")
    temporary.write_bytes(garbage)
    temporary.replace(path)
